#!/usr/bin/env python
"""Distributed-fabric smoke gate: loopback TCP verdicts == local.

The CI-facing equivalence check of the distributed worker fabric: run a
corpus slice once on the local fork transport and once over loopback TCP
with 2 spawned ``autosva worker`` agents, and fail (exit 1) unless every
per-job status, error and payload verdict is bit-identical.  The run is
also gated against the recorded **verdict digest** in
``BENCH_campaign.json`` — the campaign-level measurement trajectory this
file starts — so a verdict drift anywhere in the engine, scheduler or
wire path fails even if both transports drift *together*.  Wall times
are printed for the record, never asserted.

Usage::

    python benchmarks/dist_smoke.py                  # A1,A2 on 2 agents
    python benchmarks/dist_smoke.py --cases A1,A2,A5 --workers 4
    python benchmarks/dist_smoke.py --record <label> # append baseline

The full-corpus version of this gate runs in tier-1
(``tests/integration/test_dist_corpus.py``).
"""

import argparse
import hashlib
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.campaign import (CampaignReport, expand_jobs,  # noqa: E402
                            run_property_campaign, verdict_contract)
from repro.dist import TcpTransport  # noqa: E402
from repro.formal import EngineConfig  # noqa: E402

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_campaign.json"


def verdict_digest(results) -> str:
    """Content hash of everything the verdict contract covers."""
    return hashlib.sha256(json.dumps(
        verdict_contract(results), sort_keys=True).encode()).hexdigest()


def _load_baseline():
    try:
        return json.loads(BASELINE_PATH.read_text())
    except (OSError, ValueError):
        return []


def _latest_entry(entries, cases, depth, frames):
    for entry in reversed(entries):
        if entry.get("cases") == cases and entry.get("depth") == depth \
                and entry.get("frames") == frames:
            return entry
    return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cases", default="A1,A2")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--depth", type=int, default=8)
    parser.add_argument("--frames", type=int, default=30)
    parser.add_argument("--record", metavar="LABEL", default=None,
                        help="append this run to BENCH_campaign.json")
    args = parser.parse_args(argv)

    cases = ",".join(c.strip() for c in args.cases.split(",") if c.strip())
    config = EngineConfig(max_bound=args.depth, max_frames=args.frames)
    jobs = expand_jobs(case_ids=cases.split(","), config=config)
    print(f"dist-smoke: {len(jobs)} jobs ({cases}) — local fork pool vs "
          f"{args.workers} loopback TCP agent(s), bound "
          f"{args.depth}/{args.frames}")

    events = []
    begin = time.monotonic()
    local = run_property_campaign(jobs, workers=args.workers,
                                  progress=events.append)
    local_wall = time.monotonic() - begin
    print(f"      local: {local_wall:6.1f}s  "
          f"({sum(1 for r in local if not r.ok)} failed)")
    frontend = sum(event.wall_time_s for event in events
                   if event.kind == "compile_done" and not event.from_cache)
    phases = CampaignReport(jobs, local, workers=args.workers,
                            wall_time_s=local_wall,
                            frontend_time_s=frontend).phase_breakdown()
    print(f"     phases: frontend {phases['frontend_s']}s | solve "
          f"{phases['solve_s']}s | engine-other {phases['engine_other_s']}s "
          f"| overhead {phases['overhead_s']}s")

    # Ping faster than the default 2s: the smoke slice finishes in a few
    # seconds and the recorded entry should carry real RTT samples.
    transport = TcpTransport(min_workers=args.workers,
                             worker_timeout_s=120.0, heartbeat_s=0.5)
    transport.spawn_local(args.workers)
    begin = time.monotonic()
    remote = run_property_campaign(jobs, transport=transport)
    remote_wall = time.monotonic() - begin
    stats = transport.worker_stats()
    shipped = sum(entry["tasks"] for entry in stats)
    print(f"        tcp: {remote_wall:6.1f}s  "
          f"({sum(1 for r in remote if not r.ok)} failed, {shipped} "
          f"task(s) across {len(stats)} agent(s))")

    if verdict_contract(local) != verdict_contract(remote):
        for a, b in zip(local, remote):
            if (a.status, a.error, a.payload) != (b.status, b.error,
                                                  b.payload):
                print(f"MISMATCH on {a.job_id}: local={a.status} "
                      f"tcp={b.status}", file=sys.stderr)
        print("dist-smoke: FAIL — TCP fabric diverged from the local "
              "transport", file=sys.stderr)
        return 1
    digest = verdict_digest(local)
    print(f"dist-smoke: verdicts bit-identical across transports "
          f"(digest {digest[:16]}…)")

    entries = _load_baseline()
    if args.record is not None:
        entries.append({
            "label": args.record,
            "timestamp": time.strftime("%Y-%m-%d %H:%M:%S"),
            "cases": cases, "workers": args.workers,
            "depth": args.depth, "frames": args.frames,
            "verdict_digest": digest,
            "local_wall_s": round(local_wall, 2),
            "tcp_wall_s": round(remote_wall, 2),
            # Measurements, not gates: where the local run's wall clock
            # went, and what the loopback fabric's ping RTTs looked like.
            "phases": phases,
            "heartbeat_rtt_ms": [entry.get("heartbeat_rtt_ms")
                                 for entry in stats
                                 if entry.get("heartbeat_rtt_ms")],
        })
        BASELINE_PATH.write_text(json.dumps(entries, indent=2,
                                            sort_keys=True) + "\n")
        print(f"dist-smoke: baseline appended -> {BASELINE_PATH.name} "
              f"({len(entries)} entries)")
        return 0

    baseline = _latest_entry(entries, cases, args.depth, args.frames)
    if baseline is None:
        print(f"dist-smoke: note: no recorded baseline for ({cases}, "
              f"{args.depth}/{args.frames}) in {BASELINE_PATH.name}; "
              f"record one with --record <label>")
        return 0
    if baseline["verdict_digest"] != digest:
        print(f"dist-smoke: FAIL — verdict digest drifted from recorded "
              f"baseline '{baseline['label']}'\n"
              f"  recorded: {baseline['verdict_digest']}\n"
              f"  this run: {digest}\n"
              f"If the engine change is intentional, re-record with "
              f"--record <label>.", file=sys.stderr)
        return 1
    print(f"dist-smoke: OK — digest matches recorded baseline "
          f"'{baseline['label']}'")
    return 0


if __name__ == "__main__":
    sys.exit(main())
