"""E13 — campaign scaling: serial vs parallel wall-clock, cache-hit reruns.

Not a paper table: the paper ran its Table III campaign by hand, one
JasperGold invocation per module.  This reproduction ships a campaign
scheduler (:mod:`repro.campaign`), so the quantities of interest are the
orchestration ones:

1. **pool concurrency** — on a wait-bound workload, N workers cut
   wall-clock by ~N regardless of core count (this is the scheduler
   contract, measurable even on a single-core CI box);
2. **engine scaling** — the real corpus jobs on 1/2/4 workers.  Model
   checking is CPU-bound pure Python, so the speedup tracks the number of
   *cores* and is bounded by the longest single job; on a single core the
   assertion degrades to "parallelism costs (almost) nothing";
3. **incremental reruns** — a second campaign over an unchanged corpus is
   served entirely from the content-hash artifact cache and runs in
   milliseconds, beating any worker count;
4. **determinism** — every configuration returns identical result lists,
   which is what makes the wall-clock comparison meaningful;
5. **property granularity** (the ``repro.api`` redesign) — sharding each
   design's property set across the pool removes the longest-job floor of
   design granularity while compiling every design exactly once;
6. **schedule makespan** (the streaming pipeline) — ``cost`` scheduling
   (LPT-balanced property groups, costliest-first issue, work stealing,
   compile/check overlap) vs the ``inventory`` baseline on the same
   corpus slice.  Verdict equality is asserted everywhere; the wall-clock
   comparison is printed always and asserted only on multi-core hosts.
"""

import os
import time

import pytest

from repro.api import COMPILE_CACHE
from repro.campaign import (ArtifactCache, CampaignJob, expand_jobs,
                            run_campaign, run_property_campaign)
from repro.formal import EngineConfig

#: Small/medium designs: enough work to measure, quick enough for CI.
CASE_IDS = ["A1", "A2", "A5", "E10", "O1"]

_SLEEP_S = 0.4


def _cores() -> int:
    try:
        return min(len(os.sched_getaffinity(0)), os.cpu_count() or 1)
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _skip_scaling_if_single_core() -> None:
    """CPU-bound scaling assertions are meaningless on a 1-core host.

    Workers time-slice one core, so parallel wall-clock tracks serial plus
    scheduling overhead — previously the "parallelism comes (almost) free"
    fallback assertion flaked on loaded single-core CI boxes.  The
    determinism/contract assertions above the skip still run everywhere.
    """
    if _cores() == 1:
        pytest.skip("single-core host: engine-scaling wall-clock "
                    "assertions need >= 2 cores (results already "
                    "verified identical)")


def _jobs():
    return expand_jobs(case_ids=CASE_IDS,
                       config=EngineConfig(max_bound=8, max_frames=30))


def _strip_timing(results):
    out = []
    for result in results:
        payload = dict(result.payload or {})
        payload.pop("engine_time_s", None)
        payload.pop("solve_time_s", None)
        payload.pop("solver", None)
        out.append((result.job_id, result.status, payload))
    return out


def _sleeping_runner(job):
    """A wait-bound stand-in job (an external tool invocation's shape)."""
    time.sleep(_SLEEP_S)
    return {"job_id": job.job_id}


def _synthetic_jobs(count=8):
    return [CampaignJob(job_id=f"sleep{i}", case_id="S", case_name="sleep",
                        dut_module="m", variant="fixed", dut_file="x.sv",
                        extra_files=(), engine_config=EngineConfig())
            for i in range(count)]


def test_pool_concurrency_on_wait_bound_jobs(benchmark):
    jobs = _synthetic_jobs(8)

    def run_all():
        walls = {}
        for workers in (1, 4):
            begin = time.monotonic()
            results = run_campaign(jobs, workers=workers,
                                   runner=_sleeping_runner)
            walls[workers] = time.monotonic() - begin
            assert all(r.ok for r in results)
        return walls

    walls = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print(f"\nE13 pool concurrency (8 x {_SLEEP_S}s wait-bound jobs): "
          f"1 worker {walls[1]:.1f}s, 4 workers {walls[4]:.1f}s")
    # 8 jobs x 0.4s: serial >= 3.2s, 4 workers ~2 batches ~0.8s + overhead.
    assert walls[4] < walls[1] * 0.6, walls


def test_campaign_worker_scaling(benchmark):
    jobs = _jobs()

    def run_all():
        walls = {}
        outcomes = {}
        for workers in (1, 2, 4):
            begin = time.monotonic()
            outcomes[workers] = run_campaign(jobs, workers=workers)
            walls[workers] = time.monotonic() - begin
        return walls, outcomes

    walls, outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)
    cores = _cores()
    print(f"\nE13 campaign wall-clock ({len(jobs)} jobs, {cores} core(s)): "
          + ", ".join(f"{w} worker(s) {walls[w]:.1f}s"
                      for w in sorted(walls)))
    # Identical results at every worker count.
    assert _strip_timing(outcomes[1]) == _strip_timing(outcomes[2]) \
        == _strip_timing(outcomes[4])
    assert all(r.ok for r in outcomes[1])
    _skip_scaling_if_single_core()
    # With real cores the 4-worker run must beat serial outright.
    assert walls[4] < walls[1] * 0.8, walls


def test_cached_rerun_is_fastest(benchmark, tmp_path):
    jobs = _jobs()
    cache = ArtifactCache(tmp_path / "cache")

    def run_both():
        begin = time.monotonic()
        cold = run_campaign(jobs, workers=4, cache=cache)
        cold_wall = time.monotonic() - begin
        begin = time.monotonic()
        warm = run_campaign(jobs, workers=4, cache=cache)
        warm_wall = time.monotonic() - begin
        return cold, cold_wall, warm, warm_wall

    cold, cold_wall, warm, warm_wall = benchmark.pedantic(
        run_both, rounds=1, iterations=1)
    print(f"\nE13 cache: cold {cold_wall:.1f}s, "
          f"warm {warm_wall * 1000:.0f}ms "
          f"({cache.stats()['entries']} entries)")
    assert not any(r.from_cache for r in cold)
    assert all(r.from_cache for r in warm)
    assert _strip_timing(cold) == _strip_timing(warm)
    # The cached rerun beats any solver-running configuration outright.
    assert warm_wall < cold_wall / 10
    assert warm_wall < 2.0


def test_property_granularity_scaling(benchmark):
    """Property sharding vs design jobs on the same corpus slice.

    Design granularity's wall-clock floor is the slowest single design;
    property tasks split that design across the pool.  On a single-core
    box the interesting assertions are the contract ones: identical
    verdict payloads and exactly one compile per design × variant."""
    jobs = _jobs()

    def run_both():
        begin = time.monotonic()
        design_results = run_campaign(jobs, workers=4)
        design_wall = time.monotonic() - begin
        compiles_before = COMPILE_CACHE.compiles
        begin = time.monotonic()
        property_results = run_property_campaign(jobs, workers=4)
        property_wall = time.monotonic() - begin
        compiles = COMPILE_CACHE.compiles - compiles_before
        return design_results, design_wall, property_results, \
            property_wall, compiles

    design_results, design_wall, property_results, property_wall, \
        compiles = benchmark.pedantic(run_both, rounds=1, iterations=1)
    cores = _cores()
    print(f"\nE13 granularity ({len(jobs)} designs, {cores} core(s)): "
          f"design {design_wall:.1f}s, property {property_wall:.1f}s, "
          f"{compiles} compiles")
    assert _strip_timing(design_results) == _strip_timing(property_results)
    # At most one parent-side frontend run per design x variant (the
    # worker-side no-recompile guarantee is asserted via
    # TaskEvent.compiled_in_worker in tests/api/test_session.py).
    assert compiles <= len(jobs)


def test_schedule_makespan(benchmark):
    """Cost schedule vs inventory baseline on the same property campaign.

    The cost schedule changes three things at once: groups are
    LPT-balanced instead of inventory chunks, the queue issues costliest
    work first, and the tail is work-stolen when workers would idle.
    Verdicts must be identical; the makespan win is asserted only with
    real cores (on one core the schedules merely tie), and loosely —
    these jobs are short, so overhead noise is a large fraction."""
    jobs = _jobs()

    def run_both():
        walls = {}
        outcomes = {}
        steals = {}
        for schedule in ("inventory", "cost"):
            begin = time.monotonic()
            outcomes[schedule] = run_property_campaign(
                jobs, workers=4, schedule=schedule)
            walls[schedule] = time.monotonic() - begin
            steals[schedule] = sum(r.steals for r in outcomes[schedule])
        return walls, outcomes, steals

    walls, outcomes, steals = benchmark.pedantic(run_both, rounds=1,
                                                 iterations=1)
    cores = _cores()
    print(f"\nE13 schedule makespan ({len(jobs)} designs, {cores} "
          f"core(s), 4 workers): inventory {walls['inventory']:.1f}s, "
          f"cost {walls['cost']:.1f}s ({steals['cost']} steal(s))")
    assert _strip_timing(outcomes["inventory"]) == \
        _strip_timing(outcomes["cost"])
    assert all(r.ok for r in outcomes["cost"])
    _skip_scaling_if_single_core()
    # With real cores, cost-balanced scheduling must not *lose* to
    # inventory order beyond noise.
    assert walls["cost"] < walls["inventory"] * 1.25, walls
