"""E11 — Property Reuse in simulation (Section III-B).

"AutoSVA property files can be utilized in a simulation testbench ... all
control-safety properties and X-propagation assertions can be checked during
simulation.  AutoSVA generates X-propagation assertions, which check that
when the val signal of an interface is asserted, none of the other
attributes have value X ... these assertions are only checked during
simulation (under a XPROP macro)."

Three reproduced facts:

1. binding a generated property file into the 4-state simulator and driving
   random stimulus produces no violations on a correct design;
2. a design with an un-reset payload register (a classic X bug, invisible to
   two-valued formal) trips the XPROP assertion in simulation;
3. with ``XPROP`` undefined (the formal parse) the X assertions vanish.
"""

from repro.core import generate_ft
from repro.designs import case_by_id
from repro.rtl.preprocess import strip_ifdefs
from repro.sim import Simulator, simulate_random

# A response payload register without a reset value: after reset the first
# response exposes X on q_data while q_val is high.
XBUG = """
module xleaky #(
  parameter W = 4
)(
  input  wire clk_i,
  input  wire rst_ni,
  /*AUTOSVA
  t: a_req -in> a_res
  a_req_val = req_i
  [W-1:0] a_req_data = data_i
  a_res_val = res_val_o
  [W-1:0] a_res_data = res_data_o
  */
  input  wire req_i,
  input  wire data_en_i,
  input  wire [W-1:0] data_i,
  output wire res_val_o,
  output wire [W-1:0] res_data_o
);
  reg        val_q;
  reg [W-1:0] data_q;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      val_q <= 1'b0;
      // BUG: data_q has no reset value, and its load enable is not tied to
      // the request: a request without data_en_i exposes X on the response.
    end else begin
      val_q <= req_i;
      if (req_i && data_en_i)
        data_q <= data_i;
    end
  end
  assign res_val_o = val_q;
  assign res_data_o = data_q;
endmodule
"""


def test_clean_design_has_no_violations(benchmark):
    case = case_by_id("O1")
    source = case.dut_source()
    ft = generate_ft(source, module_name=case.dut_module)

    def run():
        return simulate_random(source, case.dut_module,
                               ft.testbench_sources(), cycles=200, seed=7)

    violations = benchmark.pedantic(run, rounds=1, iterations=1)
    assert violations == [], [str(v) for v in violations]


def test_xprop_assertion_catches_unreset_register(benchmark):
    ft = generate_ft(XBUG)

    def run():
        sim = Simulator(XBUG, "xleaky",
                        extra_sources=tuple(ft.testbench_sources()),
                        defines=("XPROP",), seed=1)
        sim.step()  # reset
        # Directed stimulus: a request whose data enable is low — the
        # response next cycle carries the never-written X payload while
        # res_val is high, exactly what the XPROP assertion watches for.
        violations = []
        for _ in range(4):
            violations.extend(sim.step(
                inputs={"req_i": 1, "data_en_i": 0, "data_i": 5}))
        return violations

    violations = benchmark.pedantic(run, rounds=1, iterations=1)
    xprop = [v for v in violations if v.xprop]
    assert xprop, "expected an XPROP violation on the un-reset payload"
    assert any("a_res_xprop" in v.label for v in xprop)


def test_xprop_stripped_for_formal(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    ft = generate_ft(XBUG)
    formal_view = strip_ifdefs(ft.prop_sv, defines=())
    sim_view = strip_ifdefs(ft.prop_sv, defines=("XPROP",))
    assert "$isunknown" not in formal_view
    assert "$isunknown" in sim_view


def test_safety_properties_checked_in_simulation(benchmark):
    """A buggy design violates generated *safety* properties in simulation
    too (the had_a_request analogue shows up without any formal run)."""
    case = case_by_id("A3")
    source = case.buggy_source()
    ft = generate_ft(source, module_name=case.dut_module)

    def run():
        found = []
        for seed in range(6):
            sim = Simulator(source, case.dut_module,
                            extra_sources=tuple(case.extra_sources())
                            + tuple(ft.testbench_sources()),
                            defines=("XPROP",), seed=seed)
            sim.step()
            found.extend(sim.run(300))
        return found

    violations = benchmark.pedantic(run, rounds=1, iterations=1)
    assert any("had_a_request" in v.label for v in violations), \
        sorted({v.label for v in violations})
