#!/usr/bin/env python
"""Chaos smoke gate: seeded faults must not change a single verdict.

Four out-of-process rehearsals of the campaign service's crash story,
each gated on **verdict-digest equality** with a fault-free baseline run
(digest = per-property verdicts of every result event; wall times,
workers and cache hits are excluded by construction):

1. **baseline** — ``autosva serve --state-dir`` on a local 2-worker
   pool; one campaign, streamed to its terminal frame.
2. **server kill -9** — the serve process is armed with
   ``journal.torn_append:after=N,count=1,exit=57``: it dies mid-append,
   leaving a torn journal line.  A clean restart on the same state dir
   must resume the campaign, re-run only unjournaled tasks, and
   converge on the baseline digest with zero lost or double-reported
   task ids.
3. **worker kill -9** — a TCP fabric where one of two agents is armed
   with ``worker.crash_before_result:count=1,exit=9``: it dies before
   sending its first verdict.  The fabric requeues and the survivor
   converges on the baseline digest.
4. **flaky network** — both agents run ``--reconnect`` and are armed
   with deterministic ``dist.frame_drop`` faults: each loses its
   connection mid-campaign, dials back with backoff, resumes its
   session, and the campaign converges on the baseline digest with the
   fleet report showing the reconnects (not extra corpses).

``--record`` additionally measures the ``--state-dir`` fsync tax on
journal appends and appends the run to ``BENCH_campaign.json``.

Every fault is seeded and counted (``AUTOSVA_FAULTS`` /
``AUTOSVA_FAULT_SEED``, docs/chaos.md), so a failing scenario replays
bit-identically.

Usage::

    python benchmarks/chaos_smoke.py
    python benchmarks/chaos_smoke.py --case O1 --record
"""

import argparse
import hashlib
import http.client
import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_campaign.json"
SERVER_EXIT = 57   # the armed serve process's os._exit code
WORKER_EXIT = 9


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _child_env(faults: str = "", seed: int = 0) -> dict:
    env = dict(os.environ)
    src = str(ROOT / "src")
    existing = env.get("PYTHONPATH", "")
    if src not in existing.split(os.pathsep):
        env["PYTHONPATH"] = src + os.pathsep + existing if existing else src
    env.pop("AUTOSVA_FAULTS", None)
    env.pop("AUTOSVA_FAULT_SEED", None)
    if faults:
        env["AUTOSVA_FAULTS"] = faults
        env["AUTOSVA_FAULT_SEED"] = str(seed)
    return env


def _serve(port, state_dir, cache_dir, faults="", transport="local",
           fabric_port=None, min_workers=None):
    command = [sys.executable, "-m", "repro.core.cli", "serve",
               "--listen", f"127.0.0.1:{port}", "--workers", "2",
               "--state-dir", str(state_dir),
               "--cache-dir", str(cache_dir)]
    if transport == "tcp":
        command += ["--transport", "tcp",
                    "--fabric-listen", f"127.0.0.1:{fabric_port}",
                    "--min-workers", str(min_workers)]
    return subprocess.Popen(command, env=_child_env(faults),
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)


def _worker(fabric_port, faults="", seed=0, reconnect=False):
    command = [sys.executable, "-m", "repro.dist.worker",
               "--connect", f"127.0.0.1:{fabric_port}"]
    if reconnect:
        command += ["--reconnect", "--reconnect-max-delay", "2"]
    return subprocess.Popen(command, env=_child_env(faults, seed),
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)


def _request(port, method, path, body=None, timeout=60.0):
    connection = http.client.HTTPConnection("127.0.0.1", port,
                                            timeout=timeout)
    try:
        connection.request(
            method, path,
            body=json.dumps(body) if body is not None else None)
        response = connection.getresponse()
        return response.status, json.loads(response.read() or b"null")
    finally:
        connection.close()


def _wait_http(port, process, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise RuntimeError(
                f"serve exited {process.returncode} before answering")
        try:
            status, _ = _request(port, "GET", "/status", timeout=5.0)
            if status == 200:
                return
        except OSError:
            time.sleep(0.2)
    raise RuntimeError(f"serve on port {port} never answered /status")


def _stream_events(port, campaign_id, timeout=600.0):
    """Drain the ndjson event stream to its terminal frame."""
    connection = http.client.HTTPConnection("127.0.0.1", port,
                                            timeout=timeout)
    try:
        connection.request(
            "GET", f"/campaigns/{campaign_id}/events?format=ndjson")
        response = connection.getresponse()
        assert response.status == 200, f"events HTTP {response.status}"
        return [json.loads(line)
                for line in response.read().decode().splitlines()]
    finally:
        connection.close()


def _result_rows(events):
    return sorted(
        (e["task_id"], e["status"],
         json.dumps(e.get("results", []), sort_keys=True))
        for e in events
        if e.get("kind") == "result" and e.get("task_id"))


def _digest(events) -> str:
    return hashlib.sha256(
        json.dumps(_result_rows(events)).encode()).hexdigest()


def _submit(port, case, depth, frames):
    status, body = _request(port, "POST", "/campaigns", {
        "tenant": "chaos", "cases": [case],
        "variants": ["fixed", "buggy"], "depth": depth, "frames": frames})
    assert status == 201, f"submit failed: {status} {body}"
    return body["id"]


def _stop(process, sig=signal.SIGTERM, timeout=30.0):
    if process.poll() is None:
        process.send_signal(sig)
        try:
            process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait()
    return process.returncode


def _check(name, events, truth):
    """The gate: digest-identical, every task exactly once."""
    rows = _result_rows(events)
    ids = [task_id for task_id, _, _ in rows]
    assert len(ids) == len(set(ids)), \
        f"{name}: task(s) double-reported: {ids}"
    truth_ids = [task_id for task_id, _, _ in _result_rows(truth)]
    assert sorted(ids) == sorted(truth_ids), \
        f"{name}: task set diverged\n  expected {sorted(truth_ids)}\n" \
        f"  got      {sorted(ids)}"
    got, want = _digest(events), _digest(truth)
    assert got == want, \
        f"{name}: verdict digest diverged ({got[:16]}… != {want[:16]}…)"
    print(f"chaos-smoke: {name}: digest {got[:16]}… == baseline, "
          f"{len(ids)} task(s), none lost or duplicated")


# -- scenarios ------------------------------------------------------------

def scenario_baseline(tmp, case, depth, frames):
    port = _free_port()
    server = _serve(port, tmp / "base-state", tmp / "base-cache")
    try:
        _wait_http(port, server)
        campaign_id = _submit(port, case, depth, frames)
        events = _stream_events(port, campaign_id)
        terminal = events[-1]
        assert terminal.get("kind") == "campaign_done" \
            and terminal.get("status") == "completed", terminal
        return events
    finally:
        _stop(server)


def scenario_server_crash(tmp, case, depth, frames, truth):
    state, cache = tmp / "crash-state", tmp / "crash-cache"
    port = _free_port()
    # after=4: the admission + 3 verdicts are journaled whole, then the
    # 4th verdict append is torn and the server dies like kill -9.
    server = _serve(port, state, cache,
                    faults=f"journal.torn_append:after=4,count=1,"
                           f"exit={SERVER_EXIT}")
    _wait_http(port, server)
    campaign_id = _submit(port, case, depth, frames)
    code = server.wait(timeout=600)
    assert code == SERVER_EXIT, f"server exited {code}, not the fault"
    raw = (state / "journal.jsonl").read_text()
    assert not raw.endswith("\n"), "journal tail should be torn"
    print(f"chaos-smoke: server killed mid-append (exit {code}), "
          f"journal tail torn")

    port = _free_port()
    server = _serve(port, state, cache)   # clean restart, same state
    try:
        _wait_http(port, server)
        status, summary = _request(port, "GET",
                                   f"/campaigns/{campaign_id}")
        assert status == 200, f"campaign lost across restart: {status}"
        events = _stream_events(port, campaign_id)
        assert events[-1].get("status") == "completed", events[-1]
        _check("server-crash", events, truth)
    finally:
        _stop(server)


def scenario_worker_crash(tmp, case, depth, frames, truth):
    port, fabric = _free_port(), _free_port()
    server = _serve(port, tmp / "wkill-state", tmp / "wkill-cache",
                    transport="tcp", fabric_port=fabric, min_workers=2)
    doomed = _worker(fabric, faults=f"worker.crash_before_result:"
                                    f"count=1,exit={WORKER_EXIT}")
    survivor = _worker(fabric)
    try:
        _wait_http(port, server)
        campaign_id = _submit(port, case, depth, frames)
        events = _stream_events(port, campaign_id)
        assert events[-1].get("status") == "completed", events[-1]
        assert any(e.get("kind") == "requeue" for e in events), \
            "no requeue event — the doomed worker never held a task"
        assert doomed.wait(timeout=60) == WORKER_EXIT
        _check("worker-crash", events, truth)
    finally:
        _stop(server)
        _stop(doomed)
        _stop(survivor)


def scenario_flaky_network(tmp, case, depth, frames, truth):
    port, fabric = _free_port(), _free_port()
    server = _serve(port, tmp / "flaky-state", tmp / "flaky-cache",
                    transport="tcp", fabric_port=fabric, min_workers=2)
    # Each agent deterministically loses one frame mid-campaign and must
    # reconnect-with-backoff and resume its session.
    workers = [
        _worker(fabric, faults="dist.frame_drop:after=2,count=1",
                seed=1, reconnect=True),
        _worker(fabric, faults="dist.frame_drop:after=4,count=1",
                seed=2, reconnect=True),
    ]
    try:
        _wait_http(port, server)
        campaign_id = _submit(port, case, depth, frames)
        events = _stream_events(port, campaign_id)
        assert events[-1].get("status") == "completed", events[-1]
        status, doc = _request(port, "GET", "/status")
        stats = doc.get("fleet", {}).get("workers", [])
        reconnects = sum(w.get("reconnects", 0) for w in stats)
        assert reconnects >= 1, \
            f"no reconnects recorded in fleet stats: {stats}"
        assert len(stats) <= 2, \
            f"reconnected agents double-counted: {stats}"
        _check("flaky-network", events, truth)
        print(f"chaos-smoke: flaky-network: {reconnects} reconnect(s), "
              f"{len(stats)} agent(s) in the fleet report")
    finally:
        _stop(server)
        for worker in workers:
            _stop(worker)


def measure_fsync_tax(tmp, appends=300):
    """The --state-dir durability price: fsync'd vs plain appends."""
    from repro.campaign.history import atomic_append

    record = (json.dumps({"kind": "event", "campaign": "c0000-bench",
                          "event": {"task_id": "x" * 32,
                                    "status": "ok"}}) + "\n").encode()
    timings = {}
    for label, fsync in (("plain", False), ("fsync", True)):
        path = tmp / f"bench-{label}.jsonl"
        begin = time.perf_counter()
        for _ in range(appends):
            atomic_append(path, record, fsync=fsync)
        timings[label] = (time.perf_counter() - begin) / appends * 1000
    overhead = timings["fsync"] / max(timings["plain"], 1e-9)
    print(f"chaos-smoke: journal append: {timings['plain']:.4f} ms plain, "
          f"{timings['fsync']:.4f} ms fsync'd ({overhead:.1f}x)")
    return {"appends": appends,
            "plain_ms": round(timings["plain"], 4),
            "fsync_ms": round(timings["fsync"], 4),
            "overhead_x": round(overhead, 1)}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--case", default="O1",
                        help="corpus case for every scenario")
    parser.add_argument("--depth", type=int, default=4)
    parser.add_argument("--frames", type=int, default=10)
    parser.add_argument("--record", action="store_true",
                        help="append the run (and the journal fsync "
                             "tax) to BENCH_campaign.json")
    args = parser.parse_args(argv)

    import tempfile
    tmp = Path(tempfile.mkdtemp(prefix="chaos-smoke-"))
    begin = time.monotonic()
    truth = scenario_baseline(tmp, args.case, args.depth, args.frames)
    print(f"chaos-smoke: baseline: {len(_result_rows(truth))} task(s), "
          f"digest {_digest(truth)[:16]}…")
    scenario_server_crash(tmp, args.case, args.depth, args.frames, truth)
    scenario_worker_crash(tmp, args.case, args.depth, args.frames, truth)
    scenario_flaky_network(tmp, args.case, args.depth, args.frames, truth)
    wall = time.monotonic() - begin

    fsync_tax = measure_fsync_tax(tmp)
    if args.record:
        entries = json.loads(BASELINE_PATH.read_text())
        entries.append({
            "label": f"chaos-{time.strftime('%Y%m%d')}",
            "timestamp": time.strftime("%Y-%m-%d %H:%M:%S"),
            "cases": args.case, "depth": args.depth,
            "frames": args.frames, "workers": 2,
            "chaos_wall_s": round(wall, 2),
            "verdict_digest": _digest(truth),
            "journal_fsync": fsync_tax,
        })
        BASELINE_PATH.write_text(json.dumps(entries, indent=2,
                                            sort_keys=True) + "\n")
        print(f"chaos-smoke: recorded to {BASELINE_PATH.name}")

    print(f"chaos-smoke: OK — kill -9 (server, worker) and a flaky "
          f"network all converge digest-identical in {wall:5.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
