#!/usr/bin/env python
"""Formal hot-path benchmark: corpus-wide ``check_all`` before/after.

This is the gate for the batched-sweep + solver-arena work: it runs every
corpus design x variant through ``FormalEngine.check_all`` and records

* **wall time** of the check phase (frontend/compile time is excluded —
  the RTL frontend is unchanged by the hot-path work and would only dilute
  the measurement),
* a **verdict digest** — a content hash over every per-property
  ``(name, kind, status, depth)`` — the bit-identical-verdicts guarantee,
* **deterministic solver counters** (propagations / conflicts / decisions)
  which are machine-independent, so CI can compare them against a
  checked-in baseline without wall-clock flakiness.

Usage::

    python bench_formal_hotpath.py --record seed          # append an entry
    python bench_formal_hotpath.py --quick --record seed-quick
    python bench_formal_hotpath.py --compare              # legacy vs batched
    python bench_formal_hotpath.py --quick --check        # the CI gate

Entries accumulate in ``BENCH_formal.json`` next to this script — a
trajectory of measurements, oldest first.  ``--check`` compares an in-run
legacy-vs-batched A/B (wall-clock ratio, valid because both halves run on
the same machine in the same process) and the deterministic counters
against the recorded baseline; it exits non-zero on a >25% regression.

Methodology notes live in ``benchmarks/README.md``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api.compile import CompileCache, hash_chunks  # noqa: E402
from repro.core import generate_ft  # noqa: E402
from repro.designs import CORPUS, case_by_id  # noqa: E402
from repro.formal import EngineConfig, FormalEngine  # noqa: E402

BENCH_JSON = Path(__file__).resolve().parent / "BENCH_formal.json"

#: The quick subset: small/medium designs, enough solving to measure while
#: staying CI-friendly.  The full run is every corpus case.
QUICK_CASE_IDS = ["A1", "A2", "A5", "E10", "O1"]

#: Counter drift tolerated by --check before it fails the build.  Counters
#: are deterministic, so any drift at all means the algorithm changed; the
#: slack only absorbs deliberate small tweaks that were not re-recorded.
COUNTER_TOLERANCE = 0.25
#: --check also fails when the in-run batched-vs-legacy speedup falls below
#: this fraction of the recorded baseline speedup.
SPEEDUP_TOLERANCE = 0.75


def _variant_list(case):
    out = [("fixed", case.dut_source)]
    if case.buggy_file:
        out.append(("buggy", case.buggy_source))
    return out


def _engine_supports_batched() -> bool:
    """True once the engine grew the ``batched`` knob (post-refactor)."""
    import inspect
    return "batched" in inspect.signature(FormalEngine.__init__).parameters


def run_corpus(case_ids, config: EngineConfig, path: str = "auto") -> dict:
    """Check every selected design x variant; return the measurement dict.

    ``path`` selects the engine orchestration: ``"batched"`` /
    ``"legacy"`` (post-refactor engines), or ``"auto"`` for whatever the
    engine does by default (the only choice on the seed code).
    """
    compile_cache = CompileCache()
    designs = {}
    digest_pairs = []
    totals = {"wall_s": 0.0, "propagations": 0, "conflicts": 0,
              "decisions": 0, "properties": 0}
    for case_id in case_ids:
        case = case_by_id(case_id)
        for variant, source_of in _variant_list(case):
            source = source_of()
            ft = generate_ft(source, module_name=case.dut_module)
            sources = [source] + case.extra_sources() \
                + ft.testbench_sources()
            compiled = compile_cache.get_or_compile(
                ["\n".join(sources)], case.dut_module)
            kwargs = {}
            if path != "auto" and _engine_supports_batched():
                kwargs["batched"] = (path == "batched")
            engine = FormalEngine(compiled.system, config, **kwargs)
            begin = time.perf_counter()
            report = engine.check_all()
            wall = time.perf_counter() - begin
            stats = getattr(engine, "solver_stats", None)
            stats = dict(stats) if stats else {}
            label = f"{case_id}.{variant}"
            # Depth participates only for the exact, trace-backed verdicts;
            # proof-artifact depths (PDR closing frame, induction k) depend
            # legitimately on solver state and are excluded from the
            # bit-identical contract.
            verdicts = [(r.name, r.kind, r.status,
                         r.depth if r.status in ("cex", "covered") else "-")
                        for r in report.results]
            digest_pairs.extend(
                ("verdict", f"{label}/{n}/{k}/{s}/{d}")
                for n, k, s, d in verdicts)
            designs[label] = {
                "wall_s": round(wall, 4),
                "properties": report.num_properties,
                "proven": report.num_proven,
                "cex": report.num_cex,
            }
            totals["wall_s"] += wall
            totals["properties"] += report.num_properties
            for key in ("propagations", "conflicts", "decisions"):
                totals[key] += int(stats.get(key, 0))
    return {
        "path": path,
        "designs": designs,
        "total_wall_s": round(totals["wall_s"], 3),
        "total_properties": totals["properties"],
        "counters": {k: totals[k]
                     for k in ("propagations", "conflicts", "decisions")},
        "verdict_digest": hash_chunks(digest_pairs),
    }


def _load_trajectory() -> list:
    if BENCH_JSON.exists():
        return json.loads(BENCH_JSON.read_text())
    return []


def _entry_meta(args, case_ids) -> dict:
    return {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "quick": bool(args.quick),
        "cases": list(case_ids),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "max_bound": args.depth,
        "max_frames": args.frames,
    }


def _latest(trajectory, quick: bool, cases=None, depth=None, frames=None):
    """Newest entry for the same measurement configuration.

    Matching on cases/bounds (not just the quick flag) keeps the CI gate
    from comparing counters of incompatible runs — e.g. an ad-hoc
    ``--quick --cases A1 --record`` entry must never become the baseline
    for the full quick subset.
    """
    for entry in reversed(trajectory):
        if bool(entry.get("quick")) != quick:
            continue
        if cases is not None and entry.get("cases") != list(cases):
            continue
        if depth is not None and entry.get("max_bound") != depth:
            continue
        if frames is not None and entry.get("max_frames") != frames:
            continue
        return entry
    return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help=f"small subset ({','.join(QUICK_CASE_IDS)}) "
                             f"instead of the whole corpus")
    parser.add_argument("--cases", default=None,
                        help="comma-separated case ids (overrides --quick "
                             "selection)")
    parser.add_argument("--depth", type=int, default=8,
                        help="BMC bound (default 8, the corpus config)")
    parser.add_argument("--frames", type=int, default=30,
                        help="PDR frame bound (default 30)")
    parser.add_argument("--record", metavar="LABEL", default=None,
                        help="append a measurement entry to BENCH_formal."
                             "json under this label")
    parser.add_argument("--path", choices=("auto", "batched", "legacy"),
                        default="auto",
                        help="engine orchestration to measure (default: "
                             "the engine's default)")
    parser.add_argument("--compare", action="store_true",
                        help="run legacy and batched back to back, print "
                             "the speedup and verify identical verdicts")
    parser.add_argument("--check", action="store_true",
                        help="CI gate: --compare plus a regression check "
                             "against the recorded baseline (exit 1 on "
                             ">25%% counter growth or lost speedup)")
    args = parser.parse_args(argv)

    if args.cases:
        case_ids = [c.strip() for c in args.cases.split(",") if c.strip()]
    elif args.quick:
        case_ids = list(QUICK_CASE_IDS)
    else:
        case_ids = [case.case_id for case in CORPUS]
    config = EngineConfig(max_bound=args.depth, max_frames=args.frames)

    if args.compare or args.check:
        if not _engine_supports_batched():
            print("engine has no batched/legacy split yet "
                  "(pre-refactor build)", file=sys.stderr)
            return 1
        legacy = run_corpus(case_ids, config, path="legacy")
        batched = run_corpus(case_ids, config, path="batched")
        speedup = (legacy["total_wall_s"] / batched["total_wall_s"]
                   if batched["total_wall_s"] else float("inf"))
        print(f"legacy : {legacy['total_wall_s']:8.2f}s  "
              f"counters={legacy['counters']}")
        print(f"batched: {batched['total_wall_s']:8.2f}s  "
              f"counters={batched['counters']}")
        print(f"speedup: {speedup:.2f}x  "
              f"({legacy['total_properties']} properties, "
              f"{len(legacy['designs'])} design-variants)")
        if legacy["verdict_digest"] != batched["verdict_digest"]:
            def _shape(row):
                return (row["properties"], row["proven"], row["cex"])
            mism = [label for label in legacy["designs"]
                    if _shape(legacy["designs"][label])
                    != _shape(batched["designs"][label])]
            detail = mism or "same counts; per-property status differs"
            print(f"FAIL: verdict digests differ "
                  f"(diverging designs: {detail})", file=sys.stderr)
            return 1
        print("verdicts: bit-identical across paths")
        if args.check:
            trajectory = _load_trajectory()
            baseline = _latest(trajectory, quick=args.quick,
                               cases=case_ids, depth=args.depth,
                               frames=args.frames)
            failures = []
            if baseline is None:
                print("note: no recorded baseline for this mode; "
                      "speedup/counter gates skipped")
            else:
                base_speedup = baseline.get("speedup")
                if base_speedup and speedup < base_speedup * \
                        SPEEDUP_TOLERANCE:
                    failures.append(
                        f"speedup regressed: {speedup:.2f}x < "
                        f"{SPEEDUP_TOLERANCE:.0%} of recorded "
                        f"{base_speedup:.2f}x")
                base_counters = (baseline.get("batched") or
                                 baseline).get("counters", {})
                for key, base_value in base_counters.items():
                    now = batched["counters"].get(key, 0)
                    if base_value and now > base_value * \
                            (1 + COUNTER_TOLERANCE):
                        failures.append(
                            f"{key} regressed: {now} > "
                            f"{base_value} +{COUNTER_TOLERANCE:.0%}")
            if failures:
                for failure in failures:
                    print(f"FAIL: {failure}", file=sys.stderr)
                return 1
            print("regression gate: OK")
        if args.record:
            trajectory = _load_trajectory()
            entry = dict(_entry_meta(args, case_ids), label=args.record,
                         speedup=round(speedup, 3),
                         legacy=legacy, batched=batched)
            trajectory.append(entry)
            BENCH_JSON.write_text(json.dumps(trajectory, indent=2) + "\n")
            print(f"recorded -> {BENCH_JSON} (label {args.record!r})")
        return 0

    measurement = run_corpus(case_ids, config, path=args.path)
    print(f"{measurement['path']}: {measurement['total_wall_s']:.2f}s, "
          f"{measurement['total_properties']} properties, "
          f"counters={measurement['counters']}")
    print(f"verdict digest: {measurement['verdict_digest'][:16]}...")
    for label, row in measurement["designs"].items():
        print(f"  {label:<12} {row['wall_s']:7.2f}s  "
              f"{row['properties']:>3} props  {row['proven']:>3} proven  "
              f"{row['cex']:>2} cex")
    if args.record:
        trajectory = _load_trajectory()
        entry = dict(_entry_meta(args, case_ids), label=args.record,
                     **{measurement["path"]
                        if measurement["path"] != "auto" else "measured":
                        measurement})
        trajectory.append(entry)
        BENCH_JSON.write_text(json.dumps(trajectory, indent=2) + "\n")
        print(f"recorded -> {BENCH_JSON} (label {args.record!r})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
