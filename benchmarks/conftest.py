"""Shared helpers for the benchmark harness.

Every benchmark regenerates one artifact of the paper's evaluation (see
DESIGN.md's per-experiment index).  Model-checking benchmarks run one round
only (``pedantic``): the quantity of interest is the reproduced *outcome*
(who proves, who fails, at what depth), with wall time recorded for context.
"""

import pytest

from repro.core import generate_ft, run_fv
from repro.formal import EngineConfig


def default_config() -> EngineConfig:
    return EngineConfig(max_bound=8, max_frames=30)


def check_case(case, variant: str, config: EngineConfig = None):
    """Generate the FT for a corpus case variant and run the engine."""
    source = case.dut_source() if variant == "fixed" else case.buggy_source()
    assert source is not None, f"{case.case_id} has no {variant} variant"
    ft = generate_ft(source, module_name=case.dut_module)
    report = run_fv(ft, [source] + case.extra_sources(),
                    config or default_config())
    return ft, report


@pytest.fixture
def engine_config():
    return default_config()
