#!/usr/bin/env python
"""Campaign-service smoke gate: concurrent HTTP campaigns == one-shot CLI.

The CI-facing acceptance check of the campaign-as-a-service front door:
boot ``autosva serve`` machinery (broker + asyncio HTTP server) over ONE
shared 2-worker local fleet, submit three overlapping campaigns from two
tenants over HTTP, and fail (exit 1) unless

* every campaign's verdicts are **bit-identical** (verdict-contract
  digest) to a one-shot ``run_property_campaign`` of the same jobs —
  multiplexing many tenants onto one fabric must be invisible in the
  verdicts;
* an over-quota submission is rejected with a structured 429 body and
  consumes **zero** fabric slots (no campaign object, no tasks);
* every completed campaign's ExecutionRecord re-validates from its JSON
  wire form (digest check included);
* each campaign's SSE stream is isolated and terminates with its own
  ``campaign_done`` frame;
* the operator surface works live: ``/readyz`` flips unstarted ->
  serving -> draining (503 on both ends), every mid-campaign
  ``/metrics`` scrape is validator-clean Prometheus text, ``autosva
  top --once`` renders a frame, and a continuously-scraped campaign
  round stays within 5% (+0.5s floor) of an unscraped warm round.

Usage::

    python benchmarks/service_smoke.py
    python benchmarks/service_smoke.py --cases A1,A2 --workers 2
    python benchmarks/service_smoke.py --record <label>   # append BENCH
"""

import argparse
import asyncio
import contextlib
import hashlib
import http.client
import io
import json
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.campaign import (expand_jobs,  # noqa: E402
                            run_property_campaign, verdict_contract)
from repro.formal import EngineConfig  # noqa: E402
from repro.obs.promexport import (PROM_CONTENT_TYPE,  # noqa: E402
                                  validate_exposition)
from repro.obs.record import validate_record  # noqa: E402
from repro.service import (CampaignBroker, CampaignServer,  # noqa: E402
                           TenantQuota, TenantRegistry)
from repro.service.top import top_main  # noqa: E402

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_campaign.json"


def verdict_digest(results) -> str:
    """Content hash of everything the verdict contract covers."""
    return hashlib.sha256(json.dumps(
        verdict_contract(results), sort_keys=True).encode()).hexdigest()


class _Service:
    """The server on its own event-loop thread (what ``serve`` runs)."""

    def __init__(self, broker):
        self.broker = broker
        self.server = CampaignServer(broker)
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(10.0):
            raise RuntimeError("service never came up")

    def _run(self):
        async def main():
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            await self.server.start("127.0.0.1", 0)
            self.port = self.server.address[1]
            self._ready.set()
            await self._stop.wait()
            await self.server.close()

        asyncio.run(main())

    def close(self):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(10.0)
        self.broker.close()

    def request(self, method, path, body=None):
        connection = http.client.HTTPConnection("127.0.0.1", self.port,
                                                timeout=120.0)
        try:
            connection.request(
                method, path,
                body=json.dumps(body) if body is not None else None)
            response = connection.getresponse()
            return response.status, json.loads(response.read() or b"null")
        finally:
            connection.close()

    def raw(self, path):
        """GET returning (status, content-type, text) — for /metrics."""
        connection = http.client.HTTPConnection("127.0.0.1", self.port,
                                                timeout=120.0)
        try:
            connection.request("GET", path)
            response = connection.getresponse()
            return (response.status, response.getheader("Content-Type"),
                    response.read().decode("utf-8"))
        finally:
            connection.close()

    def stream_events(self, campaign_id):
        connection = http.client.HTTPConnection("127.0.0.1", self.port,
                                                timeout=600.0)
        try:
            connection.request(
                "GET", f"/campaigns/{campaign_id}/events?format=ndjson")
            response = connection.getresponse()
            assert response.status == 200
            return [json.loads(line)
                    for line in response.read().decode().splitlines()]
        finally:
            connection.close()


class _Scraper:
    """Hammers ``/metrics`` like an aggressive Prometheus (10 Hz vs the
    usual 1/15s), validating every exposition it pulls."""

    def __init__(self, service, interval_s=0.1):
        self.service = service
        self.interval_s = interval_s
        self.scrapes = 0
        self.errors = []
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        while not self._stop.wait(self.interval_s):
            try:
                status, content_type, text = self.service.raw("/metrics")
                if status != 200:
                    raise ValueError(f"scrape returned {status}")
                if content_type != PROM_CONTENT_TYPE:
                    raise ValueError(f"content-type {content_type!r}")
                validate_exposition(text)
                self.scrapes += 1
            except Exception as exc:  # noqa: BLE001 — collected, reported
                self.errors.append(str(exc))

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc_info):
        self._stop.set()
        self._thread.join(10.0)
        return False


def _run_round(service, submissions, depth, frames):
    """Submit the round's campaigns, drain every stream, return
    (wall_s, [(tenant, case_id, campaign_id), ...])."""
    begin = time.monotonic()
    admitted = []
    for tenant, case_id in submissions:
        status, body = service.request(
            "POST", "/campaigns", {"tenant": tenant, "cases": [case_id],
                                   "depth": depth, "frames": frames})
        if status != 201:
            raise RuntimeError(f"submit({tenant},{case_id}) -> {status}: "
                               f"{body}")
        admitted.append((tenant, case_id, body["id"]))
    for _tenant, _case_id, campaign_id in admitted:
        events = service.stream_events(campaign_id)
        if events[-1].get("kind") != "campaign_done":
            raise RuntimeError(f"{campaign_id} stream did not terminate")
    return time.monotonic() - begin, admitted


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cases", default="A1,A2",
                        help="two case ids: tenants overlap on the first")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--depth", type=int, default=8)
    parser.add_argument("--frames", type=int, default=30)
    parser.add_argument("--record", metavar="LABEL", default=None,
                        help="append this run to BENCH_campaign.json")
    args = parser.parse_args(argv)

    case_ids = [c.strip() for c in args.cases.split(",") if c.strip()]
    if len(case_ids) < 2:
        print("service-smoke: need at least two cases", file=sys.stderr)
        return 1
    config = EngineConfig(max_bound=args.depth, max_frames=args.frames)

    # The one-shot truth, per case set, on its own fork pool.
    oneshot_digest = {}
    begin = time.monotonic()
    for case_id in case_ids[:2]:
        jobs = expand_jobs(case_ids=[case_id], config=config)
        oneshot_digest[case_id] = verdict_digest(
            run_property_campaign(jobs, workers=args.workers))
    oneshot_wall = time.monotonic() - begin
    print(f"service-smoke: one-shot truth computed in {oneshot_wall:5.1f}s "
          f"({', '.join(case_ids[:2])})")

    registry = TenantRegistry(
        overrides={"capped": TenantQuota(max_open_campaigns=0)})
    broker = CampaignBroker(workers=args.workers, tenants=registry,
                            history_interval_s=0.5)
    # Readiness must be down before start() — no broker thread, no fleet.
    ready, checks = broker.ready()
    if ready or checks["broker_thread"]:
        print(f"service-smoke: FAIL — unstarted broker reported ready "
              f"({checks})", file=sys.stderr)
        return 1
    service = _Service(broker.start())
    try:
        status, body = service.request("GET", "/healthz")
        if status != 200 or body["status"] != "ok":
            print(f"service-smoke: FAIL — /healthz {status}: {body}",
                  file=sys.stderr)
            return 1
        status, body = service.request("GET", "/readyz")
        if status != 200 or not all(body["checks"].values()):
            print(f"service-smoke: FAIL — /readyz {status}: {body}",
                  file=sys.stderr)
            return 1
        print("service-smoke: probes up (unstarted not-ready -> "
              "serving ready)")
        # Three overlapping campaigns from two tenants on ONE fleet;
        # alice and bob both want the first design (compile sharing).
        submissions = [("alice", case_ids[0]), ("bob", case_ids[0]),
                       ("alice", case_ids[1])]
        begin = time.monotonic()
        admitted = []
        for tenant, case_id in submissions:
            status, body = service.request(
                "POST", "/campaigns", {"tenant": tenant,
                                       "cases": [case_id],
                                       "depth": args.depth,
                                       "frames": args.frames})
            if status != 201:
                print(f"service-smoke: FAIL — submit({tenant},{case_id}) "
                      f"returned {status}: {body}", file=sys.stderr)
                return 1
            admitted.append((tenant, case_id, body["id"]))
        print(f"service-smoke: {len(admitted)} campaign(s) admitted on one "
              f"{args.workers}-worker fleet")

        # The over-quota tenant is refused with a structured body —
        # before anything was allocated.
        status, body = service.request(
            "POST", "/campaigns", {"tenant": "capped",
                                   "cases": [case_ids[0]]})
        if status != 429 or body.get("error") != "too_many_campaigns" \
                or not body.get("detail"):
            print(f"service-smoke: FAIL — over-quota submission got "
                  f"{status}: {body}", file=sys.stderr)
            return 1
        status, listing = service.request("GET", "/campaigns")
        if len(listing["campaigns"]) != len(admitted):
            print(f"service-smoke: FAIL — rejected submission left "
                  f"{len(listing['campaigns'])} campaigns (expected "
                  f"{len(admitted)})", file=sys.stderr)
            return 1
        print("service-smoke: over-quota submission rejected 429 "
              "(too_many_campaigns), zero slots consumed")

        # Drain every SSE stream to its own terminal frame.
        failures = 0
        for tenant, case_id, campaign_id in admitted:
            events = service.stream_events(campaign_id)
            terminal = events[-1]
            if terminal.get("kind") != "campaign_done" \
                    or terminal.get("status") != "completed" \
                    or terminal.get("campaign") != campaign_id:
                print(f"service-smoke: FAIL — {campaign_id} terminal "
                      f"frame: {terminal}", file=sys.stderr)
                failures += 1
        service_wall = time.monotonic() - begin
        print(f"service-smoke: all streams terminal in {service_wall:5.1f}s")

        # Verdict digests must match the one-shot runs bit for bit, and
        # every record must re-validate from its wire JSON.
        for tenant, case_id, campaign_id in admitted:
            campaign = service.broker.get(campaign_id)
            digest = verdict_digest(campaign.results)
            if digest != oneshot_digest[case_id]:
                print(f"service-smoke: FAIL — {campaign_id} "
                      f"({tenant}/{case_id}) verdicts diverged from the "
                      f"one-shot run\n  one-shot: "
                      f"{oneshot_digest[case_id]}\n   service: {digest}",
                      file=sys.stderr)
                failures += 1
                continue
            status, record = service.request(
                "GET", f"/campaigns/{campaign_id}/record")
            try:
                validate_record(record)
            except Exception as exc:
                print(f"service-smoke: FAIL — {campaign_id} record "
                      f"invalid: {exc}", file=sys.stderr)
                failures += 1
                continue
            print(f"  {campaign_id} ({tenant}/{case_id}): digest "
                  f"{digest[:16]}… == one-shot, record valid")

        # ------------------------------------------------------------
        # Scrape-overhead gate.  Round 1 above warmed the fleet's
        # compile caches, so these two rounds are like for like: the
        # same three submissions plain, then again under a 10 Hz
        # validating scraper.  Verdicts must stay digest-identical and
        # the scraped round must cost <=5% (+0.5s noise floor) extra.
        plain_wall, _ = _run_round(service, submissions,
                                   args.depth, args.frames)
        with _Scraper(service) as scraper:
            scraped_wall, scraped = _run_round(service, submissions,
                                               args.depth, args.frames)
        if scraper.errors:
            print(f"service-smoke: FAIL — {len(scraper.errors)} dirty "
                  f"scrape(s): {scraper.errors[0]}", file=sys.stderr)
            failures += 1
        if scraper.scrapes == 0:
            print("service-smoke: FAIL — scraper never completed a "
                  "mid-campaign scrape", file=sys.stderr)
            failures += 1
        for tenant, case_id, campaign_id in scraped:
            digest = verdict_digest(service.broker.get(campaign_id).results)
            if digest != oneshot_digest[case_id]:
                print(f"service-smoke: FAIL — scraped-round {campaign_id} "
                      f"({tenant}/{case_id}) verdicts diverged",
                      file=sys.stderr)
                failures += 1
        budget = plain_wall * 1.05 + 0.5
        overhead_pct = 100.0 * (scraped_wall - plain_wall) \
            / plain_wall if plain_wall else 0.0
        verdict = "within" if scraped_wall <= budget else "OVER"
        print(f"service-smoke: scrape overhead: plain {plain_wall:5.2f}s "
              f"vs scraped {scraped_wall:5.2f}s under {scraper.scrapes} "
              f"validated scrape(s) ({overhead_pct:+.1f}%, {verdict} "
              f"5% +0.5s budget)")
        if scraped_wall > budget:
            failures += 1

        # One final scrape must carry the full metric surface, and the
        # broker's snapshot loop must have been filling the history ring
        # the whole time.
        status, content_type, text = service.raw("/metrics")
        families = validate_exposition(text)
        # (journal.append_s only appears under --state-dir, so it is
        # not on this list.)
        for family in ("autosva_scheduler_queue_depth",
                       "autosva_service_tasks_issued_total",
                       "autosva_service_campaigns_submitted_total",
                       "autosva_service_settle_latency_s"):
            if family not in families:
                print(f"service-smoke: FAIL — /metrics missing {family}",
                      file=sys.stderr)
                failures += 1
        status, history = service.request("GET", "/metrics/history")
        if status != 200 or len(history["samples"]) < 2:
            print(f"service-smoke: FAIL — history ring has "
                  f"{len(history.get('samples', []))} sample(s)",
                  file=sys.stderr)
            failures += 1
        print(f"service-smoke: /metrics clean ({len(families)} families), "
              f"history ring {len(history['samples'])} sample(s) @ "
              f"{history['interval_s']}s")

        # The operator dashboard renders a frame from the same endpoints.
        top_out = io.StringIO()
        with contextlib.redirect_stdout(top_out):
            top_code = top_main(["--connect", f"127.0.0.1:{service.port}",
                                 "--once", "--no-clear"])
        frame = top_out.getvalue()
        if top_code != 0 or "autosva top" not in frame \
                or "fleet" not in frame:
            print(f"service-smoke: FAIL — top --once exited {top_code}",
                  file=sys.stderr)
            failures += 1
        else:
            print("service-smoke: autosva top --once rendered "
                  f"({len(frame.splitlines())} line(s))")

        status, status_body = service.request("GET", "/status")
        phases = status_body.get("phases", {})
        fabric = status_body.get("fabric", {})
        print(f"service-smoke: fleet phases: "
              f"{json.dumps(phases, sort_keys=True)}")
        print(f"service-smoke: fabric counters: "
              f"{json.dumps(fabric, sort_keys=True)}")

        # Drain: readiness must flip to 503 while liveness and the
        # scrape endpoint keep answering, and admission must refuse.
        service.broker.drain()
        status, body = service.request("GET", "/readyz")
        if status != 503 or body["status"] != "not_ready":
            print(f"service-smoke: FAIL — draining /readyz {status}: "
                  f"{body}", file=sys.stderr)
            failures += 1
        status, _ = service.request("GET", "/healthz")
        drain_live = status == 200
        status, _, text = service.raw("/metrics")
        try:
            validate_exposition(text)
        except ValueError as exc:
            print(f"service-smoke: FAIL — draining scrape dirty: {exc}",
                  file=sys.stderr)
            failures += 1
        status, body = service.request(
            "POST", "/campaigns", {"tenant": "alice",
                                   "cases": [case_ids[0]]})
        if not drain_live or status != 503 \
                or body.get("error") != "service_shutting_down":
            print(f"service-smoke: FAIL — draining admission {status}: "
                  f"{body}", file=sys.stderr)
            failures += 1
        else:
            print("service-smoke: drain flips /readyz 503, /healthz + "
                  "/metrics stay up, admission refuses 503")

        if failures:
            print(f"service-smoke: FAIL ({failures} check(s))",
                  file=sys.stderr)
            return 1

        if args.record is not None:
            entries = json.loads(BASELINE_PATH.read_text()) \
                if BASELINE_PATH.exists() else []
            entries.append({
                "label": args.record,
                "timestamp": time.strftime("%Y-%m-%d %H:%M:%S"),
                "cases": ",".join(case_ids[:2]), "workers": args.workers,
                "depth": args.depth, "frames": args.frames,
                "verdict_digest": oneshot_digest[case_ids[0]],
                "scrape_overhead": {
                    "plain_wall_s": round(plain_wall, 2),
                    "scraped_wall_s": round(scraped_wall, 2),
                    "overhead_pct": round(overhead_pct, 1),
                    "scrapes": scraper.scrapes,
                    "scrape_interval_s": scraper.interval_s,
                },
                "phases": phases,
            })
            BASELINE_PATH.write_text(json.dumps(entries, indent=2,
                                                sort_keys=True) + "\n")
            print(f"service-smoke: measurement appended -> "
                  f"{BASELINE_PATH.name} ({len(entries)} entries)")

        print("service-smoke: OK — concurrent HTTP campaigns are "
              "verdict-identical to one-shot runs, scrape surface clean")
        return 0
    finally:
        service.close()


if __name__ == "__main__":
    sys.exit(main())
