#!/usr/bin/env python
"""Campaign-service smoke gate: concurrent HTTP campaigns == one-shot CLI.

The CI-facing acceptance check of the campaign-as-a-service front door:
boot ``autosva serve`` machinery (broker + asyncio HTTP server) over ONE
shared 2-worker local fleet, submit three overlapping campaigns from two
tenants over HTTP, and fail (exit 1) unless

* every campaign's verdicts are **bit-identical** (verdict-contract
  digest) to a one-shot ``run_property_campaign`` of the same jobs —
  multiplexing many tenants onto one fabric must be invisible in the
  verdicts;
* an over-quota submission is rejected with a structured 429 body and
  consumes **zero** fabric slots (no campaign object, no tasks);
* every completed campaign's ExecutionRecord re-validates from its JSON
  wire form (digest check included);
* each campaign's SSE stream is isolated and terminates with its own
  ``campaign_done`` frame.

Usage::

    python benchmarks/service_smoke.py
    python benchmarks/service_smoke.py --cases A1,A2 --workers 2
"""

import argparse
import asyncio
import hashlib
import http.client
import json
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.campaign import (expand_jobs,  # noqa: E402
                            run_property_campaign, verdict_contract)
from repro.formal import EngineConfig  # noqa: E402
from repro.obs.record import validate_record  # noqa: E402
from repro.service import (CampaignBroker, CampaignServer,  # noqa: E402
                           TenantQuota, TenantRegistry)


def verdict_digest(results) -> str:
    """Content hash of everything the verdict contract covers."""
    return hashlib.sha256(json.dumps(
        verdict_contract(results), sort_keys=True).encode()).hexdigest()


class _Service:
    """The server on its own event-loop thread (what ``serve`` runs)."""

    def __init__(self, broker):
        self.broker = broker
        self.server = CampaignServer(broker)
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(10.0):
            raise RuntimeError("service never came up")

    def _run(self):
        async def main():
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            await self.server.start("127.0.0.1", 0)
            self.port = self.server.address[1]
            self._ready.set()
            await self._stop.wait()
            await self.server.close()

        asyncio.run(main())

    def close(self):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(10.0)
        self.broker.close()

    def request(self, method, path, body=None):
        connection = http.client.HTTPConnection("127.0.0.1", self.port,
                                                timeout=120.0)
        try:
            connection.request(
                method, path,
                body=json.dumps(body) if body is not None else None)
            response = connection.getresponse()
            return response.status, json.loads(response.read() or b"null")
        finally:
            connection.close()

    def stream_events(self, campaign_id):
        connection = http.client.HTTPConnection("127.0.0.1", self.port,
                                                timeout=600.0)
        try:
            connection.request(
                "GET", f"/campaigns/{campaign_id}/events?format=ndjson")
            response = connection.getresponse()
            assert response.status == 200
            return [json.loads(line)
                    for line in response.read().decode().splitlines()]
        finally:
            connection.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cases", default="A1,A2",
                        help="two case ids: tenants overlap on the first")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--depth", type=int, default=8)
    parser.add_argument("--frames", type=int, default=30)
    args = parser.parse_args(argv)

    case_ids = [c.strip() for c in args.cases.split(",") if c.strip()]
    if len(case_ids) < 2:
        print("service-smoke: need at least two cases", file=sys.stderr)
        return 1
    config = EngineConfig(max_bound=args.depth, max_frames=args.frames)

    # The one-shot truth, per case set, on its own fork pool.
    oneshot_digest = {}
    begin = time.monotonic()
    for case_id in case_ids[:2]:
        jobs = expand_jobs(case_ids=[case_id], config=config)
        oneshot_digest[case_id] = verdict_digest(
            run_property_campaign(jobs, workers=args.workers))
    oneshot_wall = time.monotonic() - begin
    print(f"service-smoke: one-shot truth computed in {oneshot_wall:5.1f}s "
          f"({', '.join(case_ids[:2])})")

    registry = TenantRegistry(
        overrides={"capped": TenantQuota(max_open_campaigns=0)})
    service = _Service(CampaignBroker(workers=args.workers,
                                      tenants=registry).start())
    try:
        # Three overlapping campaigns from two tenants on ONE fleet;
        # alice and bob both want the first design (compile sharing).
        submissions = [("alice", case_ids[0]), ("bob", case_ids[0]),
                       ("alice", case_ids[1])]
        begin = time.monotonic()
        admitted = []
        for tenant, case_id in submissions:
            status, body = service.request(
                "POST", "/campaigns", {"tenant": tenant,
                                       "cases": [case_id],
                                       "depth": args.depth,
                                       "frames": args.frames})
            if status != 201:
                print(f"service-smoke: FAIL — submit({tenant},{case_id}) "
                      f"returned {status}: {body}", file=sys.stderr)
                return 1
            admitted.append((tenant, case_id, body["id"]))
        print(f"service-smoke: {len(admitted)} campaign(s) admitted on one "
              f"{args.workers}-worker fleet")

        # The over-quota tenant is refused with a structured body —
        # before anything was allocated.
        status, body = service.request(
            "POST", "/campaigns", {"tenant": "capped",
                                   "cases": [case_ids[0]]})
        if status != 429 or body.get("error") != "too_many_campaigns" \
                or not body.get("detail"):
            print(f"service-smoke: FAIL — over-quota submission got "
                  f"{status}: {body}", file=sys.stderr)
            return 1
        status, listing = service.request("GET", "/campaigns")
        if len(listing["campaigns"]) != len(admitted):
            print(f"service-smoke: FAIL — rejected submission left "
                  f"{len(listing['campaigns'])} campaigns (expected "
                  f"{len(admitted)})", file=sys.stderr)
            return 1
        print("service-smoke: over-quota submission rejected 429 "
              "(too_many_campaigns), zero slots consumed")

        # Drain every SSE stream to its own terminal frame.
        failures = 0
        for tenant, case_id, campaign_id in admitted:
            events = service.stream_events(campaign_id)
            terminal = events[-1]
            if terminal.get("kind") != "campaign_done" \
                    or terminal.get("status") != "completed" \
                    or terminal.get("campaign") != campaign_id:
                print(f"service-smoke: FAIL — {campaign_id} terminal "
                      f"frame: {terminal}", file=sys.stderr)
                failures += 1
        service_wall = time.monotonic() - begin
        print(f"service-smoke: all streams terminal in {service_wall:5.1f}s")

        # Verdict digests must match the one-shot runs bit for bit, and
        # every record must re-validate from its wire JSON.
        for tenant, case_id, campaign_id in admitted:
            campaign = service.broker.get(campaign_id)
            digest = verdict_digest(campaign.results)
            if digest != oneshot_digest[case_id]:
                print(f"service-smoke: FAIL — {campaign_id} "
                      f"({tenant}/{case_id}) verdicts diverged from the "
                      f"one-shot run\n  one-shot: "
                      f"{oneshot_digest[case_id]}\n   service: {digest}",
                      file=sys.stderr)
                failures += 1
                continue
            status, record = service.request(
                "GET", f"/campaigns/{campaign_id}/record")
            try:
                validate_record(record)
            except Exception as exc:
                print(f"service-smoke: FAIL — {campaign_id} record "
                      f"invalid: {exc}", file=sys.stderr)
                failures += 1
                continue
            print(f"  {campaign_id} ({tenant}/{case_id}): digest "
                  f"{digest[:16]}… == one-shot, record valid")

        status, status_body = service.request("GET", "/status")
        phases = status_body.get("phases", {})
        print(f"service-smoke: fleet phases: "
              f"{json.dumps(phases, sort_keys=True)}")
        if failures:
            print(f"service-smoke: FAIL ({failures} check(s))",
                  file=sys.stderr)
            return 1
        print("service-smoke: OK — concurrent HTTP campaigns are "
              "verdict-identical to one-shot runs")
        return 0
    finally:
        service.close()


if __name__ == "__main__":
    sys.exit(main())
