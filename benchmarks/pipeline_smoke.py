#!/usr/bin/env python
"""Pipeline smoke gate: ``--schedule cost`` verdicts == inventory order.

The CI-facing equivalence check of the streaming cost-aware pipeline: run
a small property-granularity campaign twice — once with the cost schedule
(LPT-balanced groups, costliest-first issue, work stealing) and once with
the inventory baseline — and fail (exit 1) unless every per-job status,
error and payload verdict is bit-identical.  Prints both makespans for
the record; wall-clock is *reported*, never asserted (CI boxes vary, and
on a single core the schedules can only tie).

Usage::

    python benchmarks/pipeline_smoke.py            # A2,A3 on 2 workers
    python benchmarks/pipeline_smoke.py --cases A1,A2,A5 --workers 4

The full-corpus version of this gate runs in tier-1
(``tests/integration/test_pipeline_corpus.py``).
"""

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.campaign import (expand_jobs, run_property_campaign,  # noqa: E402
                            verdict_contract)
from repro.formal import EngineConfig  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cases", default="A2,A3")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--depth", type=int, default=8)
    parser.add_argument("--frames", type=int, default=30)
    args = parser.parse_args(argv)

    config = EngineConfig(max_bound=args.depth, max_frames=args.frames)
    jobs = expand_jobs(case_ids=[c.strip() for c in args.cases.split(",")
                                 if c.strip()],
                       config=config)
    print(f"pipeline-smoke: {len(jobs)} jobs ({args.cases}) on "
          f"{args.workers} worker(s), bound {args.depth}/{args.frames}")

    runs = {}
    for schedule in ("inventory", "cost"):
        begin = time.monotonic()
        results = run_property_campaign(jobs, workers=args.workers,
                                        schedule=schedule)
        wall = time.monotonic() - begin
        steals = sum(r.steals for r in results)
        failed = sum(1 for r in results if not r.ok)
        runs[schedule] = results
        print(f"  {schedule:>9}: {wall:6.1f}s  "
              f"({failed} failed, {steals} steal(s))")

    if verdict_contract(runs["inventory"]) != verdict_contract(runs["cost"]):
        for inv, cost in zip(runs["inventory"], runs["cost"]):
            if (inv.status, inv.error, inv.payload) != \
                    (cost.status, cost.error, cost.payload):
                print(f"MISMATCH on {inv.job_id}: "
                      f"inventory={inv.status} cost={cost.status}",
                      file=sys.stderr)
        print("pipeline-smoke: FAIL — cost schedule diverged from "
              "inventory order", file=sys.stderr)
        return 1
    print("pipeline-smoke: OK — verdicts bit-identical across schedules")
    return 0


if __name__ == "__main__":
    sys.exit(main())
