"""E12 — engine ablation for the design choices DESIGN.md calls out.

Not a paper table: the paper delegates solving to JasperGold's engine zoo
("JasperGold engine selection guide" [6]).  Since this reproduction ships
its own engine, the ablation quantifies the three strategy choices:

1. **PDR vs k-induction** for safety proofs — k-induction needs the
   recurrence diameter, PDR discovers invariants;
2. **k-liveness vs plain L2S+PDR** for liveness proofs — the k-liveness
   monitor avoids shadow-state blowup;
3. **symbolic-transid tracking** (the paper's Section III-C step 3 claim:
   "a single assertion can be used to reason about all lines") vs checking a
   fixed id — the symbolic FT has the same cost shape while covering every
   id, demonstrated by it catching an id-specific bug a fixed-id FT misses.
"""

import pytest

from repro.core import generate_ft, run_fv
from repro.formal import EngineConfig

LSU_TEMPLATE = """
module lsu #( parameter TRANS_ID_BITS = 2 )(
  input  wire clk_i,
  input  wire rst_ni,
  /*AUTOSVA
  lsu_load: lsu_req -in> lsu_res
  lsu_req_val = lsu_valid_i
  lsu_req_rdy = lsu_ready_o
  [TRANS_ID_BITS-1:0] lsu_req_transid = lsu_trans_id_i
  lsu_res_val = load_valid_o
  [TRANS_ID_BITS-1:0] lsu_res_transid = load_trans_id_o
  */
  input  wire lsu_valid_i,
  output wire lsu_ready_o,
  input  wire [TRANS_ID_BITS-1:0] lsu_trans_id_i,
  output wire load_valid_o,
  output wire [TRANS_ID_BITS-1:0] load_trans_id_o
);
  reg busy;
  reg [TRANS_ID_BITS-1:0] id_q;
  assign lsu_ready_o = !busy;
  assign load_valid_o = busy;
  assign load_trans_id_o = id_q;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      busy <= 1'b0;
      id_q <= '0;
    end else begin
      if (lsu_valid_i && lsu_ready_o) begin
        busy <= {ACCEPT};
        id_q <= lsu_trans_id_i;
      end else begin
        busy <= 1'b0;
      end
    end
  end
endmodule
"""

GOOD = LSU_TEMPLATE.replace("{ACCEPT}", "1'b1")
# Drops exactly requests with id 3 — only a symbolic (all-id) FT can see it.
ID_BUG = LSU_TEMPLATE.replace("{ACCEPT}", "lsu_trans_id_i != 2'd3")


def _run(source, config):
    ft = generate_ft(source)
    return run_fv(ft, [source], config)


class TestProofEngineAblation:
    def test_pdr_proves_liveness(self, benchmark):
        config = EngineConfig(max_bound=6, proof_engine="pdr")
        report = benchmark.pedantic(lambda: _run(GOOD, config), rounds=1,
                                    iterations=1)
        assert report.proof_rate == 1.0, report.summary()

    def test_kinduction_cannot_close_liveness(self, benchmark):
        """k-induction exhausts its depth bound on the L2S system — the
        shadow registers admit long spurious inductive paths (why this
        reproduction, like production tools, defaults to PDR)."""
        config = EngineConfig(max_bound=6, proof_engine="kind", max_k=8)
        report = benchmark.pedantic(lambda: _run(GOOD, config), rounds=1,
                                    iterations=1)
        live = [r for r in report.results if r.kind == "live"]
        assert any(r.status == "unknown" for r in live), report.summary()
        # and it still never mis-reports: nothing is a (spurious) CEX
        assert report.num_cex == 0

    def test_kliveness_vs_plain_l2s(self, benchmark):
        """Disabling the k-liveness ladder falls back to PDR on the full
        L2S encoding; both prove this design, the ladder just does it with
        far less state (the interesting number is wall time, recorded by
        the benchmark)."""
        ladder = EngineConfig(max_bound=6, kliveness_rounds=(1, 2, 4))
        plain = EngineConfig(max_bound=6, kliveness_rounds=())

        def run_both():
            return _run(GOOD, ladder), _run(GOOD, plain)

        with_ladder, without = benchmark.pedantic(run_both, rounds=1,
                                                  iterations=1)
        assert with_ladder.proof_rate == 1.0
        assert without.proof_rate == 1.0
        ladder_live = sum(r.time_s for r in with_ladder.results
                          if r.kind == "live")
        plain_live = sum(r.time_s for r in without.results
                         if r.kind == "live")
        print(f"\nE12 liveness proof time: k-liveness {ladder_live:.2f}s "
              f"vs plain L2S {plain_live:.2f}s")


class TestSymbolicTrackingAblation:
    def test_symbolic_ft_catches_id_specific_bug(self, benchmark):
        config = EngineConfig(max_bound=8)
        report = benchmark.pedantic(lambda: _run(ID_BUG, config), rounds=1,
                                    iterations=1)
        cex = [r.name for r in report.cex_results]
        assert any("eventual_response" in name for name in cex), \
            report.summary()

    def test_fixed_id_ft_misses_it(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        """Pin the tracked id to 0 (replacing the symbolic): the id-3 bug
        becomes invisible — the motivation for symbolic tracking."""
        ft = generate_ft(ID_BUG)
        pinned = ft.prop_sv.replace(
            "wire [TRANS_ID_BITS-1:0] symb_lsu_load_transid;",
            "wire [TRANS_ID_BITS-1:0] symb_lsu_load_transid = '0;")
        assert pinned != ft.prop_sv
        from repro.rtl.synth import synthesize
        from repro.formal import FormalEngine
        merged = "\n".join([ID_BUG, pinned, ft.bind_sv])
        engine = FormalEngine(lambda: synthesize(merged, "lsu"),
                              EngineConfig(max_bound=8))
        report = engine.check_all()
        live = report.by_name("u_lsu_sva.as__lsu_load_eventual_response")
        assert live.status == "proven", live  # bug invisible at id 0
