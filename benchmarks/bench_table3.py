"""E1 — Table III: outcomes of the 7 evaluated RTL modules.

Paper (Table III):

    A1. Page Table Walker (PTW)    100% liveness/safety properties proof
    A2. Trans. Look. Buffer (TLB)  100% liveness/safety properties proof
    A3. Memory Mgmt. Unit (MMU)    Bug found and fixed -> 100% proof
    A4. Load Store Unit (LSU)      Hit known bug (issue #538)
    A5. L1-I$ (write-back)         Hit known bug (issue #474)
    O1. NoC Buffer                 Bug found and fixed -> 100% proof
    O2. L1.5$ (private)            NoC Buffer proof, other CEXs

Each benchmark runs the generated FT on the corresponding corpus module and
asserts the same outcome *shape*; the printed table is the reproduction of
Table III (captured by EXPERIMENTS.md).
"""

import pytest

from repro.designs import CORPUS, case_by_id

from conftest import check_case, default_config

RESULTS = {}


def _record(case_id, text):
    RESULTS[case_id] = text


@pytest.mark.parametrize("case_id", ["A1", "A2"])
def test_full_proof_modules(benchmark, case_id):
    """A1/A2: every liveness and safety property is proven."""
    case = case_by_id(case_id)

    def run():
        return check_case(case, "fixed")

    ft, report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.proof_rate == 1.0, report.summary()
    assert report.num_cex == 0
    _record(case_id, "100% liveness/safety properties proof")


@pytest.mark.parametrize("case_id", ["A3", "O1"])
def test_bug_found_and_fixed(benchmark, case_id):
    """A3/O1: the buggy variant yields a CEX; the fix reaches 100% proof."""
    case = case_by_id(case_id)

    def run():
        _, buggy_report = check_case(case, "buggy")
        _, fixed_report = check_case(case, "fixed")
        return buggy_report, fixed_report

    buggy_report, fixed_report = benchmark.pedantic(run, rounds=1,
                                                    iterations=1)
    failing = [r.name for r in buggy_report.cex_results]
    assert any(case.expect_buggy_cex in name for name in failing), failing
    assert fixed_report.proof_rate == 1.0, fixed_report.summary()
    _record(case_id, f"Bug found ({case.expect_buggy_cex} CEX) and fixed "
                     f"-> 100% proof")


@pytest.mark.parametrize("case_id", ["A4", "A5"])
def test_hit_known_bugs(benchmark, case_id):
    """A4/A5: the FT hits the known bug (liveness CEX on the buggy RTL)."""
    case = case_by_id(case_id)

    def run():
        return check_case(case, "buggy")

    ft, report = benchmark.pedantic(run, rounds=1, iterations=1)
    failing = [r.name for r in report.cex_results]
    assert any(case.expect_buggy_cex in name for name in failing), failing
    # The CEX is a short trace, as the paper stresses.
    cex = next(r for r in report.cex_results
               if case.expect_buggy_cex in r.name)
    assert cex.trace is not None and cex.depth <= 8
    _record(case_id, f"Hit known bug ({case.expect_buggy_cex}, "
                     f"{cex.depth + 1}-cycle trace)")


def test_l15_mixed_outcome(benchmark):
    """O2: buffer-instance properties prove; the miss transaction has CEXs
    from under-constrained message types."""
    case = case_by_id("O2")

    def run():
        return check_case(case, "fixed")

    ft, report = benchmark.pedantic(run, rounds=1, iterations=1)
    buffer_results = [r for r in report.results if "nocbuf" in r.name]
    assert buffer_results
    assert all(r.ok or r.status == "proven" for r in buffer_results), \
        [f"{r.name}:{r.status}" for r in buffer_results]
    miss_cexs = [r for r in report.cex_results if "l15_miss" in r.name]
    assert miss_cexs, report.summary()
    _record("O2", "NoC Buffer proof, other CEXs")


def test_zzz_print_table3(benchmark):
    """Assemble and print the reproduced Table III."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = {case.case_id: case for case in CORPUS if case.case_id != "E10"}
    print("\n=== Reproduced Table III ===")
    print(f"{'Module':<34} {'Paper result':<40} Reproduced")
    for case_id, case in rows.items():
        ours = RESULTS.get(case_id, "(not run in this session)")
        print(f"{case_id}. {case.name:<30} {case.paper_result:<40} {ours}")
