#!/usr/bin/env python
"""Observability smoke gate: valid telemetry artifacts, bounded overhead.

The CI-facing check of the `repro.obs` subsystem, in three parts:

1. **Artifact validity** — a traced 2-design property campaign must
   produce (a) a Chrome trace-event JSON file that parses, contains
   `M`/`X` events with µs timestamps rebased to 0, and shows the span
   taxonomy (`frontend`/`task`/`compile`/`check`); (b) an
   ExecutionRecord that round-trips through disk and passes
   ``validate_record`` (schema, inventory digest, task outcomes).
2. **Phase sanity** — the record's phase breakdown fields are present,
   numeric and non-negative.
3. **Overhead gate** — tracing must cost <= 5% (+0.25 s timer slack).
   Runs are separate CLI subprocesses (so the in-process compile cache
   cannot warm one side), interleaved disabled/enabled twice, min-of-2
   per side: ``min(traced) <= min(untraced) * 1.05 + 0.25``.

Usage::

    python benchmarks/obs_smoke.py               # A1,A2 on 2 workers
    python benchmarks/obs_smoke.py --cases A2 --workers 1
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.obs.record import validate_record  # noqa: E402

SPAN_NAMES = {"frontend", "task", "compile", "check"}


def _campaign_cmd(cases, workers, extra):
    return [sys.executable, "-m", "repro.core.cli", "campaign",
            "--cases", cases, "--granularity", "property",
            "--workers", str(workers), "--timeout", "300"] + extra


def _run(cmd):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    begin = time.monotonic()
    proc = subprocess.run(cmd, env=env, stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT, text=True)
    wall = time.monotonic() - begin
    if proc.returncode != 0:
        print(proc.stdout, file=sys.stderr)
        raise SystemExit(f"obs-smoke: campaign exited "
                         f"{proc.returncode}: {' '.join(cmd)}")
    return wall


def _check_trace(path):
    document = json.loads(path.read_text())
    events = document["traceEvents"]
    assert document.get("displayTimeUnit") == "ms", "bad displayTimeUnit"
    phases = {event["ph"] for event in events}
    assert "M" in phases and "X" in phases, f"missing event kinds: {phases}"
    complete = [event for event in events if event["ph"] == "X"]
    assert min(event["ts"] for event in complete) == 0.0, \
        "timestamps not rebased to 0"
    assert all(event["dur"] >= 0 for event in complete)
    names = {event["name"] for event in complete}
    missing = SPAN_NAMES - names
    assert not missing, f"span taxonomy incomplete, missing {missing}"
    pids = {event["pid"] for event in complete}
    assert len(pids) >= 2, "no worker-process spans merged in"
    print(f"  trace ok: {len(complete)} spans, {len(pids)} process(es), "
          f"names {sorted(names)}")


def _check_record(path):
    data = json.loads(path.read_text())
    validate_record(data)           # raises ValueError on any violation
    phases = data["phases"]
    for name in ("frontend_s", "solve_s", "engine_other_s",
                 "overhead_s", "wall_s"):
        value = phases.get(name)
        assert isinstance(value, (int, float)) and value >= 0, \
            f"phase {name} invalid: {value!r}"
    assert data["span_count"] > 0, "traced run recorded no spans"
    assert data["tasks"], "record has no task outcomes"
    assert all(task["status"] == "ok" for task in data["tasks"])
    print(f"  record ok: {len(data['tasks'])} tasks, "
          f"digest {data['inventory_digest'][:12]}..., "
          f"phases {phases}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cases", default="A1,A2")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--overhead-pct", type=float, default=5.0,
                        help="max tracing overhead in percent (default 5)")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="obs-smoke-") as tmp:
        trace = Path(tmp) / "trace.json"
        record = Path(tmp) / "record.json"
        traced_extra = ["--trace", str(trace),
                        "--execution-record", str(record)]
        print(f"obs-smoke: {args.cases} on {args.workers} worker(s)")

        # Interleave disabled/enabled runs so drift (thermal, page
        # cache) hits both sides evenly; min-of-2 drops outliers.
        untraced, traced = [], []
        for round_index in range(2):
            untraced.append(_run(_campaign_cmd(args.cases, args.workers,
                                               [])))
            traced.append(_run(_campaign_cmd(args.cases, args.workers,
                                             traced_extra)))
            print(f"  round {round_index}: untraced "
                  f"{untraced[-1]:.2f}s, traced {traced[-1]:.2f}s")

        _check_trace(trace)
        _check_record(record)

        bound = min(untraced) * (1.0 + args.overhead_pct / 100.0) + 0.25
        if min(traced) > bound:
            print(f"obs-smoke: FAIL — traced {min(traced):.2f}s exceeds "
                  f"{min(untraced):.2f}s * {1 + args.overhead_pct / 100.0}"
                  f" + 0.25s = {bound:.2f}s", file=sys.stderr)
            return 1
        print(f"obs-smoke: OK — tracing overhead "
              f"{min(traced) - min(untraced):+.2f}s "
              f"(bound {bound:.2f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
