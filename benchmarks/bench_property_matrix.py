"""E4 — Table II: properties generated for each transaction attribute.

Synthesizes minimal interfaces exercising each attribute and checks the
generated property set matches the Table II matrix, including the
assert/assume polarity rules of Section III-B (attributes marked * are
asserted on incoming and assumed on outgoing transactions; stable and
transid_unique are the opposite; active is always asserted).
"""

import pytest

from repro.core import generate_ft


def _module(annotations, direction="in"):
    return f"""
module m #(parameter W = 2)(
  input  wire clk_i,
  input  wire rst_ni,
  /*AUTOSVA
  t: p -{direction}> q
  {annotations}
  */
  input  wire p_port_val,
  input  wire p_port_ack_in,
  input  wire [W-1:0] p_port_id,
  input  wire [W-1:0] p_port_payload,
  input  wire p_port_act,
  output wire q_port_val,
  output wire [W-1:0] q_port_id,
  output wire [W-1:0] q_port_payload
);
endmodule
"""


def _labels(ft):
    return {a.full_label(): a for a in ft.prop.assertions if not a.xprop}


def _generate(annotations, direction="in"):
    return generate_ft(_module(annotations, direction))


BASE = "p_val = p_port_val\n  q_val = q_port_val"


class TestValAttribute:
    def test_incoming_liveness_and_safety_asserted(self, benchmark):
        ft = benchmark.pedantic(lambda: _generate(BASE), rounds=1,
                                iterations=1)
        labels = _labels(ft)
        assert "as__t_eventual_response" in labels
        assert labels["as__t_eventual_response"].liveness
        assert "as__t_had_a_request" in labels

    def test_outgoing_becomes_assumed(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        labels = _labels(_generate(BASE, direction="out"))
        assert "am__t_eventual_response" in labels
        assert "am__t_had_a_request" in labels


class TestAckAttribute:
    ANN = BASE + "\n  p_ack = p_port_ack_in"

    def test_hsk_or_drop_incoming_assert(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        labels = _labels(_generate(self.ANN))
        assert "as__t_hsk_or_drop" in labels
        # without stable, a dropped request is allowed
        assert "!p_val || p_ack" in labels["as__t_hsk_or_drop"].body

    def test_hsk_or_drop_outgoing_assume(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        labels = _labels(_generate(self.ANN, direction="out"))
        assert "am__t_hsk_or_drop" in labels


class TestStableAttribute:
    ANN = BASE + ("\n  p_ack = p_port_ack_in"
                  "\n  [W-1:0] p_stable = p_port_payload")

    def test_incoming_stability_assumed(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        labels = _labels(_generate(self.ANN))
        assert "am__t_stability" in labels
        assert "$stable" in labels["am__t_stability"].body

    def test_outgoing_stability_asserted(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        labels = _labels(_generate(self.ANN, direction="out"))
        assert "as__t_stability" in labels

    def test_stable_strengthens_hsk_or_drop(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        labels = _labels(_generate(self.ANN))
        # a stable request may not be dropped: discharge is the ack alone
        assert labels["as__t_hsk_or_drop"].body.endswith("p_ack")


class TestTransidAttributes:
    ANN = BASE + ("\n  [W-1:0] p_transid = p_port_id"
                  "\n  [W-1:0] q_transid = q_port_id")

    def test_symbolic_tracking_generated(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        ft = _generate(self.ANN)
        assert "symb_t_transid" in ft.prop_sv
        labels = _labels(ft)
        assert "am__symb_t_transid_stable" in labels

    def test_transid_unique_incoming_assumed(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        ann = self.ANN.replace("p_transid", "p_transid_unique")
        labels = _labels(_generate(ann))
        assert "am__t_transid_unique" in labels

    def test_transid_unique_outgoing_asserted(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        ann = self.ANN.replace("p_transid", "p_transid_unique")
        labels = _labels(_generate(ann, direction="out"))
        assert "as__t_transid_unique" in labels


class TestDataAttribute:
    ANN = BASE + ("\n  [W-1:0] p_data = p_port_payload"
                  "\n  [W-1:0] q_data = q_port_payload")

    def test_incoming_integrity_asserted(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        labels = _labels(_generate(self.ANN))
        assert "as__t_data_integrity" in labels
        assert "as__t_data_integrity_same_cycle" in labels

    def test_outgoing_integrity_assumed(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        labels = _labels(_generate(self.ANN, direction="out"))
        assert "am__t_data_integrity" in labels


class TestActiveAttribute:
    ANN = BASE + "\n  p_active = p_port_act"

    def test_always_asserted(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        for direction in ("in", "out"):
            labels = _labels(_generate(self.ANN, direction))
            assert "as__t_active" in labels


class TestCoverAndXprop:
    def test_cover_always_generated(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        labels = _labels(_generate(BASE))
        assert "co__t_happens" in labels

    def test_xprop_behind_macro(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        ft = _generate(BASE + "\n  [W-1:0] p_data = p_port_payload"
                              "\n  [W-1:0] q_data = q_port_payload")
        assert "`ifdef XPROP" in ft.prop_sv
        xprop = [a for a in ft.prop.assertions if a.xprop]
        assert xprop and all(a.directive == "assert" for a in xprop)
        assert all("$isunknown" in a.body for a in xprop)


def test_assert_inputs_flip(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """The ASSERT_INPUTS mode converts flippable assumptions to assertions
    (used for -AS submodule linking)."""
    from repro.core import render_propfile
    ft = _generate(BASE, direction="out")
    flipped = render_propfile(ft.prop, assert_inputs=True)
    assert "as__t_eventual_response" in flipped
    assert "am__t_eventual_response" not in flipped
    # symbolic stability stays an assumption even when flipping
    ft2 = _generate(BASE + "\n  [W-1:0] p_transid = p_port_id"
                           "\n  [W-1:0] q_transid = q_port_id")
    flipped2 = render_propfile(ft2.prop, assert_inputs=True)
    assert "am__symb_t_transid_stable" in flipped2
