"""E7/E8/E9/E10 — the paper's four bug narratives, end to end.

* **E7, Bug1 (ghost response on MMU)**: "This bug was found by the FV tool in
  less than a second, producing a 5-cycle trace ... the formal tool found a
  proof in few seconds for the previously failing assertion."
* **E8, Bug2 (deadlock in NoC buffer)**: "the FT was generated with just 3
  lines of code ... After fixing the bug (adding a 'not-full' condition to
  the ack signal), the formal tool resulted in a proof."
* **E9, known bugs (LSU #538, I$ #474)**: "The LSU FT hit (in 1 second) a
  bug that was recently discovered on a long FPGA run."
* **E10, fairness CEX**: "an ITLB miss was never filled because the PTW was
  always busy with DTLB misses ... the trace was quick (<1s) and short
  (<4 cycles) ... add an assumption to remove it."

Absolute runtimes differ (pure-Python engine vs JasperGold), but the shapes
— which property fails, how short the trace is, and that the fix converts
the CEX into a proof — are asserted below.
"""

import pytest

from repro.designs import case_by_id

from conftest import check_case


def test_e7_bug1_mmu_ghost_response(benchmark):
    case = case_by_id("A3")

    def run():
        _, buggy = check_case(case, "buggy")
        _, fixed = check_case(case, "fixed")
        return buggy, fixed

    buggy, fixed = benchmark.pedantic(run, rounds=1, iterations=1)
    ghost = next(r for r in buggy.cex_results if "had_a_request" in r.name)
    # The paper reports a 5-cycle trace; ours must be in the same ballpark.
    assert ghost.trace.depth <= 8, ghost.trace.depth
    # The ghost response arrives with no outstanding request: at the failing
    # cycle the response fires while the sampled counter is zero.  (The
    # response wire aliases lsu_valid_o, so the trace registers it under
    # the DUT port name.)
    last = ghost.trace.depth - 1
    resp = ghost.trace.value("lsu_valid_o", last)
    sampled = ghost.trace.value("u_mmu_sva.mmu_lsu_sampled", last)
    assert resp == 1 and sampled == 0
    # Bug-fix confidence: the fixed MMU proves everything.
    assert fixed.proof_rate == 1.0, fixed.summary()
    print(f"\nE7: ghost response CEX at cycle {last} "
          f"({ghost.trace.depth}-cycle trace; paper: 5-cycle); "
          f"fix -> 100% proof")


def test_e8_bug2_noc_buffer_deadlock(benchmark):
    from repro.core import generate_ft
    case = case_by_id("O1")
    # "The FT was generated with just 3 lines of code"
    ft = generate_ft(case.buggy_source(), module_name=case.dut_module)
    assert ft.annotation_loc == 3

    def run():
        _, buggy = check_case(case, "buggy")
        _, fixed = check_case(case, "fixed")
        return buggy, fixed

    buggy, fixed = benchmark.pedantic(run, rounds=1, iterations=1)
    deadlock = next(r for r in buggy.cex_results
                    if "eventual_response" in r.name)
    assert deadlock.trace.loop_start is not None  # a genuine lasso
    assert fixed.proof_rate == 1.0, fixed.summary()
    print(f"\nE8: deadlock lasso at depth {deadlock.depth} "
          f"(loop from cycle {deadlock.trace.loop_start}); "
          f"not-full fix -> 100% proof")


@pytest.mark.parametrize("case_id,issue", [("A4", "#538"), ("A5", "#474")])
def test_e9_known_bugs(benchmark, case_id, issue):
    case = case_by_id(case_id)

    def run():
        return check_case(case, "buggy")

    _, report = benchmark.pedantic(run, rounds=1, iterations=1)
    cex = next(r for r in report.cex_results
               if case.expect_buggy_cex in r.name)
    assert cex.trace is not None
    assert cex.depth <= 8
    print(f"\nE9 {case_id}: hit known-bug analogue ({issue}) — "
          f"{case.expect_buggy_cex} CEX, {cex.depth + 1}-cycle trace")


def test_e10_fairness_cex_and_assumption(benchmark):
    case = case_by_id("E10")

    def run():
        _, starving = check_case(case, "buggy")   # without the assumption
        _, fair = check_case(case, "fixed")       # with the inline assumption
        return starving, fair

    starving, fair = benchmark.pedantic(run, rounds=1, iterations=1)
    cex = next(r for r in starving.cex_results
               if "eventual_response" in r.name)
    # Paper: trace shorter than 4 cycles (ours: the lasso fits in a handful).
    assert cex.depth <= 4, cex.depth
    assert cex.trace.loop_start is not None
    assert fair.proof_rate == 1.0, fair.summary()
    print(f"\nE10: ITLB starvation lasso, {cex.depth + 1}-cycle trace "
          f"(paper: <4 cycles); added assumption -> 100% proof")
