"""E5 — "AutoSVA generated a total of 236 unique properties (no loops)
based on 110 LoC of annotations" (Sections IV and VI).

The corpus here is a *reduced* model of the Ariane/OpenPiton modules, so the
absolute numbers are smaller; the reproduced claims are the shape ones:

* every module yields tens of properties from a handful of annotation lines
  (the leverage ratio properties/annotation-LoC is comfortably > 1);
* all properties are explicit SVA statements — no generate loops — so the
  count equals the number of assert/assume/cover statements in the files;
* the Bug2 FT comes from exactly 3 annotation lines (Section IV).
"""

from repro.core import generate_ft
from repro.designs import CORPUS, case_by_id


def _generate_all():
    out = []
    for case in CORPUS:
        ft = generate_ft(case.dut_source(), module_name=case.dut_module)
        out.append((case, ft))
    return out


def test_corpus_property_totals(benchmark):
    pairs = benchmark.pedantic(_generate_all, rounds=1, iterations=1)
    total_props = sum(ft.property_count for _, ft in pairs)
    total_loc = sum(ft.annotation_loc for _, ft in pairs)
    print("\n=== Property counts (paper: 236 properties / 110 LoC) ===")
    print(f"{'case':<5} {'module':<12} {'annotation LoC':>14} "
          f"{'properties':>10}")
    for case, ft in pairs:
        print(f"{case.case_id:<5} {case.dut_module:<12} "
              f"{ft.annotation_loc:>14} {ft.property_count:>10}")
    print(f"{'TOTAL':<18} {total_loc:>14} {total_props:>10} "
          f"(leverage {total_props / total_loc:.1f}x)")
    assert total_props > total_loc  # the leverage claim
    assert total_props >= 50


def test_noc_buffer_three_line_ft(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """Section IV: 'the FT was generated with just 3 lines of code'."""
    case = case_by_id("O1")
    ft = generate_ft(case.dut_source(), module_name=case.dut_module)
    assert ft.annotation_loc == 3
    assert ft.property_count >= 5


def test_no_loops_in_generated_files(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """'236 unique properties (no loops)': the generated SVA uses symbolic
    indices, never generate-for loops."""
    for case in CORPUS:
        ft = generate_ft(case.dut_source(), module_name=case.dut_module)
        assert "generate\n" not in ft.prop_sv  # no generate blocks
        assert "genvar" not in ft.prop_sv
        assert "for (" not in ft.prop_sv
        if any(tx.has_transid for tx in ft.transactions):
            assert "symb_" in ft.prop_sv  # symbolic index tracking instead


def test_property_labels_unique(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for case in CORPUS:
        ft = generate_ft(case.dut_source(), module_name=case.dut_module)
        labels = [a.full_label() for a in ft.prop.assertions]
        assert len(labels) == len(set(labels)), labels
