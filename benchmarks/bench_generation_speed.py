"""E6 — "AutoSVA generates FTs in under a second" (Section III-C).

Benchmarks FT generation wall time for every corpus module and asserts the
sub-second claim holds for each (it holds with two orders of magnitude of
margin: generation is pure text processing).
"""

import pytest

from repro.core import generate_ft
from repro.designs import CORPUS


@pytest.mark.parametrize("case", CORPUS, ids=lambda c: c.case_id)
def test_generation_under_a_second(benchmark, case):
    source = case.dut_source()

    def run():
        return generate_ft(source, module_name=case.dut_module)

    ft = benchmark(run)
    assert ft.generation_time_s < 1.0
    assert ft.property_count > 0
    assert ft.prop_sv and ft.bind_sv and ft.sby and ft.jg_tcl


def test_generation_speed_scales_with_transactions(benchmark):
    """Generation over the whole corpus stays sub-second in aggregate."""
    sources = [(case.dut_source(), case.dut_module) for case in CORPUS]

    def run_all():
        return [generate_ft(src, module_name=mod) for src, mod in sources]

    fts = benchmark(run_all)
    assert len(fts) == len(CORPUS)
