#!/usr/bin/env python3
"""Property reuse in simulation (paper Section III-B).

Formal tools are two-valued, so AutoSVA emits X-propagation assertions under
an ``XPROP`` macro for the *simulation* side of the flow.  This example
binds a generated property file into the 4-state simulator and shows an
un-reset payload register being caught by the generated XPROP assertion —
a bug class that formal verification cannot see at all.

Run:  python examples/xprop_simulation.py
"""

from repro.core import generate_ft
from repro.designs import case_by_id
from repro.sim import Simulator, simulate_random

XLEAKY = """
module xleaky #(
  parameter W = 4
)(
  input  wire clk_i,
  input  wire rst_ni,
  /*AUTOSVA
  t: a_req -in> a_res
  a_req_val = req_i
  [W-1:0] a_req_data = data_i
  a_res_val = res_val_o
  [W-1:0] a_res_data = res_data_o
  */
  input  wire req_i,
  input  wire data_en_i,
  input  wire [W-1:0] data_i,
  output wire res_val_o,
  output wire [W-1:0] res_data_o
);
  reg        val_q;
  reg [W-1:0] data_q;   // BUG: never reset, load enable not tied to req
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      val_q <= 1'b0;
    end else begin
      val_q <= req_i;
      if (req_i && data_en_i)
        data_q <= data_i;
    end
  end
  assign res_val_o  = val_q;
  assign res_data_o = data_q;
endmodule
"""


def main() -> None:
    print("=== A clean design: no violations under random stimulus ===")
    case = case_by_id("O1")
    source = case.dut_source()
    ft = generate_ft(source, module_name=case.dut_module)
    violations = simulate_random(source, case.dut_module,
                                 ft.testbench_sources(), cycles=300, seed=7)
    print(f"noc_buffer (fixed): {len(violations)} violations in 300 "
          f"random cycles\n")

    print("=== An X bug formal cannot see ===")
    ft_leaky = generate_ft(XLEAKY)
    xprop_lines = [line for line in ft_leaky.prop_sv.splitlines()
                   if "isunknown" in line or "XPROP" in line]
    print("Generated X-propagation checks (simulation-only):")
    for line in xprop_lines:
        print(f"  {line.strip()}")

    sim = Simulator(XLEAKY, "xleaky",
                    extra_sources=tuple(ft_leaky.testbench_sources()),
                    defines=("XPROP",), seed=1)
    sim.step()  # reset cycle
    print("\nDriving a request whose data enable is low...")
    for _ in range(3):
        for violation in sim.step(inputs={"req_i": 1, "data_en_i": 0,
                                          "data_i": 5}):
            print(f"  VIOLATION {violation}")
    caught = [v for v in sim.violations if v.xprop]
    assert caught, "the XPROP assertion should have fired"
    print(f"\nThe response went valid with an X payload — caught by "
          f"{caught[0].label}.")
    print("Formal proves this design's control properties (X is just 0/1 "
          "there); only the simulation reuse path exposes the X bug — "
          "which is precisely why AutoSVA generates both.")


if __name__ == "__main__":
    main()
