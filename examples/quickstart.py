#!/usr/bin/env python3
"""Quickstart: annotate an RTL interface, generate a formal testbench, run it.

This walks the paper's Fig. 3 -> Fig. 2 path on a small load-store unit:

1. the designer annotates the module's interface with AutoSVA's transaction
   language (the ``/*AUTOSVA ... */`` block below — six lines);
2. ``generate_ft`` produces the property file, bind file and tool scripts;
3. ``run_fv`` hands the testbench to the built-in formal engine, which
   proves liveness ("every load eventually gets its response") and safety
   ("every response had a request") — or returns a counterexample trace.

Run:  python examples/quickstart.py
"""

from repro.core import generate_ft, run_fv
from repro.formal import EngineConfig

LSU = """
module lsu #(
  parameter TRANS_ID_BITS = 2
)(
  input  wire clk_i,
  input  wire rst_ni,
  /*AUTOSVA
  lsu_load: lsu_req -in> lsu_res
  lsu_req_val = lsu_valid_i
  lsu_req_rdy = lsu_ready_o
  [TRANS_ID_BITS-1:0] lsu_req_transid = lsu_trans_id_i
  lsu_res_val = load_valid_o
  [TRANS_ID_BITS-1:0] lsu_res_transid = load_trans_id_o
  */
  input  wire lsu_valid_i,
  output wire lsu_ready_o,
  input  wire [TRANS_ID_BITS-1:0] lsu_trans_id_i,
  output wire load_valid_o,
  output wire [TRANS_ID_BITS-1:0] load_trans_id_o
);
  // Single outstanding load, answered one cycle later.
  reg busy;
  reg [TRANS_ID_BITS-1:0] id_q;
  assign lsu_ready_o  = !busy;
  assign load_valid_o = busy;
  assign load_trans_id_o = id_q;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      busy <= 1'b0;
      id_q <= '0;
    end else begin
      if (lsu_valid_i && lsu_ready_o) begin
        busy <= 1'b1;
        id_q <= lsu_trans_id_i;
      end else begin
        busy <= 1'b0;
      end
    end
  end
endmodule
"""


def main() -> None:
    print("=== Step 1-5: generate the formal testbench ===")
    ft = generate_ft(LSU)
    print(f"DUT: {ft.dut_name} — {ft.property_count} properties from "
          f"{ft.annotation_loc} annotation lines "
          f"in {ft.generation_time_s * 1000:.1f} ms\n")

    print("--- generated property file (lsu_prop.sv) ---")
    print(ft.prop_sv)
    print("--- generated bind file (lsu_bind.sv) ---")
    print(ft.bind_sv)
    print("--- SymbiYosys / JasperGold configs are in ft.files() ---")
    for name in ft.files():
        print(f"  {name}")

    print("\n=== Run the built-in formal engine ===")
    report = run_fv(ft, [LSU], EngineConfig(max_bound=8))
    print(report.summary())
    if report.proof_rate == 1.0:
        print("\nAll liveness and safety properties proven: the LSU cannot "
              "hang, and every response matches a request.")
    else:
        for result in report.cex_results:
            print()
            print(result.trace.render())


if __name__ == "__main__":
    main()
