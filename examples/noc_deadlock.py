#!/usr/bin/env python3
"""Bug2 walkthrough: the NoC-buffer deadlock (paper Section IV).

The OpenPiton NoC1 buffer was written for the L1.5$, whose MSHR logic never
issues more requests than the buffer has entries.  Reused under the new Mem
Engine, that implicit contract broke: the buffer acks unconditionally, a
burst overflows it, an entry is silently overwritten, and the overwritten
request never reaches the NoC — deadlock.

"Since the interfaces mostly matched the AutoSVA language, the FT was
generated with just 3 lines of code. [...] After fixing the bug (adding a
'not-full' condition to the ack signal), the formal tool resulted in a
proof."

This script shows (1) the 3-line FT, (2) the liveness lasso on the buggy
buffer, (3) the proof on the fixed one, and (4) the Mem Engine system
context that motivated the hunt.

Run:  python examples/noc_deadlock.py
"""

from repro.core import generate_ft, run_fv
from repro.designs import case_by_id, load
from repro.formal import EngineConfig


def main() -> None:
    case = case_by_id("O1")
    config = EngineConfig(max_bound=8, max_frames=30)

    print("=== The 3-line annotation (paper Fig. 7, mem-engine_noc) ===")
    buggy = case.buggy_source()
    for line in buggy.splitlines():
        if "AUTOSVA" in line or "-in>" in line or "transid" in line:
            print(f"  {line.strip()}")
    ft = generate_ft(buggy, module_name=case.dut_module)
    print(f"\n-> {ft.property_count} properties generated from "
          f"{ft.annotation_loc} annotation lines "
          f"(val/ack picked up implicitly from the port names)\n")

    print("=== Buggy buffer (ack ignores fullness) ===")
    report = run_fv(ft, [buggy], config)
    print(report.summary())
    deadlock = next(r for r in report.cex_results
                    if "eventual_response" in r.name)
    print(f"\nDeadlock lasso (loop back to cycle "
          f"{deadlock.trace.loop_start}):\n")
    trace = deadlock.trace
    for name in ("noc1buffer_req_val", "noc1buffer_req_ack",
                 "noc1buffer_req_mshrid", "noc1buffer_enc_val",
                 "noc1buffer_enc_ack", "noc1buffer_enc_mshrid",
                 "u_noc_buffer_sva.symb_nocbuf_transid",
                 "u_noc_buffer_sva.nocbuf_sampled"):
        if name in trace.cycles:
            values = " ".join(f"{v:>2x}" for v in trace.cycles[name])
            print(f"  {name:<38} {values}")
    print("\nReading the trace: the tracked mshrid is pushed while the "
          "buffer is already full; the overwritten entry never appears on "
          "the encoder side, so the transaction can never complete.")

    print("\n=== Fixed buffer (ack = !full) ===")
    fixed = case.dut_source()
    ft_fixed = generate_ft(fixed, module_name=case.dut_module)
    report_fixed = run_fv(ft_fixed, [fixed], config)
    print(report_fixed.summary())
    assert report_fixed.proof_rate == 1.0
    print("\nAll properties proven — the not-full condition is exactly the "
          "paper's fix.")

    print("\n=== System context: the Mem Engine that triggered the bug ===")
    engine_src = load("openpiton/mem_engine.sv")
    print("mem_engine.sv issues a 4-beat burst against a 2-entry buffer, "
          "trusting noc1buffer_req_ack; with the buggy ack it overflows "
          "exactly as the unconstrained formal environment does.")
    assert "beats_q <= 3'd4" in engine_src


if __name__ == "__main__":
    main()
