#!/usr/bin/env python3
"""Bug1 walkthrough: the MMU "ghost response" (paper Section IV).

Reproduces the paper's strongest anecdote end to end:

  "within 1 hour, AutoSVA generated a FT for Ariane's MMU, discovered a
   bug, and verified the bug-fix. [...] The MMU responds immediately with a
   bad alignment response, but the DTLB still misses and the PTW is
   activated (bad behavior). In the case of a page fault, the MMU generates
   a second 'ghost' response to the LSU [...] producing a 5-cycle trace"

The script generates the MMU's FT once, runs it against the buggy RTL (CEX
on `had_a_request`, with the waveform printed), then against the fixed RTL
(everything proven) — the paper's "bug-fix confidence" metric.

Run:  python examples/mmu_bughunt.py
"""

import time

from repro.core import generate_ft, run_fv
from repro.designs import case_by_id
from repro.formal import EngineConfig

KEY_SIGNALS = [
    "lsu_req_i", "lsu_misaligned_i", "lsu_ready_o", "lsu_valid_o",
    "lsu_exception_o", "req_port_data_req_o", "req_port_data_gnt_i",
    "req_port_data_rvalid_i", "data_err_i",
    "u_mmu_sva.mmu_lsu_sampled",
]


def main() -> None:
    case = case_by_id("A3")
    config = EngineConfig(max_bound=8, max_frames=30)

    print("=== Buggy MMU: PTW not masked on misaligned requests ===")
    buggy = case.buggy_source()
    ft = generate_ft(buggy, module_name=case.dut_module)
    print(f"FT: {ft.property_count} properties from {ft.annotation_loc} "
          f"annotation lines\n")

    begin = time.perf_counter()
    report = run_fv(ft, [buggy] + case.extra_sources(), config)
    print(report.summary())
    ghost = next(r for r in report.cex_results if "had_a_request" in r.name)
    print(f"\nGhost response found in {time.perf_counter() - begin:.1f}s, "
          f"{ghost.trace.depth}-cycle trace (paper: <1s, 5-cycle trace):\n")
    trace = ghost.trace
    for name in KEY_SIGNALS:
        if name in trace.cycles:
            values = " ".join(f"{v:>2x}" for v in trace.cycles[name])
            print(f"  {name:<28} {values}")
    print("\nReading the trace: the misaligned request is answered "
          "immediately (cycle 0), yet the walk proceeds; when it faults, "
          "lsu_valid_o pulses again with the outstanding counter at 0 — "
          "a response nobody asked for.")

    print("\n=== Fixed MMU: ptw_start masked with !lsu_misaligned_i ===")
    fixed = case.dut_source()
    ft_fixed = generate_ft(fixed, module_name=case.dut_module)
    begin = time.perf_counter()
    report_fixed = run_fv(ft_fixed, [fixed] + case.extra_sources(), config)
    print(report_fixed.summary())
    assert report_fixed.proof_rate == 1.0
    print(f"\nBug-fix verified in {time.perf_counter() - begin:.1f}s: the "
          f"previously failing assertion is proven (paper: 'the formal tool "
          f"found a proof in few seconds ... the MMU FT proof-rate was "
          f"100%').")


if __name__ == "__main__":
    main()
