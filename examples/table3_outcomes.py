#!/usr/bin/env python3
"""Regenerate the paper's Table III across the whole corpus — as a campaign.

This drives :mod:`repro.campaign`: the corpus registry is expanded into
design × variant jobs, scheduled on a worker pool (``--workers N``, with
optional ``--cache-dir`` for incremental reruns), and aggregated into a
table in the shape of the paper's Table III, plus the aggregate
property/annotation counts of Section IV.

Run:  python examples/table3_outcomes.py [--workers 4] [--cache-dir DIR]
      [--granularity property]
      (~1-2 minutes serial; scales with workers.  Property granularity
      shards each design's property set across the pool via repro.api —
      same verdicts, better critical path on multi-core boxes.)
"""

import argparse
import sys
import time

from repro.campaign import (ArtifactCache, CampaignReport, expand_jobs,
                            run_campaign, run_property_campaign)
from repro.designs import CORPUS, validate


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--granularity", choices=("design", "property"),
                        default="design")
    args = parser.parse_args()

    # E10 is an in-text experiment, not a Table III row.
    cases = [case for case in CORPUS if case.case_id != "E10"]
    validate(tuple(cases), raise_on_issue=True)
    jobs = expand_jobs(cases=cases)
    cache = ArtifactCache(args.cache_dir) if args.cache_dir else None

    begin = time.monotonic()
    if args.granularity == "property":
        def on_event(e):
            if e.kind == "compile_started":
                print(f"[{e.design}] compiling...", flush=True)
            elif e.kind == "compile_done":
                print(f"[{e.design}] compiled in {e.wall_time_s:.1f}s",
                      flush=True)
            elif e.kind == "steal":
                print(f"[{e.task_id}] re-split (work stealing)",
                      flush=True)
            else:
                print(f"[{e.task_id}] {e.status}"
                      + (" (cached)" if e.from_cache
                         else f" in {e.wall_time_s:.1f}s"), flush=True)

        results = run_property_campaign(
            jobs, workers=args.workers, cache=cache, progress=on_event)
    else:
        results = run_campaign(
            jobs, workers=args.workers, cache=cache,
            progress=lambda r: print(
                f"[{r.job_id}] {r.status}"
                + (" (cached)" if r.from_cache
                   else f" in {r.wall_time_s:.1f}s"),
                flush=True))
    report = CampaignReport(jobs, results, workers=args.workers,
                            wall_time_s=time.monotonic() - begin,
                            cache_stats=cache.stats() if cache else None)

    print("\n=== Table III (reproduced) ===")
    print(report.summary())
    print("\n(paper: 236 properties / 110 LoC on the full-size RTL; the "
          "reduced models have fewer interfaces, the leverage shape is "
          "what reproduces)")
    if report.num_failed:
        sys.exit(2)


if __name__ == "__main__":
    main()
