#!/usr/bin/env python3
"""Regenerate the paper's Table III across the whole corpus.

For every evaluated module this script generates the FT, runs the formal
engine on the buggy variant (where one exists) and on the fixed/default
variant, and prints a table in the shape of the paper's Table III, plus the
aggregate property/annotation counts of Section IV.

Run:  python examples/table3_outcomes.py          (~3-5 minutes)
"""

import time

from repro.core import generate_ft, run_fv
from repro.designs import CORPUS
from repro.formal import EngineConfig


def outcome_text(case, buggy_report, fixed_report):
    if buggy_report is not None:
        failing = sorted({r.name.split("__")[-1]
                          for r in buggy_report.cex_results})
        if fixed_report.proof_rate == 1.0:
            return f"Bug found ({', '.join(failing)}) and fixed -> 100% proof"
        return f"Hit known bug ({', '.join(failing)})"
    if fixed_report.proof_rate == 1.0:
        return "100% liveness/safety properties proof"
    partial = sorted({r.name.split("__")[-1]
                      for r in fixed_report.cex_results})
    return f"partial proof, CEXs: {', '.join(partial)}"


def main() -> None:
    config = EngineConfig(max_bound=8, max_frames=30)
    rows = []
    total_props = 0
    total_loc = 0
    for case in CORPUS:
        if case.case_id == "E10":
            continue  # in-text experiment, not a Table III row
        begin = time.perf_counter()
        fixed_src = case.dut_source()
        ft = generate_ft(fixed_src, module_name=case.dut_module)
        total_props += ft.property_count
        total_loc += ft.annotation_loc
        fixed_report = run_fv(ft, [fixed_src] + case.extra_sources(), config)
        buggy_report = None
        buggy_src = case.buggy_source()
        if buggy_src is not None:
            ft_buggy = generate_ft(buggy_src, module_name=case.dut_module)
            buggy_report = run_fv(ft_buggy,
                                  [buggy_src] + case.extra_sources(), config)
        elapsed = time.perf_counter() - begin
        rows.append((case, outcome_text(case, buggy_report, fixed_report),
                     elapsed))
        print(f"[{case.case_id}] done in {elapsed:.1f}s", flush=True)

    print("\n=== Table III (reproduced) ===")
    print(f"{'RTL Module':<36} {'Result':<55} {'time':>6}")
    for case, text, elapsed in rows:
        label = f"{case.case_id}. {case.name}"
        print(f"{label:<36} {text:<55} {elapsed:5.1f}s")
    print(f"\nTotals: {total_props} generated properties from {total_loc} "
          f"annotation LoC across the corpus")
    print("(paper: 236 properties / 110 LoC on the full-size RTL; the "
          "reduced models have fewer interfaces, the leverage shape is "
          "what reproduces)")


if __name__ == "__main__":
    main()
