"""Legacy setup shim.

The sandbox this reproduction runs in has no network and no `wheel` package,
so PEP 660 editable installs (`pip install -e .` with build isolation) cannot
build. This shim enables the classic `pip install -e . --no-use-pep517
--no-build-isolation` path. All metadata lives in pyproject.toml; setuptools
>= 61 reads it from there.
"""

from setuptools import setup

setup()
