"""Broker tests: concurrent campaigns multiplexed onto ONE shared fabric.

The acceptance contract of the service tentpole, asserted broker-level
(the HTTP layer adds nothing verdict-relevant):

* concurrent campaigns' verdicts are bit-identical to serial one-shot
  ``run_property_campaign`` runs of the same jobs;
* a design needed by several concurrent campaigns compiles at most once
  (the shared process-global compile cache);
* each campaign's event feed is isolated — no cross-campaign leakage;
* every completed campaign yields a digest-validated ExecutionRecord;
* quota rejections happen before any allocation and consume zero fabric
  slots; a tenant over wall budget has its open campaigns cancelled.
"""

import time

import pytest

from repro.campaign import (expand_jobs, run_property_campaign,
                            verdict_contract)
from repro.formal.engine import EngineConfig
from repro.service import (CampaignBroker, CampaignSpec, QuotaError,
                           TenantQuota, TenantRegistry)

_CONFIG = EngineConfig(max_bound=8, max_frames=30)
_VARIANTS = ["fixed", "buggy"]


def _spec(tenant, cases, **overrides):
    return CampaignSpec(tenant=tenant, case_ids=cases,
                        variants=list(_VARIANTS), depth=8, frames=30,
                        **overrides)


def _settle(broker, campaigns, timeout_s=180.0):
    deadline = time.monotonic() + timeout_s
    while any(not campaign.settled for campaign in campaigns):
        assert broker.running, f"broker died: {broker._fatal}"
        assert time.monotonic() < deadline, "campaigns never settled"
        time.sleep(0.02)


class TestConcurrentCampaigns:
    def test_three_campaigns_one_fabric_match_serial_runs(self):
        """Three overlapping campaigns from two tenants — two wanting
        the same design — on one 2-worker pool."""
        from repro.api.compile import COMPILE_CACHE

        before = COMPILE_CACHE.stats()
        broker = CampaignBroker(workers=2).start()
        try:
            alice_a1 = broker.submit(_spec("alice", ["A1"]))
            bob_a1 = broker.submit(_spec("bob", ["A1"]))
            alice_a2 = broker.submit(_spec("alice", ["A2"]))
            campaigns = [alice_a1, bob_a1, alice_a2]
            _settle(broker, campaigns)
        finally:
            broker.close()
        after = COMPILE_CACHE.stats()

        assert [c.status for c in campaigns] == ["completed"] * 3

        # Verdict equivalence: each service campaign is bit-identical
        # (under the verdict contract) to a one-shot serial run.
        for campaign, case_id in ((alice_a1, "A1"), (bob_a1, "A1"),
                                  (alice_a2, "A2")):
            serial = run_property_campaign(
                expand_jobs(case_ids=[case_id], config=_CONFIG), workers=2)
            assert verdict_contract(campaign.results) == \
                verdict_contract(serial), f"{campaign.id} diverged"

        # One compile per design ACROSS campaigns: the three campaigns
        # expanded 2*|A1| + |A2| designs, but the process-global compile
        # cache ran the frontend at most once per distinct design — the
        # duplicate A1 expansions were cache hits.
        distinct = len(alice_a1.jobs) + len(alice_a2.jobs)
        assert after["compiles"] - before["compiles"] <= distinct
        assert after["hits"] - before["hits"] >= len(bob_a1.jobs)

        # Event isolation: a campaign's feed never names another
        # campaign's designs, and its result set is complete.
        a1_designs = {event.get("design") for event in alice_a1.feed}
        a2_designs = {event.get("design")
                      for event in alice_a2.feed if event.get("design")}
        assert not (a1_designs & a2_designs)
        assert len(alice_a1.events) == len(bob_a1.events)
        assert {e.task_id for e in alice_a1.events} == \
            {e.task_id for e in bob_a1.events}

        # Every completed campaign carries a validated ExecutionRecord
        # stamped with its identity (validate_record already ran in the
        # broker; a None here would mean it failed).
        for campaign in campaigns:
            assert campaign.record_dict is not None
            assert campaign.record_dict["config"]["campaign"] == campaign.id
            assert campaign.record_dict["config"]["tenant"] == \
                campaign.tenant
            assert campaign.report_dict["campaign"] == campaign.id
            assert "phases" in campaign.report_dict
            assert "wall_spent_s" in campaign.report_dict["tenant_usage"]

    def test_cancellation_settles_without_report(self):
        broker = CampaignBroker(workers=2).start()
        try:
            campaign = broker.submit(_spec("alice", ["A1"]))
            broker.cancel(campaign.id, reason="client hung up")
            _settle(broker, [campaign])
        finally:
            broker.close()
        assert campaign.status == "cancelled"
        assert campaign.cancel_reason == "client hung up"
        assert campaign.report_dict is None
        terminal = campaign.feed[-1]
        assert terminal["kind"] == "campaign_done"
        assert terminal["status"] == "cancelled"


class TestQuotaEnforcement:
    def test_over_quota_rejection_consumes_nothing(self):
        registry = TenantRegistry(
            overrides={"carol": TenantQuota(max_open_campaigns=1)})
        broker = CampaignBroker(workers=2, tenants=registry).start()
        try:
            first = broker.submit(_spec("carol", ["A1"]))
            with pytest.raises(QuotaError) as info:
                broker.submit(_spec("carol", ["A2"]))
            assert info.value.code == "too_many_campaigns"
            assert info.value.http_status == 429
            # The rejection allocated nothing: one campaign exists, the
            # rejected one was counted, and the fabric only ever saw the
            # admitted campaign's tasks.
            assert len(broker.list_campaigns()) == 1
            assert registry.usage("carol").campaigns_rejected == 1
            _settle(broker, [first])
            assert first.status == "completed"
            assert registry.usage("carol").tasks_total == \
                len(first.events)
        finally:
            broker.close()

    def test_wall_budget_exhaustion_cancels_and_blocks(self):
        registry = TenantRegistry(
            overrides={"dave": TenantQuota(wall_budget_s=1e-6)})
        broker = CampaignBroker(workers=2, tenants=registry).start()
        try:
            campaign = broker.submit(_spec("dave", ["A1"]))
            _settle(broker, [campaign])
            assert campaign.status == "cancelled"
            assert campaign.cancel_reason == "wall budget exhausted"
            # Follow-up submissions are refused at admission.
            with pytest.raises(QuotaError) as info:
                broker.submit(_spec("dave", ["A1"]))
            assert info.value.code == "wall_budget_exhausted"
            assert info.value.http_status == 403
        finally:
            broker.close()

    def test_closed_broker_refuses_admission(self):
        broker = CampaignBroker(workers=1).start()
        broker.close()
        with pytest.raises(QuotaError) as info:
            broker.submit(_spec("alice", ["A1"]))
        assert info.value.code == "service_shutting_down"
        assert info.value.http_status == 503
