"""HTTP server round-trip tests against an ephemeral-port service.

Spins the asyncio front door in a background thread over a real
2-worker broker, then drives it with stdlib ``http.client`` — submit,
stream (SSE and NDJSON), report, record, status, cancel, rejection
shapes — exactly the way a curl user would.
"""

import asyncio
import http.client
import json
import threading

import pytest

from repro.service import (CampaignBroker, CampaignServer, TenantQuota,
                           TenantRegistry)


class _Service:
    """One CampaignServer running on its own event-loop thread."""

    def __init__(self, broker):
        self.broker = broker
        self.server = CampaignServer(broker)
        self._ready = threading.Event()
        self._loop = None
        self._stop = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(10.0), "server never came up"

    def _run(self):
        async def main():
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            await self.server.start("127.0.0.1", 0)
            self.port = self.server.address[1]
            self._ready.set()
            await self._stop.wait()
            await self.server.close()

        asyncio.run(main())

    def close(self):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(10.0)
        self.broker.close()

    # -- tiny client -------------------------------------------------------
    def request(self, method, path, body=None):
        connection = http.client.HTTPConnection("127.0.0.1", self.port,
                                                timeout=60.0)
        try:
            connection.request(
                method, path,
                body=json.dumps(body) if body is not None else None,
                headers={"Content-Type": "application/json"}
                if body is not None else {})
            response = connection.getresponse()
            return response.status, json.loads(response.read() or b"null")
        finally:
            connection.close()

    def stream(self, path):
        """Read a streaming response to EOF; returns the raw text."""
        connection = http.client.HTTPConnection("127.0.0.1", self.port,
                                                timeout=180.0)
        try:
            connection.request("GET", path)
            response = connection.getresponse()
            assert response.status == 200
            return response.read().decode("utf-8")
        finally:
            connection.close()


@pytest.fixture(scope="module")
def service():
    registry = TenantRegistry(
        overrides={"capped": TenantQuota(max_open_campaigns=0)})
    service = _Service(CampaignBroker(workers=2, tenants=registry).start())
    yield service
    service.close()


def _sse_events(text):
    return [json.loads(line[len("data: "):])
            for line in text.splitlines() if line.startswith("data: ")]


class TestRoundTrip:
    def test_full_campaign_over_http(self, service):
        status, body = service.request("GET", "/status")
        assert status == 200
        assert body["accepting"]
        assert body["fleet"]["transport"] == "local"
        assert body["fleet"]["capacity"] == 2

        status, submitted = service.request(
            "POST", "/campaigns", {"tenant": "alice", "cases": ["A1"]})
        assert status == 201
        cid = submitted["id"]
        assert submitted["tenant"] == "alice"
        assert submitted["status"] == "running"

        # The SSE stream replays from the start and ends with the
        # terminal frame; result events arrive in completion order.
        events = _sse_events(service.stream(f"/campaigns/{cid}/events"))
        kinds = [event["kind"] for event in events]
        assert kinds[0] == "compile_started"
        assert kinds[-1] == "campaign_done"
        assert events[-1]["status"] == "completed"
        results = [event for event in events if event["kind"] == "result"]
        assert results and all(event["status"] == "ok"
                               for event in results)

        # A second subscription after completion replays identically
        # (NDJSON framing this time).
        replay = [json.loads(line) for line in service.stream(
            f"/campaigns/{cid}/events?format=ndjson").splitlines()]
        assert replay == events

        status, report = service.request("GET", f"/campaigns/{cid}/report")
        assert status == 200
        assert report["campaign"] == cid
        assert report["tenant"] == "alice"
        assert "phases" in report
        assert "wall_spent_s" in report["tenant_usage"]
        assert report["rows"]

        status, record = service.request("GET", f"/campaigns/{cid}/record")
        assert status == 200
        assert record["config"]["campaign"] == cid
        assert record["config"]["service"] is True

        status, listing = service.request("GET", "/campaigns")
        assert status == 200
        assert any(entry["id"] == cid for entry in listing["campaigns"])

        # The fleet-wide status now folds this campaign's phases and
        # tenant spend in.
        status, body = service.request("GET", "/status")
        assert status == 200
        assert body["phases"].get("wall_s", 0) > 0
        assert body["tenants"]["alice"]["wall_spent_s"] > 0
        assert body["service"]["service.campaigns_completed"] >= 1

    def test_cancel_over_http(self, service):
        status, submitted = service.request(
            "POST", "/campaigns", {"tenant": "alice", "cases": ["A2"]})
        assert status == 201
        cid = submitted["id"]
        status, body = service.request("DELETE", f"/campaigns/{cid}")
        assert status == 202
        events = _sse_events(service.stream(f"/campaigns/{cid}/events"))
        assert events[-1]["kind"] == "campaign_done"
        assert events[-1]["status"] == "cancelled"
        # A cancelled campaign has no report to serve.
        status, body = service.request("GET", f"/campaigns/{cid}/report")
        assert status == 409
        assert body["error"] == "no_report"


class TestRejectionShapes:
    def test_over_quota_submission_is_structured_429(self, service):
        before = len(service.broker.list_campaigns())
        status, body = service.request(
            "POST", "/campaigns", {"tenant": "capped", "cases": ["A1"]})
        assert status == 429
        assert body["error"] == "too_many_campaigns"
        assert body["status"] == 429
        assert body["detail"]
        # Nothing was admitted or allocated.
        assert len(service.broker.list_campaigns()) == before

    def test_unknown_case_is_400(self, service):
        status, body = service.request(
            "POST", "/campaigns", {"tenant": "alice", "cases": ["ZZ"]})
        assert status == 400
        assert body["error"] == "invalid_submission"

    def test_garbage_body_is_400(self, service):
        connection = http.client.HTTPConnection("127.0.0.1", service.port,
                                                timeout=30.0)
        try:
            connection.request("POST", "/campaigns", body=b"not json",
                               headers={"Content-Type": "text/plain"})
            response = connection.getresponse()
            assert response.status == 400
            assert json.loads(response.read())["error"] == "bad_request"
        finally:
            connection.close()

    def test_unknown_campaign_is_404(self, service):
        status, body = service.request("GET", "/campaigns/nope/report")
        assert status == 404
        assert body["error"] == "unknown_campaign"

    def test_unknown_route_is_404(self, service):
        status, body = service.request("GET", "/nope")
        assert status == 404
        assert body["error"] == "not_found"
