"""Tenancy unit tests: quota parsing, admission checks, rejection codes."""

import json

import pytest

from repro.service import (DEFAULT_QUOTA, QuotaError, TenantQuota,
                           TenantRegistry)


class TestQuotaShapes:
    def test_default_quota_bounds_open_campaigns_only(self):
        assert DEFAULT_QUOTA.wall_budget_s is None
        assert DEFAULT_QUOTA.memory_limit_mb is None
        assert DEFAULT_QUOTA.max_in_flight is None
        assert DEFAULT_QUOTA.max_open_campaigns == 8
        assert DEFAULT_QUOTA.allowed

    def test_quota_error_as_dict_is_the_http_body(self):
        error = QuotaError("too_many_campaigns", 429, "8 open already")
        assert error.as_dict() == {"error": "too_many_campaigns",
                                   "status": 429,
                                   "detail": "8 open already"}


class TestAdmission:
    def test_forbidden_tenant_is_403(self):
        registry = TenantRegistry(
            overrides={"mallory": TenantQuota(allowed=False)})
        with pytest.raises(QuotaError) as info:
            registry.admit_campaign("mallory")
        assert info.value.code == "tenant_forbidden"
        assert info.value.http_status == 403
        assert registry.usage("mallory").campaigns_rejected == 1

    def test_memory_ceiling_is_403(self):
        registry = TenantRegistry(
            overrides={"small": TenantQuota(memory_limit_mb=256)})
        registry.admit_campaign("small", memory_limit_mb=256)  # at the cap
        with pytest.raises(QuotaError) as info:
            registry.admit_campaign("small", memory_limit_mb=512)
        assert info.value.code == "memory_quota_exceeded"
        assert info.value.http_status == 403

    def test_exhausted_wall_budget_is_403(self):
        registry = TenantRegistry(
            overrides={"dave": TenantQuota(wall_budget_s=10.0)})
        registry.usage("dave").wall_spent_s = 10.0
        with pytest.raises(QuotaError) as info:
            registry.admit_campaign("dave")
        assert info.value.code == "wall_budget_exhausted"
        assert info.value.http_status == 403

    def test_open_campaign_cap_is_429(self):
        registry = TenantRegistry(
            overrides={"carol": TenantQuota(max_open_campaigns=1)})
        registry.admit_campaign("carol")
        registry.usage("carol").open_campaigns = 1
        with pytest.raises(QuotaError) as info:
            registry.admit_campaign("carol")
        assert info.value.code == "too_many_campaigns"
        assert info.value.http_status == 429

    def test_in_flight_cap_gates_issue_not_admission(self):
        registry = TenantRegistry(
            overrides={"busy": TenantQuota(max_in_flight=2)})
        registry.admit_campaign("busy")      # admission unaffected
        usage = registry.usage("busy")
        assert registry.may_issue("busy")
        usage.in_flight = 2
        assert not registry.may_issue("busy")
        usage.in_flight = 1
        assert registry.may_issue("busy")


class TestQuotaFile:
    def test_roundtrip_with_default_and_overrides(self, tmp_path):
        path = tmp_path / "quotas.json"
        path.write_text(json.dumps({
            "default": {"max_open_campaigns": 2},
            "tenants": {
                "alice": {"wall_budget_s": 60.0, "weight": 2.0},
                "mallory": {"allowed": False},
            },
        }))
        registry = TenantRegistry.from_file(path)
        assert registry.default.max_open_campaigns == 2
        assert registry.quota("alice").wall_budget_s == 60.0
        assert registry.quota("alice").weight == 2.0
        assert not registry.quota("mallory").allowed
        # Unlisted tenants fall back to the file's default.
        assert registry.quota("nobody").max_open_campaigns == 2

    def test_unknown_quota_key_is_rejected(self, tmp_path):
        path = tmp_path / "quotas.json"
        path.write_text(json.dumps(
            {"tenants": {"alice": {"wall_budget": 60.0}}}))
        with pytest.raises(ValueError, match="unknown quota key"):
            TenantRegistry.from_file(path)

    def test_report_includes_quota_and_remaining_budget(self):
        registry = TenantRegistry(
            overrides={"alice": TenantQuota(wall_budget_s=100.0)})
        registry.usage("alice").wall_spent_s = 25.0
        report = registry.report()
        entry = report["alice"]
        assert entry["quota"]["wall_budget_s"] == 100.0
        assert entry["wall_remaining_s"] == 75.0
