"""Campaign-journal contract: atomic appends, tolerant replay.

The journal is the service's write-ahead log; its replay rules decide
what a restarted server resurrects.  The invariants pinned here:

* records round-trip byte-exactly (append -> entries);
* a torn trailing line (crash mid-append) is skipped, everything before
  it replays;
* replay reconstructs per-campaign state in admission order: events
  accumulate, a cancel sticks, a settled record is terminal, an evicted
  campaign is gone;
* records for a campaign whose admission line was torn are ignored.
"""

import json

from repro.service.journal import CampaignJournal, JournaledCampaign


def _journal(tmp_path):
    return CampaignJournal(tmp_path / "state", fsync=False)


def _admit(journal, campaign_id="c0001-abc", seq=1, tenant="t"):
    journal.admitted(campaign_id, seq, tenant, 123.0,
                     {"tenant": tenant, "cases": ["A2"],
                      "variants": ["fixed"]})


class TestAppendAndEntries:
    def test_round_trip(self, tmp_path):
        journal = _journal(tmp_path)
        _admit(journal)
        journal.event("c0001-abc", {"task_id": "A2::fixed::g0",
                                    "status": "ok"})
        entries = journal.entries()
        assert [e["kind"] for e in entries] == ["admitted", "event"]
        assert entries[1]["event"]["task_id"] == "A2::fixed::g0"

    def test_missing_file_is_empty(self, tmp_path):
        assert _journal(tmp_path).entries() == []

    def test_torn_tail_skipped(self, tmp_path):
        journal = _journal(tmp_path)
        _admit(journal)
        with journal.path.open("a") as handle:
            handle.write('{"kind": "event", "campaign": "c0001-a')
        entries = journal.entries()
        assert [e["kind"] for e in entries] == ["admitted"]

    def test_torn_middle_line_skipped_rest_replays(self, tmp_path):
        journal = _journal(tmp_path)
        _admit(journal)
        lines = journal.path.read_text().splitlines()
        lines.insert(1, '{"kind": "event", "campa')
        journal.path.write_text("\n".join(lines) + "\n")
        journal.cancelled("c0001-abc", "client asked")
        kinds = [e["kind"] for e in journal.entries()]
        assert kinds == ["admitted", "cancel"]


class TestReplay:
    def test_open_campaign_with_events(self, tmp_path):
        journal = _journal(tmp_path)
        _admit(journal, seq=3)
        journal.event("c0001-abc", {"task_id": "t1", "status": "ok"})
        journal.event("c0001-abc", {"task_id": "t2", "status": "ok"})
        states = journal.replay()
        assert len(states) == 1
        state = states[0]
        assert isinstance(state, JournaledCampaign)
        assert state.seq == 3
        assert state.settled is None
        assert state.settled_task_ids == {"t1", "t2"}

    def test_cancel_sticks(self, tmp_path):
        journal = _journal(tmp_path)
        _admit(journal)
        journal.cancelled("c0001-abc", "client asked")
        (state,) = journal.replay()
        assert state.cancel_reason == "client asked"

    def test_settled_is_terminal(self, tmp_path):
        journal = _journal(tmp_path)
        _admit(journal)
        journal.settled("c0001-abc", "completed", None, None, 4.2,
                        {"verdicts": []}, {"record_version": 1})
        (state,) = journal.replay()
        assert state.settled is not None
        assert state.settled["status"] == "completed"
        assert state.settled["report"] == {"verdicts": []}

    def test_evicted_campaign_dropped(self, tmp_path):
        journal = _journal(tmp_path)
        _admit(journal, "c0001-aaa", seq=1)
        _admit(journal, "c0002-bbb", seq=2)
        journal.evicted("c0001-aaa")
        states = journal.replay()
        assert [s.campaign_id for s in states] == ["c0002-bbb"]

    def test_orphan_records_ignored(self, tmp_path):
        journal = _journal(tmp_path)
        journal.event("ghost", {"task_id": "t1"})
        journal.settled("ghost", "completed", None, None, 1.0, None, None)
        assert journal.replay() == []

    def test_admission_order_preserved(self, tmp_path):
        journal = _journal(tmp_path)
        for index in range(3):
            _admit(journal, f"c{index}", seq=index + 1)
        assert [s.campaign_id for s in journal.replay()] \
            == ["c0", "c1", "c2"]


class TestFaultSite:
    def test_torn_append_writes_half_and_dies(self, tmp_path):
        from repro.testing.faults import FAULTS, FaultInjected

        journal = _journal(tmp_path)
        _admit(journal)
        FAULTS.arm("journal.torn_append:count=1")
        try:
            try:
                journal.event("c0001-abc", {"task_id": "t1"})
                raise AssertionError("torn_append did not fire")
            except FaultInjected:
                pass
        finally:
            FAULTS.disarm()
        # The half-written record is skipped; the admission survives.
        kinds = [e["kind"] for e in journal.entries()]
        assert kinds == ["admitted"]
        raw = journal.path.read_text()
        assert not raw.endswith("}\n")  # the tail really is torn
        # The "restarted" process opens the journal anew: the torn tail
        # is sealed so the next append is not glued onto it.
        reopened = CampaignJournal(journal.state_dir, fsync=False)
        reopened.event("c0001-abc", {"task_id": "t2", "status": "ok"})
        (state,) = reopened.replay()
        assert state.settled_task_ids == {"t2"}
