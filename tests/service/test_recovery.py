"""Restart recovery: a rebooted broker converges on the same verdicts.

The durability contract of ``--state-dir``:

* a settled campaign survives restart queryable — same status, same
  report, same digest-validated record — without re-running anything;
* an open campaign (journal cut mid-flight, exactly what a ``kill -9``
  leaves) is re-admitted: journaled verdicts replay, only unfinished
  tasks hit the fabric again, and the merged verdicts are identical to
  the uninterrupted run;
* retention GC bounds the settled-campaign map, is journaled, and an
  evicted campaign stays gone across restart.

The full out-of-process kill -9 rehearsal (server *and* workers) lives
in ``benchmarks/chaos_smoke.py``; these tests pin the broker-level
mechanics deterministically.
"""

import json
import time

from repro.campaign.cache import ArtifactCache
from repro.campaign.report import verdict_contract
from repro.service.broker import CampaignBroker, CampaignSpec
from repro.service.journal import CampaignJournal

_SPEC = {"tenant": "t1", "cases": ["O1"], "variants": ["fixed", "buggy"],
         "depth": 4, "frames": 10}


def _settle(broker, campaign, timeout_s=180.0):
    deadline = time.monotonic() + timeout_s
    while not campaign.settled:
        assert broker.running, f"broker died: {broker._fatal}"
        assert time.monotonic() < deadline, "campaign never settled"
        time.sleep(0.02)


def _verdicts(campaign):
    return json.dumps(verdict_contract(campaign.results), sort_keys=True)


def _run_one(tmp_path, state="state"):
    cache = ArtifactCache(tmp_path / "cache")
    journal = CampaignJournal(tmp_path / state, fsync=False)
    broker = CampaignBroker(workers=2, cache=cache,
                            journal=journal).start()
    try:
        campaign = broker.submit(CampaignSpec.from_json(dict(_SPEC)))
        _settle(broker, campaign)
    finally:
        broker.close()
    return cache, campaign


class TestSettledRestore:
    def test_settled_campaign_survives_restart(self, tmp_path):
        cache, campaign = _run_one(tmp_path)
        assert campaign.status == "completed"

        broker = CampaignBroker(
            workers=2, cache=cache,
            journal=CampaignJournal(tmp_path / "state",
                                    fsync=False)).start()
        try:
            restored = broker.get(campaign.id)
            assert restored.settled
            assert restored.status == "completed"
            assert restored.report_dict == campaign.report_dict
            assert restored.record_dict == campaign.record_dict
            # The feed replays to its terminal frame for late SSE clients.
            assert restored.feed[-1]["kind"] == "campaign_done"
            # And it is terminal: nothing re-runs.
            assert restored.stream_done and restored.outstanding == 0
        finally:
            broker.close()


class TestOpenCampaignResume:
    def test_truncated_journal_converges_to_same_verdicts(self, tmp_path):
        """Cut the journal after the first verdict — the shape a kill -9
        mid-campaign leaves — and restart against the same cache."""
        cache, campaign = _run_one(tmp_path)
        truth = _verdicts(campaign)

        lines = (tmp_path / "state" / "journal.jsonl") \
            .read_text().splitlines()
        kept = [line for line in lines
                if json.loads(line)["kind"] in ("admitted", "event")][:2]
        crash_dir = tmp_path / "crashed"
        crash_dir.mkdir()
        # One whole verdict survives, plus a torn half-record tail.
        (crash_dir / "journal.jsonl").write_text(
            "\n".join(kept) + "\n" + '{"kind": "event", "campa')

        broker = CampaignBroker(
            workers=2, cache=cache,
            journal=CampaignJournal(crash_dir, fsync=False)).start()
        try:
            resumed = broker.get(campaign.id)
            assert len(resumed.events) >= 1  # the journaled verdict
            _settle(broker, resumed)
            assert resumed.status == "completed"
            # No task lost, none double-reported.
            ids = [e.task_id for e in resumed.events if e.is_result]
            assert sorted(ids) \
                == sorted(e.task_id for e in campaign.events if e.is_result)
            assert len(ids) == len(set(ids))
            assert _verdicts(resumed) == truth
        finally:
            broker.close()


class TestRetention:
    def test_settled_campaigns_evicted_beyond_cap(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        journal = CampaignJournal(tmp_path / "state", fsync=False)
        broker = CampaignBroker(workers=2, cache=cache, journal=journal,
                                retain_settled=1).start()
        try:
            first = broker.submit(CampaignSpec.from_json(dict(_SPEC)))
            _settle(broker, first)
            spec = dict(_SPEC, variants=["fixed"])
            second = broker.submit(CampaignSpec.from_json(spec))
            _settle(broker, second)
            # Submitting anything after two settles prunes the oldest.
            third = broker.submit(CampaignSpec.from_json(spec))
            assert first.id not in broker._campaigns
            assert second.id in broker._campaigns
            _settle(broker, third)
            status = broker.status()
            assert status["retention"]["retain_settled"] == 1
            assert status["retention"]["evicted"] >= 1
        finally:
            broker.close()

        # The evicted campaign stays gone across restart; survivors stay.
        broker = CampaignBroker(
            workers=2, cache=cache, retain_settled=None,
            journal=CampaignJournal(tmp_path / "state",
                                    fsync=False)).start()
        try:
            assert first.id not in broker._campaigns
            assert broker.get(third.id).settled
        finally:
            broker.close()

    def test_default_retention_is_bounded(self):
        broker = CampaignBroker(workers=1)
        assert broker.retain_settled is not None
