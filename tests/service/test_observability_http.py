"""Live-service observability round trips: /metrics, probes, history, top.

Same harness as ``test_server.py`` — a real ephemeral-port asyncio
server over a 2-worker broker, driven with stdlib ``http.client`` —
but aimed at the operator surface: the Prometheus scrape must be
validator-clean mid-flight, the probes must track quorum/drain state
(503 while draining), the history ring must fill, and ``autosva top``
must render a frame from the same endpoints.
"""

import asyncio
import http.client
import json
import threading

import pytest

from repro.obs import METRICS
from repro.obs.promexport import PROM_CONTENT_TYPE, validate_exposition
from repro.service import CampaignBroker, CampaignServer
from repro.service.top import render_frame, sparkline, top_main


class _Service:
    """One CampaignServer running on its own event-loop thread."""

    def __init__(self, broker):
        self.broker = broker
        self.server = CampaignServer(broker)
        self._ready = threading.Event()
        self._loop = None
        self._stop = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(10.0), "server never came up"

    def _run(self):
        async def main():
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            await self.server.start("127.0.0.1", 0)
            self.port = self.server.address[1]
            self._ready.set()
            await self._stop.wait()
            await self.server.close()

        asyncio.run(main())

    def close(self):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(10.0)
        self.broker.close()

    def request(self, method, path, body=None):
        connection = http.client.HTTPConnection("127.0.0.1", self.port,
                                                timeout=60.0)
        try:
            connection.request(
                method, path,
                body=json.dumps(body) if body is not None else None,
                headers={"Content-Type": "application/json"}
                if body is not None else {})
            response = connection.getresponse()
            return response.status, json.loads(response.read() or b"null")
        finally:
            connection.close()

    def raw(self, path):
        """GET returning (status, content-type, text) — for /metrics."""
        connection = http.client.HTTPConnection("127.0.0.1", self.port,
                                                timeout=60.0)
        try:
            connection.request("GET", path)
            response = connection.getresponse()
            return (response.status, response.getheader("Content-Type"),
                    response.read().decode("utf-8"))
        finally:
            connection.close()


@pytest.fixture(scope="module")
def service():
    METRICS.reset()
    broker = CampaignBroker(workers=2, history_interval_s=0.2).start()
    service = _Service(broker)
    yield service
    service.close()


def _wait_settled(service, cid):
    for _ in range(600):
        status, body = service.request("GET", f"/campaigns/{cid}")
        assert status == 200
        if body["status"] != "running":
            return body
        import time
        time.sleep(0.1)
    raise AssertionError("campaign never settled")


class TestScrape:
    def test_metrics_exposition_is_validator_clean(self, service):
        status, submitted = service.request(
            "POST", "/campaigns", {"tenant": "alice", "cases": ["A1"]})
        assert status == 201
        _wait_settled(service, submitted["id"])

        status, content_type, text = service.raw("/metrics")
        assert status == 200
        assert content_type == PROM_CONTENT_TYPE
        families = validate_exposition(text)
        # The acceptance surface: scheduler, service and per-tenant
        # series all present in one clean exposition.
        assert "autosva_scheduler_queue_depth" in families
        assert "autosva_service_tasks_issued_total" in families
        assert "autosva_service_campaigns_submitted_total" in families
        assert "autosva_service_settle_latency_s" in families
        assert 'autosva_service_tasks_issued_total{tenant="alice"}' in text
        assert 'autosva_service_settle_latency_s_bucket{tenant="alice",' \
            'le=' in text

    def test_history_ring_fills(self, service):
        import time
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            status, history = service.request("GET", "/metrics/history")
            assert status == 200
            if len(history["samples"]) >= 2:
                break
            time.sleep(0.2)
        assert history["interval_s"] == 0.2
        assert history["window"] == 300
        sample = history["samples"][-1]
        assert set(sample) == {"ts", "counters", "gauges", "histograms"}
        assert "service.tasks_settled" in sample["counters"]
        assert "service.uptime_s" in sample["gauges"]

    def test_metrics_route_rejects_post(self, service):
        status, _ = service.request("POST", "/metrics", {})
        assert status == 404


class TestProbes:
    def test_live_and_ready_while_serving(self, service):
        status, body = service.request("GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["checks"]["no_fatal"]

        status, body = service.request("GET", "/readyz")
        assert status == 200
        assert body["status"] == "ready"
        assert body["checks"] == {"accepting": True,
                                  "broker_thread": True,
                                  "fleet_quorum": True,
                                  "journal_writable": True}

    def test_unstarted_broker_is_not_ready(self):
        broker = CampaignBroker(workers=1)
        ok, checks = broker.ready()
        assert not ok
        assert not checks["broker_thread"]


class TestDrain:
    """Drain flips /readyz to 503 while /healthz and /metrics keep
    serving — runs last in the module (the fixture broker is shared)."""

    def test_zz_drain_transitions(self, service):
        service.broker.drain()
        status, body = service.request("GET", "/readyz")
        assert status == 503
        assert body["status"] == "not_ready"
        assert body["checks"]["accepting"] is False

        # Still alive, still scrapeable, but refusing new work.
        status, _ = service.request("GET", "/healthz")
        assert status == 200
        status, _, text = service.raw("/metrics")
        assert status == 200
        validate_exposition(text)
        status, body = service.request(
            "POST", "/campaigns", {"tenant": "alice", "cases": ["A1"]})
        assert status == 503
        assert body["error"] == "service_shutting_down"


class TestTop:
    def test_sparkline_shapes(self):
        assert sparkline([]) == "(no data)"
        assert sparkline([0, 0]) == "▁▁"
        line = sparkline([1, 5, 10])
        assert len(line) == 3 and line[-1] == "█"

    def test_render_frame_from_live_service(self, service):
        _, status_doc = service.request("GET", "/status")
        _, history = service.request("GET", "/metrics/history")
        frame = render_frame(status_doc, history,
                             f"http://127.0.0.1:{service.port}")
        assert "autosva top" in frame
        assert "fleet" in frame and "queue" in frame
        assert "alice" in frame          # tenant table

    def test_top_main_once_against_live_service(self, service, capsys):
        code = top_main(["--connect", f"127.0.0.1:{service.port}",
                         "--once"])
        assert code == 0
        out = capsys.readouterr().out
        assert "autosva top" in out
        assert "fabric" in out

    def test_top_main_unreachable_is_fatal(self):
        assert top_main(["--connect", "127.0.0.1:1", "--once"]) == 1


class TestFatalCli:
    """serve/worker usage errors all exit 1 through the one fatal()
    helper: a leveled ERROR line on stderr, nothing on stdout."""

    def test_serve_bad_listen(self, capsys):
        from repro.service.server import serve_main
        assert serve_main(["--listen", "nonsense"]) == 1
        captured = capsys.readouterr()
        assert "ERROR" in captured.err
        assert "autosva serve" in captured.err
        assert captured.out == ""

    def test_serve_missing_quotas_file(self, tmp_path, capsys):
        from repro.service.server import serve_main
        missing = tmp_path / "nope.json"
        assert serve_main(["--quotas", str(missing)]) == 1
        captured = capsys.readouterr()
        assert "ERROR" in captured.err
        assert "invalid --quotas" in captured.err

    def test_worker_bad_connect(self, capsys):
        from repro.dist.worker import worker_main
        assert worker_main(["--connect", "nonsense"]) == 1
        captured = capsys.readouterr()
        assert "ERROR" in captured.err
        assert "autosva worker" in captured.err
        assert captured.out == ""

    def test_worker_bad_slots(self, capsys):
        from repro.dist.worker import worker_main
        assert worker_main(["--connect", "127.0.0.1:1",
                            "--slots", "0"]) == 1
        assert "ERROR" in capsys.readouterr().err
