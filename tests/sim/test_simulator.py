"""Tests for the 4-state simulator and its value domain."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import FourState, Simulator
from repro.sim.simulator import SimError


class TestFourState:
    def test_concrete_roundtrip(self):
        v = FourState.from_int(13, 4)
        assert v.to_int() == 13 and not v.has_x

    def test_all_x(self):
        v = FourState.all_x(4)
        assert v.has_x and not v.is_true and not v.is_false

    @given(st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=40, deadline=None)
    def test_concrete_ops_match_python(self, a, b):
        fa, fb = FourState.from_int(a, 4), FourState.from_int(b, 4)
        assert fa.bit_and(fb).to_int() == (a & b)
        assert fa.bit_or(fb).to_int() == (a | b)
        assert fa.bit_xor(fb).to_int() == (a ^ b)
        assert fa.add(fb).to_int() == (a + b) & 0xF
        assert fa.eq(fb).to_int() == int(a == b)
        assert fa.lt(fb).to_int() == int(a < b)

    def test_x_and_zero_is_zero(self):
        x = FourState.all_x(1)
        zero = FourState.from_int(0, 1)
        out = x.bit_and(zero)
        assert out.is_false and not out.has_x

    def test_x_and_one_is_x(self):
        x = FourState.all_x(1)
        one = FourState.from_int(1, 1)
        assert x.bit_and(one).has_x

    def test_x_or_one_is_one(self):
        x = FourState.all_x(1)
        one = FourState.from_int(1, 1)
        out = x.bit_or(one)
        assert out.is_true and not out.has_x

    def test_logic_short_circuit(self):
        x = FourState.all_x(1)
        zero = FourState.from_int(0, 1)
        assert x.logic_and(zero).is_false
        assert x.logic_or(FourState.from_int(1, 1)).is_true
        assert x.logic_and(FourState.from_int(1, 1)).has_x

    def test_arith_x_poisons(self):
        x = FourState.all_x(4)
        v = FourState.from_int(3, 4)
        assert x.add(v).has_x
        assert x.eq(v).has_x

    def test_concat_and_slice(self):
        hi = FourState.from_int(0b10, 2)
        lo = FourState.all_x(2)
        cat = hi.concat(lo)
        assert cat.width == 4
        assert cat.slice(3, 2).to_int() == 0b10
        assert cat.slice(1, 0).has_x

    def test_repr_shows_x(self):
        v = FourState(0b10, 0b01, 2)
        assert repr(v) == "2'b1x"


COUNTER = """
module counter (
  input  wire clk_i,
  input  wire rst_ni,
  input  wire en,
  output wire [2:0] cnt_o
);
  reg [2:0] cnt;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) cnt <= 3'd0;
    else if (en) cnt <= cnt + 3'd1;
  end
  assign cnt_o = cnt;
endmodule
"""


class TestSimulator:
    def test_reset_then_count(self):
        sim = Simulator(COUNTER, "counter")
        sim.step()  # reset cycle
        for _ in range(3):
            sim.step(inputs={"en": 1})
        assert sim.top.values["cnt"].to_int() == 3

    def test_hold_without_enable(self):
        sim = Simulator(COUNTER, "counter")
        sim.step()
        sim.step(inputs={"en": 1})
        sim.step(inputs={"en": 0})
        sim.step(inputs={"en": 0})
        assert sim.top.values["cnt"].to_int() == 1

    def test_registers_start_x_before_reset(self):
        sim = Simulator(COUNTER, "counter")
        assert sim.top.values["cnt"].has_x  # pre-reset

    def test_assertion_violation_detected(self):
        src = COUNTER.replace(
            "endmodule",
            "  as__small: assert property (@(posedge clk_i) "
            "disable iff (!rst_ni) cnt < 3'd2);\nendmodule")
        sim = Simulator(src, "counter")
        sim.step()
        violations = []
        for _ in range(5):
            violations.extend(sim.step(inputs={"en": 1}))
        assert any("as__small" in v.label for v in violations)

    def test_implication_next_cycle(self):
        src = COUNTER.replace(
            "endmodule",
            "  as__imp: assert property (@(posedge clk_i) "
            "disable iff (!rst_ni) en |=> cnt > 3'd0);\nendmodule")
        sim = Simulator(src, "counter")
        sim.step()
        out = []
        out.extend(sim.step(inputs={"en": 1}))
        out.extend(sim.step(inputs={"en": 0}))  # checks cnt>0 here: holds
        assert out == []

    def test_liveness_skipped(self):
        src = COUNTER.replace(
            "endmodule",
            "  as__ev: assert property (@(posedge clk_i) "
            "disable iff (!rst_ni) en |-> s_eventually cnt == 3'd7);\n"
            "endmodule")
        sim = Simulator(src, "counter")
        sim.step()
        assert sim.step(inputs={"en": 1}) == []  # not checkable, no noise

    def test_isunknown(self):
        src = """
module m (
  input  wire clk_i,
  input  wire rst_ni,
  input  wire go
);
  reg q;   // never reset: stays X until loaded
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
    end else begin
      if (go) q <= 1'b1;
    end
  end
  as__no_x: assert property (@(posedge clk_i) disable iff (!rst_ni)
      !$isunknown(q));
endmodule
"""
        sim = Simulator(src, "m")
        sim.step()
        violations = sim.step(inputs={"go": 0})
        assert any("as__no_x" in v.label for v in violations)
        sim.step(inputs={"go": 1})
        assert sim.step(inputs={"go": 0}) == []  # loaded: X gone

    def test_deterministic_with_seed(self):
        sim_a = Simulator(COUNTER, "counter", seed=42)
        sim_b = Simulator(COUNTER, "counter", seed=42)
        for _ in range(10):
            sim_a.step()
            sim_b.step()
        assert sim_a.top.values["cnt"].to_int() == \
            sim_b.top.values["cnt"].to_int()

    def test_stable_and_past(self):
        src = COUNTER.replace(
            "endmodule",
            "  as__st: assert property (@(posedge clk_i) "
            "disable iff (!rst_ni) ##1 !en |=> $stable(cnt));\nendmodule")
        sim = Simulator(src, "counter")
        sim.step()
        out = []
        for _ in range(4):
            out.extend(sim.step(inputs={"en": 0}))
        assert out == []
