"""Unit tests for the property-file renderer, bind file and sva model."""

import pytest

from repro.core.bindfile import render_bindfile
from repro.core.render import render_propfile
from repro.core.rtl_scan import ParamInfo, PortInfo
from repro.core.sva import (Assertion, Comment, FFBlock, PropFile, RegDecl,
                            WireDecl)


@pytest.fixture
def prop():
    return PropFile(module_name="dut_prop", dut_name="dut",
                    clock="clk_i", reset="rst_ni", reset_active_low=True,
                    params=[ParamInfo(name="W", default_text="4"),
                            ParamInfo(name="L", default_text="2",
                                      is_local=True)],
                    ports=[PortInfo("input", "clk_i", None),
                           PortInfo("input", "rst_ni", None),
                           PortInfo("input", "x", "W-1")])


class TestRenderPropfile:
    def test_module_skeleton(self, prop):
        text = render_propfile(prop)
        assert "module dut_prop" in text
        assert "parameter W = 4" in text
        assert "L" not in [p.name for p in prop.params if not p.is_local]
        assert "input wire [W-1:0] x" in text
        assert text.rstrip().endswith("endmodule")

    def test_wire_and_reg_rendering(self, prop):
        prop.items = [WireDecl(name="a", expr_text="x && rst_ni"),
                      WireDecl(name="s", width_text="W-1", expr_text=None),
                      RegDecl(name="r", width_text="3")]
        text = render_propfile(prop)
        assert "wire a = x && rst_ni;" in text
        assert "wire [W-1:0] s;" in text
        assert "symbolic" in text  # comment marking the undriven wire
        assert "reg [3:0] r;" in text

    def test_ffblock_rendering(self, prop):
        prop.items = [FFBlock(reset_assigns=[("r", "'0")],
                              body_lines=["r <= r + 1;"])]
        text = render_propfile(prop)
        assert "always_ff @(posedge clk_i or negedge rst_ni) begin" in text
        assert "if (!rst_ni) begin" in text
        assert "r <= '0;" in text
        assert "r <= r + 1;" in text

    def test_active_high_reset(self, prop):
        prop.reset = "rst"
        prop.reset_active_low = False
        prop.items = [FFBlock(reset_assigns=[("r", "'0")], body_lines=[]),
                      Assertion(directive="assert", label="p", body="x")]
        text = render_propfile(prop)
        assert "posedge rst" in text
        assert "disable iff (rst)" in text

    def test_assertion_directives_and_labels(self, prop):
        prop.items = [
            Assertion(directive="assert", label="a", body="x"),
            Assertion(directive="assume", label="b", body="x",
                      flippable=True),
            Assertion(directive="cover", label="c", body="x"),
        ]
        text = render_propfile(prop)
        assert "as__a: assert property" in text
        assert "am__b: assume property" in text
        assert "co__c: cover property (@(posedge clk_i) x);" in text

    def test_assert_inputs_flips_only_flippable(self, prop):
        prop.items = [
            Assertion(directive="assume", label="env", body="x",
                      flippable=True),
            Assertion(directive="assume", label="symb", body="x",
                      flippable=False),
        ]
        text = render_propfile(prop, assert_inputs=True)
        assert "as__env: assert property" in text
        assert "am__symb: assume property" in text

    def test_xprop_grouped_at_end(self, prop):
        prop.items = [
            Assertion(directive="assert", label="x1", body="a", xprop=True),
            Assertion(directive="assert", label="normal", body="b"),
        ]
        text = render_propfile(prop)
        assert text.index("as__normal") < text.index("`ifdef XPROP")
        assert text.index("`ifdef XPROP") < text.index("as__x1")
        assert "`endif" in text

    def test_comment_rendering(self, prop):
        prop.items = [Comment("hello world")]
        assert "// hello world" in render_propfile(prop)


class TestSvaModel:
    def test_property_count_excludes_xprop(self, prop):
        prop.items = [
            Assertion(directive="assert", label="a", body="x"),
            Assertion(directive="assert", label="x1", body="a", xprop=True),
            Assertion(directive="cover", label="c", body="x"),
        ]
        assert prop.property_count == 2

    def test_find(self, prop):
        prop.items = [Assertion(directive="assert", label="t_resp", body="x")]
        assert prop.find("resp")[0].label == "t_resp"
        assert prop.find("nope") == []

    def test_reset_guard(self, prop):
        assert prop.reset_guard == "!rst_ni"
        prop.reset_active_low = False
        assert prop.reset_guard == "rst_ni"


class TestBindfile:
    def test_bind_with_params(self, prop):
        text = render_bindfile(prop)
        assert "bind dut dut_prop #(.W(W)) u_dut_sva (.*);" in text

    def test_bind_without_params(self, prop):
        prop.params = []
        text = render_bindfile(prop)
        assert "bind dut dut_prop u_dut_sva (.*);" in text
