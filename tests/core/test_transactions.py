"""Tests for the Transaction Builder (step 2) and its semantic checks."""

import pytest

from repro.core.language import AutoSVAError, Direction
from repro.core.parser import parse_annotations
from repro.core.rtl_scan import scan_rtl
from repro.core.transactions import build_transactions


def _module(annotations, extra_ports=""):
    return f"""
module m #(parameter W = 4, parameter V = 4, parameter U = 8)(
  input  wire clk_i,
  input  wire rst_ni,
  /*AUTOSVA
  {annotations}
  */
  input  wire a_in,
  input  wire [W-1:0] a_id,
  output wire b_out,
  output wire [W-1:0] b_id{extra_ports}
);
endmodule
"""


def _build(annotations, extra_ports=""):
    scan = scan_rtl(_module(annotations, extra_ports))
    return build_transactions(parse_annotations(scan))


class TestBuilding:
    def test_minimal_val_only(self):
        txs = _build("t: p -in> q\n  p_val = a_in\n  q_val = b_out")
        tx = txs[0]
        assert tx.name == "t" and tx.incoming
        assert tx.p.val.rhs == "a_in"
        assert not tx.has_transid and not tx.has_data

    def test_outgoing_direction(self):
        txs = _build("t: p -out> q\n  p_val = a_in\n  q_val = b_out")
        assert txs[0].direction is Direction.OUT
        assert not txs[0].incoming

    def test_transid_both_sides(self):
        txs = _build("t: p -in> q\n  p_val = a_in\n  q_val = b_out\n"
                     "  [W-1:0] p_transid = a_id\n  [W-1:0] q_transid = b_id")
        assert txs[0].has_transid
        assert txs[0].transid_width_text == "W-1"

    def test_transid_unique_flag(self):
        txs = _build("t: p -in> q\n  p_val = a_in\n  q_val = b_out\n"
                     "  [W-1:0] p_transid_unique = a_id\n"
                     "  [W-1:0] q_transid = b_id")
        assert txs[0].p.transid_unique
        assert txs[0].has_transid

    def test_multiple_transactions(self):
        txs = _build("t1: p -in> q\n  p_val = a_in\n  q_val = b_out\n"
                     "  t2: x -out> y\n  x_val = a_in\n  y_val = b_out")
        assert [t.name for t in txs] == ["t1", "t2"]


class TestValidation:
    def test_missing_request_val(self):
        with pytest.raises(AutoSVAError, match="no\\s+val"):
            _build("t: p -in> q\n  q_val = b_out")

    def test_missing_response_val(self):
        with pytest.raises(AutoSVAError, match="no\\s+val"):
            _build("t: p -in> q\n  p_val = a_in")

    def test_one_sided_transid(self):
        with pytest.raises(AutoSVAError, match="transid defined only"):
            _build("t: p -in> q\n  p_val = a_in\n  q_val = b_out\n"
                   "  [W-1:0] p_transid = a_id")

    def test_one_sided_data(self):
        with pytest.raises(AutoSVAError, match="data defined only"):
            _build("t: p -in> q\n  p_val = a_in\n  q_val = b_out\n"
                   "  [W-1:0] p_data = a_id")

    def test_transid_width_mismatch_numeric(self):
        with pytest.raises(AutoSVAError, match="width mismatch"):
            _build("t: p -in> q\n  p_val = a_in\n  q_val = b_out\n"
                   "  [W-1:0] p_transid = a_id\n  [U-1:0] q_transid = b_id")

    def test_width_match_through_params(self):
        # W and V are both 4: numerically equal although textually distinct.
        txs = _build("t: p -in> q\n  p_val = a_in\n  q_val = b_out\n"
                     "  [W-1:0] p_transid = a_id\n  [V-1:0] q_transid = b_id")
        assert txs[0].has_transid

    def test_stable_requires_ack(self):
        with pytest.raises(AutoSVAError, match="stable requires"):
            _build("t: p -in> q\n  p_val = a_in\n  q_val = b_out\n"
                   "  [W-1:0] p_stable = a_id")

    def test_transid_unique_on_response_rejected(self):
        with pytest.raises(AutoSVAError, match="transid_unique belongs"):
            _build("t: p -in> q\n  p_val = a_in\n  q_val = b_out\n"
                   "  [W-1:0] p_transid = a_id\n"
                   "  [W-1:0] q_transid_unique = b_id")

    def test_both_transid_and_unique_rejected(self):
        with pytest.raises(AutoSVAError, match="both"):
            _build("t: p -in> q\n  p_val = a_in\n  q_val = b_out\n"
                   "  [W-1:0] p_transid = a_id\n"
                   "  [W-1:0] p_transid_unique = a_id\n"
                   "  [W-1:0] q_transid = b_id")

    def test_unparseable_rhs_rejected(self):
        with pytest.raises(AutoSVAError, match="bad expression"):
            _build("t: p -in> q\n  p_val = a_in &&\n  q_val = b_out")
