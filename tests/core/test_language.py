"""Tests for the AutoSVA annotation language (paper Table I)."""

import pytest

from repro.core.language import (AutoSVAError, Direction, parse_attribute_line,
                                 parse_relation_line, split_field)


class TestRelations:
    def test_incoming(self):
        rel = parse_relation_line("lsu_load: lsu_req -in> lsu_res", 1)
        assert rel.name == "lsu_load"
        assert rel.p == "lsu_req" and rel.q == "lsu_res"
        assert rel.direction is Direction.IN
        assert rel.direction.arrow == "-in>"

    def test_outgoing(self):
        rel = parse_relation_line("ptw_dcache: ptw_req -out> dcache_res", 2)
        assert rel.direction is Direction.OUT

    def test_hyphenated_name(self):
        # Fig. 7 uses "mem-engine_noc" as a transaction name.
        rel = parse_relation_line(
            "mem-engine_noc: noc1buffer_req -in> noc1buffer_enc", 1)
        assert rel is not None and rel.name == "mem-engine_noc"

    def test_not_a_relation(self):
        assert parse_relation_line("lsu_req_val = x", 1) is None
        assert parse_relation_line("random text here", 1) is None


class TestSplitField:
    IFACES = ("lsu_req", "lsu_res", "dtlb")

    def test_basic(self):
        assert split_field("lsu_req_val", self.IFACES) == ("lsu_req", "val")

    def test_longest_prefix_wins(self):
        ifaces = ("noc", "noc_buf")
        assert split_field("noc_buf_val", ifaces) == ("noc_buf", "val")

    def test_rdy_alias_normalized(self):
        assert split_field("lsu_req_rdy", self.IFACES) == ("lsu_req", "ack")

    def test_compound_suffix(self):
        assert split_field("lsu_req_transid_unique", self.IFACES) == \
            ("lsu_req", "transid_unique")

    def test_unknown_prefix_ignored(self):
        assert split_field("other_val", self.IFACES) is None

    def test_illegal_suffix_ignored(self):
        assert split_field("lsu_req_bogus", self.IFACES) is None


class TestAttributeLines:
    IFACES = ("lsu_req", "lsu_res")

    def test_explicit_definition(self):
        attr = parse_attribute_line("lsu_req_val = lsu_valid_i", self.IFACES, 3)
        assert attr.interface == "lsu_req"
        assert attr.suffix == "val"
        assert attr.rhs == "lsu_valid_i"
        assert not attr.implicit
        assert attr.is_scalar

    def test_width_annotation(self):
        attr = parse_attribute_line(
            "[TRANS_ID_BITS-1:0] lsu_req_transid = fu_data_i.trans_id",
            self.IFACES, 4)
        assert attr.width_text == "TRANS_ID_BITS-1"
        assert not attr.is_scalar

    def test_input_declaration_form(self):
        attr = parse_attribute_line("input lsu_req_val", self.IFACES, 5)
        assert attr is not None and attr.implicit

    def test_non_matching_line_ignored(self):
        assert parse_attribute_line("foo_val = bar", self.IFACES, 1) is None
        assert parse_attribute_line("", self.IFACES, 1) is None

    def test_malformed_matching_line_raises(self):
        with pytest.raises(AutoSVAError):
            parse_attribute_line("lsu_req_val", self.IFACES, 9)

    def test_fig3_lines(self):
        """Every attribute line of the paper's Fig. 3 must parse."""
        lines = [
            "lsu_req_val = lsu_valid_i && fu_data_i.fu == LOAD",
            "lsu_req_rdy = lsu_ready_o",
            "[TRANS_ID_BITS-1:0] lsu_req_transid = fu_data_i.trans_id",
            "[CTRL_BITS-1:0] lsu_req_stable = {fu_data_i.trans_id,fu_data_i.fu}",
            "lsu_res_val = load_valid_o",
            "[TRANS_ID_BITS-1:0] lsu_res_transid = load_trans_id_o",
        ]
        suffixes = []
        for line in lines:
            attr = parse_attribute_line(line, self.IFACES, 1)
            assert attr is not None
            suffixes.append(attr.suffix)
        assert suffixes == ["val", "ack", "transid", "stable", "val",
                            "transid"]
