"""E2 — golden test against the paper's Fig. 2.

Fig. 2 shows the modeling and properties AutoSVA generates for the LSU load
interface from the Fig. 3 annotations.  This test generates the FT for an
equivalent (struct-free) annotation and checks every construct of Fig. 2 is
present in the same form:

* the sampled-transaction counter register and its up/down update;
* the handshake wire (val && rdy);
* the symbolic transaction id with its stability assumption;
* the cover that a transaction happens;
* the hsk-or-drop liveness assertion;
* the eventual-response liveness assertion;
* the had-a-request safety assertion.
"""

import re

import pytest

from repro.core import generate_ft

LSU = """
module lsu #(
  parameter TRANS_ID_BITS = 3
)(
  input  wire clk_i,
  input  wire rst_ni,
  /*AUTOSVA
  lsu_load: lsu_req -in> lsu_res
  lsu_req_val = lsu_valid_i
  lsu_req_rdy = lsu_ready_o
  [TRANS_ID_BITS-1:0] lsu_req_transid = lsu_trans_id_i
  lsu_res_val = load_valid_o
  [TRANS_ID_BITS-1:0] lsu_res_transid = load_trans_id_o
  */
  input  wire lsu_valid_i,
  output wire lsu_ready_o,
  input  wire [TRANS_ID_BITS-1:0] lsu_trans_id_i,
  output wire load_valid_o,
  output wire [TRANS_ID_BITS-1:0] load_trans_id_o
);
endmodule
"""


@pytest.fixture(scope="module")
def ft():
    return generate_ft(LSU)


class TestFig2Constructs:
    def test_sampled_counter_register(self, ft):
        # Fig. 2: reg [..] lsu_load_..._sampled with the +set -response update
        assert re.search(r"reg \[\d+:0\] lsu_load_sampled;", ft.prop_sv)
        assert ("lsu_load_sampled <= lsu_load_sampled + lsu_load_set - "
                "lsu_load_response;") in ft.prop_sv

    def test_reset_clears_counter(self, ft):
        assert "lsu_load_sampled <= '0;" in ft.prop_sv
        assert "negedge rst_ni" in ft.prop_sv

    def test_handshake_wire(self, ft):
        # Fig. 2: wire lsu_req_hsk = lsu_req_val && lsu_req_rdy;
        assert "wire lsu_req_hsk = lsu_req_val && lsu_req_rdy;" in ft.prop_sv

    def test_set_and_response_symbolic_filter(self, ft):
        # Fig. 2: ... && lsu_req_transid == symb_lsu_transid
        assert ("wire lsu_load_set = lsu_req_hsk && lsu_req_transid == "
                "symb_lsu_load_transid;") in ft.prop_sv
        assert ("wire lsu_load_response = lsu_res_val && lsu_res_transid == "
                "symb_lsu_load_transid;") in ft.prop_sv

    def test_symbolic_variable_declared_undriven(self, ft):
        assert ("wire [TRANS_ID_BITS-1:0] symb_lsu_load_transid;"
                in ft.prop_sv)
        stable = ft.prop.find("symb_lsu_load_transid_stable")
        assert stable and stable[0].directive == "assume"
        assert "$stable(symb_lsu_load_transid)" in stable[0].body

    def test_cover_request_happens(self, ft):
        # Fig. 2: co__lsu_request_happens: cover property (sampled > 0);
        cover = ft.prop.find("lsu_load_happens")[0]
        assert cover.directive == "cover"
        assert cover.body == "lsu_load_sampled > 0"

    def test_hsk_or_drop(self, ft):
        # Fig. 2: as__lsu_load_hsk_or_drop: assert property (lsu_req_val |->
        #             s_eventually(!lsu_req_val || lsu_req_rdy));
        prop = ft.prop.find("lsu_load_hsk_or_drop")[0]
        assert prop.directive == "assert" and prop.liveness
        assert prop.body == ("lsu_req_val |-> s_eventually "
                             "(!lsu_req_val || lsu_req_rdy)")

    def test_eventual_response(self, ft):
        # Fig. 2: assert property (lsu_load_set |->
        #             s_eventually(lsu_load_response));
        prop = ft.prop.find("lsu_load_eventual_response")[0]
        assert prop.directive == "assert" and prop.liveness
        assert prop.body == ("lsu_load_set |-> s_eventually "
                             "lsu_load_response")

    def test_had_a_request(self, ft):
        # Fig. 2: assert property (lsu_load_response |->
        #             lsu_load_set || lsu_load_sampled > 0);
        prop = ft.prop.find("lsu_load_had_a_request")[0]
        assert prop.directive == "assert" and not prop.liveness
        assert prop.body == ("lsu_load_response |-> lsu_load_set || "
                             "lsu_load_sampled > 0")

    def test_label_prefixes(self, ft):
        rendered = ft.prop_sv
        assert "as__lsu_load_eventual_response:" in rendered
        assert "am__symb_lsu_load_transid_stable:" in rendered
        assert "co__lsu_load_happens:" in rendered

    def test_clocking_and_reset_template(self, ft):
        assert ("assert property (@(posedge clk_i) disable iff (!rst_ni)"
                in ft.prop_sv)


class TestGeneratedFileIsSelfConsistent:
    def test_propfile_parses_in_our_frontend(self, ft):
        from repro.rtl.parser import parse_design
        from repro.rtl.preprocess import strip_ifdefs
        design = parse_design(strip_ifdefs(ft.prop_sv))
        assert design.modules[0].name == "lsu_prop"

    def test_bind_references_generated_module(self, ft):
        assert "bind lsu lsu_prop" in ft.bind_sv
        assert ".TRANS_ID_BITS(TRANS_ID_BITS)" in ft.bind_sv

    def test_whole_testbench_synthesizes(self, ft):
        from repro.rtl.synth import synthesize
        merged = "\n".join([LSU] + ft.testbench_sources())
        ts = synthesize(merged, "lsu")
        assert ts.liveness and ts.asserts and ts.covers
