"""Tests for the RTL interface scanner and the annotation parser (step 1)."""

import pytest

from repro.core.language import AutoSVAError
from repro.core.parser import parse_annotations
from repro.core.rtl_scan import find_clock_reset, scan_rtl

ANNOTATED = """
module widget #(
  parameter W = 4
)(
  input  wire clk_i,
  input  wire rst_ni,
  /*AUTOSVA
  wtx: w_req -in> w_res
  w_req_val = start_i
  [W-1:0] w_req_transid = start_id_i
  */
  input  wire start_i,
  input  wire [W-1:0] start_id_i,
  output wire w_res_val,
  output wire [W-1:0] w_res_transid
);
  assign w_res_val = start_i;
  assign w_res_transid = start_id_i;
endmodule
"""


class TestScan:
    def test_module_and_ports(self):
        scan = scan_rtl(ANNOTATED)
        assert scan.module_name == "widget"
        assert [p.name for p in scan.ports] == [
            "clk_i", "rst_ni", "start_i", "start_id_i", "w_res_val",
            "w_res_transid"]
        assert scan.port("start_id_i").width_text == "W - 1"
        assert scan.port("start_i").width_text is None

    def test_parameters(self):
        scan = scan_rtl(ANNOTATED)
        assert scan.params[0].name == "W"
        assert scan.params[0].default_text == "4"

    def test_annotation_lines_extracted(self):
        scan = scan_rtl(ANNOTATED)
        texts = [t for _, t in scan.annotation_lines]
        assert "wtx: w_req -in> w_res" in texts
        assert scan.annotation_loc == 3

    def test_single_line_annotation(self):
        src = ANNOTATED.replace(
            "/*AUTOSVA\n  wtx: w_req -in> w_res",
            "//AUTOSVA wtx: w_req -in> w_res\n  /*AUTOSVA")
        scan = scan_rtl(src)
        texts = [t for _, t in scan.annotation_lines]
        assert "wtx: w_req -in> w_res" in texts

    def test_plain_comments_ignored(self):
        src = ANNOTATED.replace("assign w_res_val",
                                "// not_an_annotation: a -in> b\nassign w_res_val")
        scan = scan_rtl(src)
        texts = [t for _, t in scan.annotation_lines]
        assert all("not_an_annotation" not in t for t in texts)

    def test_module_selection(self):
        two = ANNOTATED + "\nmodule other; endmodule\n"
        with pytest.raises(AutoSVAError):
            scan_rtl(two)
        assert scan_rtl(two, module_name="widget").module_name == "widget"
        with pytest.raises(AutoSVAError):
            scan_rtl(two, module_name="missing")

    def test_clock_reset_detection(self):
        scan = scan_rtl(ANNOTATED)
        clk, rst, active_low = find_clock_reset(scan)
        assert (clk, rst, active_low) == ("clk_i", "rst_ni", True)

    def test_missing_clock_raises(self):
        src = ANNOTATED.replace("clk_i", "myclk")
        with pytest.raises(AutoSVAError):
            find_clock_reset(scan_rtl(src))


class TestParseAnnotations:
    def test_explicit_and_implicit(self):
        parsed = parse_annotations(scan_rtl(ANNOTATED))
        assert len(parsed.relations) == 1
        req_attrs = {a.suffix: a for a in parsed.attributes_of("w_req")}
        res_attrs = {a.suffix: a for a in parsed.attributes_of("w_res")}
        # explicit definitions
        assert req_attrs["val"].rhs == "start_i"
        assert not req_attrs["val"].implicit
        # implicit convention-named ports
        assert res_attrs["val"].implicit
        assert res_attrs["transid"].implicit
        assert res_attrs["transid"].width_text == "W - 1"

    def test_no_relations_raises(self):
        src = ANNOTATED.replace("wtx: w_req -in> w_res", "")
        with pytest.raises(AutoSVAError, match="no transaction relations"):
            parse_annotations(scan_rtl(src))

    def test_duplicate_transaction_names(self):
        src = ANNOTATED.replace(
            "wtx: w_req -in> w_res",
            "wtx: w_req -in> w_res\n  wtx: w_req -out> w_res")
        with pytest.raises(AutoSVAError, match="duplicate"):
            parse_annotations(scan_rtl(src))

    def test_duplicate_attribute_raises(self):
        src = ANNOTATED.replace(
            "w_req_val = start_i",
            "w_req_val = start_i\n  w_req_val = start_i")
        with pytest.raises(AutoSVAError, match="defined twice"):
            parse_annotations(scan_rtl(src))

    def test_explicit_wins_over_implicit(self):
        src = ANNOTATED.replace(
            "w_req_val = start_i",
            "w_req_val = start_i\n  w_res_val = start_i")
        parsed = parse_annotations(scan_rtl(src))
        res_val = [a for a in parsed.attributes_of("w_res")
                   if a.suffix == "val"]
        assert len(res_val) == 1 and not res_val[0].implicit
