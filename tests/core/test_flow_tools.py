"""Tests for the end-to-end flow, tool-config generation and the CLI."""

import pytest

from repro.core import (SubmoduleLink, ToolConfig, generate_ft,
                        render_jg_tcl, render_sby, run_fv)
from repro.core.cli import main as cli_main
from repro.core.language import AutoSVAError
from repro.formal import EngineConfig

SIMPLE = """
module echo (
  input  wire clk_i,
  input  wire rst_ni,
  /*AUTOSVA
  t: e_req -in> e_res
  e_req_val = req_i
  e_res_val = res_o
  */
  input  wire req_i,
  output wire res_o
);
  reg q;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) q <= 1'b0;
    else q <= req_i;
  end
  assign res_o = q;
endmodule
"""


class TestGenerateFt:
    def test_files_bundle(self):
        ft = generate_ft(SIMPLE)
        files = ft.files()
        assert set(files) == {"echo_prop.sv", "echo_bind.sv", "echo.sby",
                              "echo.tcl"}
        assert ft.generation_time_s < 1.0

    def test_property_counts(self):
        ft = generate_ft(SIMPLE)
        assert ft.property_count == ft.prop.property_count
        assert ft.total_property_count == ft.property_count

    def test_run_fv_proves_echo(self):
        ft = generate_ft(SIMPLE)
        report = run_fv(ft, [SIMPLE], EngineConfig(max_bound=6))
        assert report.proof_rate == 1.0, report.summary()

    def test_assert_inputs_render(self):
        ft_out = generate_ft(SIMPLE.replace("-in>", "-out>"),
                             assert_inputs=True)
        assert "as__t_eventual_response" in ft_out.prop_sv


class TestSubmoduleLinking:
    def test_am_mode_keeps_assumptions(self):
        sub_ft = generate_ft(SIMPLE)
        parent_src = SIMPLE.replace("module echo", "module parent").replace(
            "echo", "parent")
        link = SubmoduleLink(ft=sub_ft, mode="am")
        parent_ft = generate_ft(parent_src, submodules=[link])
        assert parent_ft.total_property_count > parent_ft.property_count
        files = parent_ft.files()
        assert "echo_prop.sv" in files and "echo_bind.sv" in files

    def test_as_mode_flips_assumptions(self):
        sub_src = SIMPLE.replace("-in>", "-out>")
        sub_ft = generate_ft(sub_src)
        assert "am__t_eventual_response" in sub_ft.prop_sv
        parent_src = SIMPLE.replace("module echo", "module parent")
        link = SubmoduleLink(ft=sub_ft, mode="as")
        generate_ft(parent_src, module_name="parent", submodules=[link])
        # the linked submodule property file was re-rendered with asserts
        assert "as__t_eventual_response" in sub_ft.prop_sv

    def test_bad_mode_rejected(self):
        sub_ft = generate_ft(SIMPLE)
        with pytest.raises(AutoSVAError):
            SubmoduleLink(ft=sub_ft, mode="zz")


class TestToolConfigs:
    def test_sby_structure(self):
        ft = generate_ft(SIMPLE)
        sby = render_sby(ft.prop, ["echo.sv"], ToolConfig(depth=25))
        assert "[tasks]" in sby and "prove" in sby and "live" in sby
        assert "mode live" in sby
        assert "depth 25" in sby
        assert "read -formal echo.sv" in sby
        assert "prep -top echo" in sby
        assert "echo_prop.sv" in sby and "echo_bind.sv" in sby

    def test_jaspergold_structure(self):
        ft = generate_ft(SIMPLE)
        tcl = render_jg_tcl(ft.prop, ["echo.sv"], ToolConfig(timeout_s=120))
        assert "analyze -sv12" in tcl
        assert "elaborate -top echo" in tcl
        assert "clock clk_i" in tcl
        assert "reset !rst_ni" in tcl
        assert "set_prove_time_limit 120s" in tcl
        assert "prove -all" in tcl


class TestCli:
    def test_generate_only(self, tmp_path, capsys):
        rtl = tmp_path / "echo.sv"
        rtl.write_text(SIMPLE)
        out = tmp_path / "ft"
        rc = cli_main([str(rtl), "--out", str(out)])
        assert rc == 0
        assert (out / "echo_prop.sv").exists()
        assert (out / "echo.sby").exists()
        assert "properties" in capsys.readouterr().out

    def test_generate_and_run(self, tmp_path, capsys):
        rtl = tmp_path / "echo.sv"
        rtl.write_text(SIMPLE)
        rc = cli_main([str(rtl), "--out", str(tmp_path / "ft"), "--run",
                       "--depth", "6"])
        assert rc == 0
        assert "proof rate 100%" in capsys.readouterr().out

    def test_error_reporting(self, tmp_path, capsys):
        rtl = tmp_path / "bad.sv"
        rtl.write_text("module bad (input wire clk_i); endmodule")
        rc = cli_main([str(rtl)])
        assert rc == 1
        assert "error" in capsys.readouterr().err

    def test_missing_file(self, tmp_path, capsys):
        rc = cli_main([str(tmp_path / "nope.sv")])
        assert rc == 1
