"""Fault-registry contract: strictly no-op disarmed, deterministic armed.

The registry follows the TRACER discipline: production call sites pay a
single dict-truthiness check when no faults are armed, and armed
behaviour is a pure function of (seed, site name, call index) so a chaos
scenario that fails replays bit-identically from its seed.
"""

import pytest

from repro.testing.faults import ENV_SEED, ENV_SPEC, FaultInjected, \
    FaultRegistry


class TestDisarmed:
    def test_registry_starts_disarmed(self):
        registry = FaultRegistry()
        assert not registry.enabled
        assert registry.maybe_fire("dist.frame_drop") is False
        assert registry.report() == {}

    def test_crash_and_lag_are_noops_when_disarmed(self):
        registry = FaultRegistry()
        registry.crash("worker.crash_before_result")  # must not raise
        registry.lag("dist.frame_delay")              # must not sleep

    def test_disarm_restores_noop(self):
        registry = FaultRegistry()
        registry.arm("cache.torn_write")
        assert registry.enabled
        registry.disarm()
        assert not registry.enabled
        assert registry.maybe_fire("cache.torn_write") is False


class TestSpecParsing:
    def test_bare_site_fires_every_call(self):
        registry = FaultRegistry()
        registry.arm("journal.torn_append")
        assert registry.maybe_fire("journal.torn_append") is True
        assert registry.maybe_fire("journal.torn_append") is True
        assert registry.maybe_fire("other.site") is False

    def test_count_caps_total_fires(self):
        registry = FaultRegistry()
        registry.arm("a.b:count=2")
        fires = [registry.maybe_fire("a.b") for _ in range(5)]
        assert fires == [True, True, False, False, False]

    def test_after_skips_leading_calls(self):
        registry = FaultRegistry()
        registry.arm("a.b:after=3,count=1")
        fires = [registry.maybe_fire("a.b") for _ in range(5)]
        assert fires == [False, False, False, True, False]

    def test_multiple_sites_one_spec(self):
        registry = FaultRegistry()
        registry.arm("a.b:count=1;c.d:after=1")
        assert registry.maybe_fire("a.b") is True
        assert registry.maybe_fire("c.d") is False
        assert registry.maybe_fire("c.d") is True

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError):
            FaultRegistry().arm("a.b:bogus=1")

    def test_report_counts_calls_and_fires(self):
        registry = FaultRegistry()
        registry.arm("a.b:count=1")
        for _ in range(3):
            registry.maybe_fire("a.b")
        assert registry.report() == {"a.b": {"calls": 3, "fires": 1}}


class TestDeterminism:
    def _pattern(self, seed, n=64):
        registry = FaultRegistry()
        registry.arm("a.b:p=0.3", seed=seed)
        return tuple(registry.maybe_fire("a.b") for _ in range(n))

    def test_same_seed_same_pattern(self):
        assert self._pattern(7) == self._pattern(7)

    def test_different_seed_different_pattern(self):
        assert self._pattern(7) != self._pattern(8)

    def test_probability_zero_never_fires(self):
        registry = FaultRegistry()
        registry.arm("a.b:p=0.0")
        assert not any(registry.maybe_fire("a.b") for _ in range(32))


class TestDie:
    def test_die_raises_without_exit_code(self):
        registry = FaultRegistry()
        registry.arm("a.b")
        with pytest.raises(FaultInjected):
            registry.die("a.b")

    def test_crash_fires_then_raises(self):
        registry = FaultRegistry()
        registry.arm("a.b:count=1")
        with pytest.raises(FaultInjected):
            registry.crash("a.b")
        registry.crash("a.b")  # count exhausted: no-op


class TestEnvArming:
    def test_arm_from_env(self, monkeypatch):
        monkeypatch.setenv(ENV_SPEC, "a.b:count=1")
        monkeypatch.setenv(ENV_SEED, "5")
        registry = FaultRegistry()
        registry.arm_from_env()
        assert registry.enabled
        assert registry.maybe_fire("a.b") is True

    def test_no_env_stays_disarmed(self, monkeypatch):
        monkeypatch.delenv(ENV_SPEC, raising=False)
        registry = FaultRegistry()
        registry.arm_from_env()
        assert not registry.enabled
