"""A deterministic sleep unit for fabric failure tests.

Registered on import (the worker agent loads it via ``--preload
slowunit``), so both coordinator-side encoding and agent-side execution
know the type.  The runner sleeps a controlled amount and returns its
value — long enough to kill a worker mid-task without racing the real
model checker's variance.
"""

import os
import time
from dataclasses import dataclass

from repro.dist.protocol import register_unit


@dataclass(frozen=True)
class SleepTask:
    job_id: str
    seconds: float
    value: str


def _encode(task):
    return {"job_id": task.job_id, "seconds": task.seconds,
            "value": task.value}


def _decode(data):
    return SleepTask(job_id=data["job_id"],
                     seconds=float(data["seconds"]),
                     value=data["value"])


def _run(task):
    time.sleep(task.seconds)
    return {"value": task.value, "pid": os.getpid()}


register_unit("sleep-task", SleepTask, _encode, _decode, _run)
