"""Wire-protocol unit tests: framing, fuzz round-trips, unit codec."""

import json
import random

import pytest

from repro.campaign.jobs import expand_jobs
from repro.dist.protocol import (MAX_FRAME_BYTES, PROTOCOL_VERSION,
                                 FrameDecoder, ProtocolError, decode_unit,
                                 encode_frame, encode_unit,
                                 negotiate_version, register_unit,
                                 runner_for, validate_message)
from repro.formal.engine import EngineConfig


class TestFraming:
    def test_single_frame_round_trip(self):
        message = {"type": "heartbeat", "seq": 7}
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame(message)) == [message]

    def test_many_frames_in_one_chunk(self):
        messages = [{"type": "heartbeat", "seq": n} for n in range(5)]
        chunk = b"".join(encode_frame(m) for m in messages)
        assert FrameDecoder().feed(chunk) == messages

    def test_byte_at_a_time_feeding(self):
        message = {"type": "event", "kind": "task_started",
                   "task_id": "A1/p0", "text": "newlines\nand \u00fcnicode"}
        decoder = FrameDecoder()
        out = []
        for byte in encode_frame(message):
            out.extend(decoder.feed(bytes([byte])))
        assert out == [message]

    def test_payload_may_contain_newlines_and_digits(self):
        # Size framing means payload bytes are never scanned for
        # delimiters — the exact reason it exists.
        message = {"type": "task", "task": {"unit": "x",
                                            "source": "42\n17\n\n99\n"}}
        assert FrameDecoder().feed(encode_frame(message)) == [message]

    def test_non_numeric_length_raises(self):
        with pytest.raises(ProtocolError, match="non-numeric"):
            FrameDecoder().feed(b"notanumber\n{}\n")

    def test_oversized_length_raises(self):
        with pytest.raises(ProtocolError, match="out of range"):
            FrameDecoder().feed(b"%d\n" % (MAX_FRAME_BYTES + 1))

    def test_missing_trailing_newline_raises(self):
        with pytest.raises(ProtocolError, match="trailing newline"):
            FrameDecoder().feed(b"2\n{}X")

    def test_bad_json_raises(self):
        with pytest.raises(ProtocolError, match="undecodable"):
            FrameDecoder().feed(b"3\n{,}\n")

    def test_non_object_payload_raises(self):
        with pytest.raises(ProtocolError, match="expected an object"):
            FrameDecoder().feed(b"2\n[]\n")

    def test_runaway_header_raises(self):
        with pytest.raises(ProtocolError, match="header"):
            FrameDecoder().feed(b"1" * 64)


def _random_value(rng, depth=0):
    kinds = ["int", "float", "str", "bool", "none"]
    if depth < 3:
        kinds += ["list", "dict"]
    kind = rng.choice(kinds)
    if kind == "int":
        return rng.randint(-10**9, 10**9)
    if kind == "float":
        return round(rng.uniform(-1e6, 1e6), 6)
    if kind == "str":
        alphabet = "abc\n\t\"\\{}[]:,0123456789\u00e9\u4e2d"
        return "".join(rng.choice(alphabet)
                       for _ in range(rng.randint(0, 40)))
    if kind == "bool":
        return rng.random() < 0.5
    if kind == "none":
        return None
    if kind == "list":
        return [_random_value(rng, depth + 1)
                for _ in range(rng.randint(0, 4))]
    return {f"k{n}": _random_value(rng, depth + 1)
            for n in range(rng.randint(0, 4))}


class TestFuzzRoundTrip:
    def test_random_messages_random_chunking(self):
        """Any JSON-able message survives the codec under any chunking."""
        rng = random.Random(0xD15ED)
        for trial in range(25):
            messages = [
                {"type": rng.choice(["event", "result", "task"]),
                 **{f"f{n}": _random_value(rng)
                    for n in range(rng.randint(1, 5))}}
                for _ in range(rng.randint(1, 8))
            ]
            stream = b"".join(encode_frame(m) for m in messages)
            decoder = FrameDecoder()
            out = []
            position = 0
            while position < len(stream):
                step = rng.randint(1, max(1, len(stream) // 3))
                out.extend(decoder.feed(stream[position:position + step]))
                position += step
            # JSON round-trip normalization is the equality contract.
            expected = [json.loads(json.dumps(m)) for m in messages]
            assert out == expected, f"trial {trial}"


class TestMessages:
    def test_validate_accepts_all_documented_types(self):
        for message in (
                {"type": "hello", "version": 1},
                {"type": "task", "task": {}},
                {"type": "event", "kind": "task_started"},
                {"type": "result", "task_id": "x", "status": "ok"},
                {"type": "heartbeat", "seq": 3},
                {"type": "steal", "max": 2},
                {"type": "steal_grant", "task_ids": []},
                {"type": "shutdown"}):
            assert validate_message(message) is message

    def test_validate_rejects_unknown_type_and_missing_fields(self):
        with pytest.raises(ProtocolError, match="unknown message type"):
            validate_message({"type": "exec"})
        with pytest.raises(ProtocolError, match="missing field"):
            validate_message({"type": "result", "task_id": "x"})

    def test_version_negotiation(self):
        assert negotiate_version(PROTOCOL_VERSION) == PROTOCOL_VERSION
        for bad in (PROTOCOL_VERSION + 1, 0, None, "1"):
            with pytest.raises(ProtocolError, match="version mismatch"):
                negotiate_version(bad)


class TestUnitCodec:
    def test_property_task_round_trips_exactly(self):
        from repro.api.task import PropertyTask, execute_task

        task = PropertyTask(
            task_id="A3/p2", design="A3.buggy", dut_module="tlb",
            sources=("module tlb; endmodule", "// extra\n"),
            engine_config=EngineConfig(max_bound=8, max_frames=30,
                                       proof_engine="kind"),
            properties=("p_a", "p_b"), variant="buggy",
            defines=("FOO",), kinds=("assert", "live"),
            coi_sizes=(4, 17), order=(0, 3))
        wire = json.loads(json.dumps(encode_unit(task)))
        restored = decode_unit(wire)
        assert restored == task
        assert runner_for(restored) is execute_task

    def test_campaign_job_round_trips_exactly(self):
        from repro.campaign.jobs import execute_job

        job = expand_jobs(case_ids=["A3"],
                          config=EngineConfig(max_bound=4))[0]
        wire = json.loads(json.dumps(encode_unit(job)))
        restored = decode_unit(wire)
        assert restored == job
        assert runner_for(restored) is execute_job

    def test_fuzzed_property_tasks_round_trip(self):
        from repro.api.task import PropertyTask

        rng = random.Random(1234)
        alphabet = "abcXYZ\n{}\u00e9_09 "
        for _ in range(20):
            def text():
                return "".join(rng.choice(alphabet)
                               for _ in range(rng.randint(0, 30)))
            count = rng.randint(0, 5)
            task = PropertyTask(
                task_id=text() or "t", design=text(), dut_module=text(),
                sources=tuple(text() for _ in range(rng.randint(1, 3))),
                engine_config=EngineConfig(
                    max_bound=rng.randint(0, 50),
                    max_frames=rng.randint(0, 99),
                    simple_path=rng.random() < 0.5),
                properties=tuple(f"p{n}{text()}" for n in range(count)),
                variant=rng.choice(["fixed", "buggy"]),
                defines=tuple(text() for _ in range(rng.randint(0, 2))),
                kinds=tuple(rng.choice(["assert", "cover", "live"])
                            for _ in range(count)),
                coi_sizes=tuple(rng.randint(0, 500)
                                for _ in range(count)),
                order=tuple(range(count)))
            wire = json.loads(json.dumps(encode_unit(task)))
            assert decode_unit(wire) == task

    def test_unknown_unit_is_a_clear_error(self):
        with pytest.raises(ProtocolError, match="unknown unit type"):
            decode_unit({"unit": "quantum-task"})
        with pytest.raises(ProtocolError, match="no wire codec"):
            encode_unit(object())

    def test_register_unit_extends_the_codec(self):
        class Custom:
            def __init__(self, job_id):
                self.job_id = job_id

        register_unit("custom-unit", Custom,
                      lambda unit: {"job_id": unit.job_id},
                      lambda data: Custom(data["job_id"]),
                      lambda unit: {"ran": unit.job_id})
        try:
            wire = encode_unit(Custom("c1"))
            assert wire["unit"] == "custom-unit"
            restored = decode_unit(wire)
            assert restored.job_id == "c1"
            assert runner_for(restored)(restored) == {"ran": "c1"}
        finally:
            from repro.dist.protocol import _UNIT_CODECS
            _UNIT_CODECS.pop("custom-unit", None)
