"""Observability over the TCP fabric: piggybacked obs + heartbeat RTT.

Worker agents ship their span buffers and metric snapshots as an
optional ``obs`` field on result frames; the coordinator folds them into
the scheduler-side TRACER/METRICS view and tracks heartbeat round-trip
latency per agent.  Old agents that never send ``obs`` stay compatible —
the field is optional on the wire.
"""

import os
import time

import pytest

from repro.campaign import expand_jobs, run_property_campaign
from repro.dist import TcpTransport
from repro.formal.engine import EngineConfig
from repro.obs import METRICS, TRACER

CONFIG = EngineConfig(max_bound=6, max_frames=25)


@pytest.fixture()
def clean_obs():
    TRACER.reset()
    METRICS.reset()
    yield
    TRACER.disable()
    TRACER.reset()
    METRICS.reset()


@pytest.fixture(scope="module")
def a2_jobs():
    return expand_jobs(case_ids=["A2"], config=CONFIG)


def _tcp_transport(workers, **kwargs):
    transport = TcpTransport(min_workers=workers, worker_timeout_s=60.0,
                             **kwargs)
    transport.spawn_local(workers)
    return transport


class TestRemoteObs:
    def test_remote_spans_and_metrics_fold_into_coordinator(self,
                                                            clean_obs,
                                                            a2_jobs):
        # Enable before the transport exists: the hello ack advertises
        # tracing to agents as they join.
        TRACER.enable()
        transport = _tcp_transport(2)
        try:
            results = run_property_campaign(a2_jobs, transport=transport)
        finally:
            transport.close()
        assert all(r.status == "ok" for r in results)
        spans = TRACER.drain()
        remote = [s for s in spans if s["pid"] != os.getpid()]
        # Agent processes shipped their task/compile/check spans home.
        assert {s["name"] for s in remote} >= {"task", "check"}
        # ...and their metric snapshots merged into the one registry.
        counters = METRICS.snapshot()["counters"]
        assert counters.get("task.executed", 0) > 0
        assert counters.get("solver.solve_calls", 0) > 0

    def test_untraced_fabric_ships_no_spans(self, clean_obs, a2_jobs):
        transport = _tcp_transport(1)
        try:
            results = run_property_campaign(a2_jobs, transport=transport)
        finally:
            transport.close()
        assert all(r.status == "ok" for r in results)
        assert TRACER.drain() == []
        # Metrics still flow (always-on, piggybacked the same way).
        assert METRICS.snapshot()["counters"]["task.executed"] > 0


class TestHeartbeatRtt:
    def test_worker_stats_report_rtt(self, clean_obs, a2_jobs):
        transport = _tcp_transport(1, heartbeat_s=0.2)
        try:
            transport.wait_for_workers(1, timeout_s=30.0)
            deadline = time.monotonic() + 30.0
            live = []
            while time.monotonic() < deadline:
                transport.step()    # the transport pumps I/O in step()
                live = [s for s in transport.worker_stats()
                        if s.get("slots")]
                if live and all(s.get("heartbeat_rtt_ms") for s in live):
                    break
            assert live
            for entry in live:
                rtt = entry["heartbeat_rtt_ms"]
                assert rtt is not None, "no heartbeat RTT sampled"
                assert rtt["samples"] >= 1
                assert 0.0 <= rtt["min"] <= rtt["mean"] <= rtt["max"]
            # The registry histogram saw the same pings.
            hist = METRICS.snapshot()["histograms"].get(
                "fabric.heartbeat_rtt_s")
            assert hist is not None and hist["count"] >= 1
        finally:
            transport.close()

    def test_rtt_absent_before_any_echo(self):
        transport = TcpTransport(min_workers=1, heartbeat_s=3600.0)
        try:
            transport.spawn_local(1)
            transport.wait_for_workers(1, timeout_s=30.0)
            stats = [s for s in transport.worker_stats()
                     if s.get("slots")]
            assert stats and stats[0]["heartbeat_rtt_ms"] is None
        finally:
            transport.close()
