"""Worker reconnect: backoff shape, session resume, no double-counting.

``autosva worker --reconnect`` turns connection loss from a death into a
pause: the agent dials back with capped exponential backoff + jitter and
presents the same session id, and the coordinator folds its previous
life's stats into the new connection instead of keeping a corpse in the
departed list.  Deliberate endings (shutdown, drain, refusal) still exit.
"""

import random
import time

from repro.dist import TcpTransport
from repro.dist.worker import _backoff_delay


class TestBackoffShape:
    def test_ceiling_doubles_then_caps(self):

        class _Top:
            def random(self):
                return 1.0  # jitter at the top of the window

        delays = [_backoff_delay(attempt, cap=8.0, rng=_Top())
                  for attempt in range(1, 8)]
        assert delays == [0.5, 1.0, 2.0, 4.0, 8.0, 8.0, 8.0]

    def test_jitter_spans_upper_half_of_ceiling(self):
        rng = random.Random(42)
        for attempt in (1, 3, 6):
            ceiling = min(30.0, 0.5 * 2 ** (attempt - 1))
            for _ in range(100):
                delay = _backoff_delay(attempt, 30.0, rng)
                assert ceiling / 2 <= delay <= ceiling

    def test_seeded_rng_is_deterministic(self):
        first = [_backoff_delay(a, 30.0, random.Random("s"))
                 for a in range(1, 5)]
        second = [_backoff_delay(a, 30.0, random.Random("s"))
                  for a in range(1, 5)]
        assert first == second


class TestSessionResume:
    def test_killed_connection_resumes_as_same_agent(self):
        """Kill a --reconnect agent's connection coordinator-side; the
        agent dials back and the fleet report shows ONE agent with a
        reconnect count — not one live worker plus one corpse."""
        transport = TcpTransport(min_workers=1, worker_timeout_s=60.0,
                                 heartbeat_s=0.5)
        try:
            transport.spawn_local(1, reconnect=True)
            transport.wait_for_workers(1, timeout_s=30.0)
            (worker,) = transport._workers
            session = worker.session
            assert session, "worker sent no session id"
            worker_id = worker.worker_id

            transport._kill(worker, "injected connection loss")
            assert not transport._ready_workers()

            # First-attempt backoff is ~0.25-0.5s; allow plenty.
            transport.wait_for_workers(1, timeout_s=30.0)
            (back,) = transport._workers
            assert back.session == session
            assert back.worker_id == worker_id  # same process, same pid
            assert back.reconnects >= 1
            # The previous life merged away: no corpse in the stats.
            assert not any(d.session == session
                           for d in transport._departed)
            stats = transport.worker_stats()
            assert len(stats) == 1
            assert stats[0]["reconnects"] >= 1
        finally:
            transport.close()

    def test_zombie_connection_superseded_by_reconnect(self):
        """A half-open TCP zombie: the old socket looks live to the
        coordinator when the same session dials back.  The new hello
        must supersede the zombie — one worker, reconnects counted,
        no double-counted death."""
        import socket

        from repro.dist.protocol import PROTOCOL_VERSION, encode_frame

        def hello(session, resume):
            sock = socket.create_connection(transport.address,
                                            timeout=10.0)
            sock.sendall(encode_frame({
                "type": "hello", "version": PROTOCOL_VERSION,
                "slots": 1, "host": "fake", "pid": 4242, "label": None,
                "units": [], "session": session, "resume": resume,
            }))
            return sock

        transport = TcpTransport(min_workers=1, worker_timeout_s=60.0,
                                 heartbeat_s=30.0)  # no timeout rescue
        try:
            first = hello("zombie-session", resume=False)
            deadline = time.monotonic() + 10.0
            while not transport._ready_workers():
                assert time.monotonic() < deadline
                transport.step()
            (old,) = transport._workers
            assert old.session == "zombie-session"

            # The agent "reconnects" while the first socket is still
            # open coordinator-side — the genuine half-open shape.
            second = hello("zombie-session", resume=True)
            deadline = time.monotonic() + 10.0
            while True:
                assert time.monotonic() < deadline, \
                    "hello never superseded the zombie"
                transport.step()
                workers = transport._workers
                if len(workers) == 1 and workers[0] is not old \
                        and workers[0].ready:
                    break
            (back,) = transport._workers
            assert back.session == "zombie-session"
            assert back.reconnects == 1
            assert "superseded" in (old.departed or "")
            # The zombie's corpse merged into the new life: the departed
            # list holds no entry for this session.
            assert not any(d.session == "zombie-session"
                           for d in transport._departed)
            assert len(transport.worker_stats()) == 1
            first.close()
            second.close()
        finally:
            transport.close()
