"""Worker-failure semantics: kill -9 an agent mid-group, converge anyway.

Two layers of assurance:

* a deterministic synthetic campaign (sleep units, pinned dispatch) that
  pins the exact requeue contract — the dead worker's in-flight group is
  requeued exactly once, excluded from the dead worker, and finishes on
  a survivor;
* a real property campaign where an agent is SIGKILLed mid-run and the
  final merged results must still be bit-identical to an uninterrupted
  local run.
"""

import os
import signal
import time

import slowunit  # registers the sleep-task codec in this process
from repro.campaign import (expand_jobs, run_property_campaign,
                            verdict_contract)
from repro.campaign.scheduler import Scheduler
from repro.dist import TcpTransport
from repro.formal.engine import EngineConfig


def _spawn_preloaded(transport, count, monkeypatch):
    """Spawn agents that also know the sleep-task unit."""
    here = os.path.dirname(os.path.abspath(__file__))
    existing = os.environ.get("PYTHONPATH", "")
    monkeypatch.setenv("PYTHONPATH",
                       here + os.pathsep + existing if existing else here)
    for _ in range(count):
        transport.spawn_local(1, preload=["slowunit"])


class TestSyntheticKill:
    def test_group_requeued_exactly_once_excluded_and_finished(
            self, monkeypatch):
        transport = TcpTransport(min_workers=2, worker_timeout_s=60.0,
                                 heartbeat_s=0.5)
        # Pin connection order so dispatch is predictable: worker 0
        # first, then worker 1.
        _spawn_preloaded(transport, 1, monkeypatch)
        transport.wait_for_workers(1, timeout_s=30.0)
        _spawn_preloaded(transport, 1, monkeypatch)
        transport.wait_for_workers(2, timeout_s=30.0)

        # Dispatch (1 slot + 1 prefetch each, cost 1 apiece, ties by
        # connection order): "a"->w0, "b"->w1, "c"->w0, "d"->w1.  "a" is
        # long; everything else is quick, so by the first quick
        # completion "a" is still running on w0.
        jobs = [slowunit.SleepTask("a", 8.0, "A"),
                slowunit.SleepTask("b", 0.2, "B"),
                slowunit.SleepTask("c", 0.2, "C"),
                slowunit.SleepTask("d", 0.2, "D")]
        scheduler = Scheduler(jobs, transport=transport)
        results = {}
        requeue_events = []
        killed = None
        for event in scheduler.run():
            if event[0] == "requeue":
                requeue_events.append(event)
            if event[0] != "done":
                continue
            _, _, job, result = event
            results[job.job_id] = result
            if killed is None:
                # First completion: find the agent grinding "a", SIGKILL
                # it mid-task.
                owner = next(
                    (worker for worker in transport._workers
                     if any(j.job_id == "a"
                            for j in worker.assigned.values())),
                    None)
                assert owner is not None, "'a' finished implausibly fast"
                killed = owner.worker_id
                pid = int(killed.rsplit(":", 1)[1])
                os.kill(pid, signal.SIGKILL)

        # Every job converged, including the dead worker's group.
        assert set(results) == {"a", "b", "c", "d"}
        assert all(result.ok for result in results.values())
        assert results["a"].payload["value"] == "A"
        # The group was requeued exactly once...
        assert scheduler.requeue_counts.get("a") == 1
        # ...excluded from (and therefore finished off) the dead worker.
        assert results["a"].worker != killed
        assert any(event[2] == killed for event in requeue_events)
        # The fabric records the departure.
        departed = [entry for entry in transport.worker_stats()
                    if entry["worker"] == killed]
        assert departed and departed[0]["departed"] not in (None,
                                                            "shutdown")

    def test_sigkill_of_idle_agent_leaves_pool_healthy(
            self, monkeypatch):
        """Killing an agent that never ran a task must not wedge the
        pool or leak assignments."""
        transport = TcpTransport(min_workers=1, worker_timeout_s=60.0)
        try:
            _spawn_preloaded(transport, 1, monkeypatch)
            transport.wait_for_workers(1, timeout_s=30.0)
            worker = transport._ready_workers()[0]
            os.kill(int(worker.worker_id.rsplit(":", 1)[1]),
                    signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            while transport._ready_workers() and \
                    time.monotonic() < deadline:
                transport.step()
            assert not transport._ready_workers()
            assert transport.in_flight() == 0
        finally:
            transport.close()


class TestRealCampaignKill:
    def test_verdicts_identical_after_agent_death(self, monkeypatch):
        """SIGKILL one of two agents mid-campaign; the merged report must
        equal an uninterrupted local run bit for bit."""
        config = EngineConfig(max_bound=8, max_frames=30)
        jobs = expand_jobs(case_ids=["A1"], config=config)
        local = run_property_campaign(jobs, workers=2)

        transport = TcpTransport(min_workers=2, worker_timeout_s=60.0,
                                 heartbeat_s=0.5)
        transport.spawn_local(2)
        victim = transport._spawned[0]
        state = {"killed": False}

        def on_event(event):
            if not state["killed"] and event.kind == "result":
                state["killed"] = True
                victim.send_signal(signal.SIGKILL)

        remote = run_property_campaign(jobs, transport=transport,
                                       progress=on_event)
        assert state["killed"], "no result event ever fired"

        assert verdict_contract(remote) == verdict_contract(local)


class TestPoisonIsolation:
    def test_unknown_unit_degrades_to_task_error_not_agent_death(self):
        """A unit only the coordinator knows (agent missing the
        --preload plugin) must come back as a per-task error result —
        killing the agent would cascade the poisonous task through the
        fleet."""
        transport = TcpTransport(min_workers=1, worker_timeout_s=60.0)
        transport.spawn_local(1)          # deliberately no preload
        jobs = [slowunit.SleepTask("p1", 0.1, "P"),
                slowunit.SleepTask("p2", 0.1, "Q")]
        scheduler = Scheduler(jobs, transport=transport)
        results = {}
        for event in scheduler.run():
            if event[0] == "done":
                results[event[2].job_id] = event[3]
        assert set(results) == {"p1", "p2"}
        for result in results.values():
            assert result.status == "error"
            assert "unknown unit type" in result.error
        # The agent survived to serve both errors and the shutdown.
        stats = transport.worker_stats()
        assert [s["departed"] for s in stats] == ["shutdown"]

    def test_remote_timeout_matches_local_contract(self, monkeypatch):
        """Per-task wall-clock enforcement is agent-side but must
        produce the same status and message shape as the local pool."""
        transport = TcpTransport(min_workers=1, worker_timeout_s=60.0)
        _spawn_preloaded(transport, 1, monkeypatch)
        scheduler = Scheduler([slowunit.SleepTask("slow", 30.0, "S")],
                              timeout_s=0.5, transport=transport)
        results = [event[3] for event in scheduler.run()
                   if event[0] == "done"]
        assert [r.status for r in results] == ["timeout"]
        assert "wall-clock limit (0.5s) exceeded" in results[0].error


class TestTransportLifecycle:
    def test_warm_rerun_completes_with_no_workers_at_all(self, tmp_path):
        """Cache replays happen at admission, so a fully-warm rerun must
        finish with zero agents attached — capacity must not gate it."""
        from repro.campaign import ArtifactCache, verdict_contract

        config = EngineConfig(max_bound=8, max_frames=30)
        jobs = expand_jobs(case_ids=["A1"], config=config)
        cache = ArtifactCache(tmp_path / "cache")
        cold = run_property_campaign(jobs, workers=1, cache=cache)

        empty_fleet = TcpTransport(min_workers=4)   # nobody will come
        warm = run_property_campaign(jobs, cache=cache,
                                     transport=empty_fleet)
        assert verdict_contract(warm) == verdict_contract(cold)
        assert all(result.from_cache for result in warm)

    def test_consumed_transport_reuse_is_a_clear_error(self, monkeypatch):
        """Reuse needing real dispatch fails with a clear message, not a
        closed-socket traceback.  (A fully-cached rerun never touches
        the fleet, so it is allowed even on a consumed transport.)"""
        import pytest

        from repro.core.language import AutoSVAError

        transport = TcpTransport(min_workers=1, worker_timeout_s=60.0)
        _spawn_preloaded(transport, 1, monkeypatch)
        first = [event for event in Scheduler(
            [slowunit.SleepTask("t1", 0.1, "A")],
            transport=transport).run() if event[0] == "done"]
        assert [e[3].status for e in first] == ["ok"]
        with pytest.raises(AutoSVAError, match="already consumed"):
            for _ in Scheduler([slowunit.SleepTask("t2", 0.1, "B")],
                               transport=transport).run():
                pass
