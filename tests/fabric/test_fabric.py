"""Loopback-TCP fabric tests: verdict equivalence, cache, membership.

The contract under test is the acceptance bar of the distributed
subsystem: a campaign run over TCP worker agents produces results
bit-identical to the local multiprocessing transport — per job id,
status, error and payload (wall times excluded: they are measurements,
not verdicts) — across worker counts and schedules.  The full-corpus
version of this gate lives in
``tests/integration/test_dist_corpus.py`` and ``make dist-smoke``.
"""

import socket
import time

import pytest

from repro.campaign import (expand_jobs, run_campaign,
                            run_property_campaign, verdict_contract)
from repro.dist import TcpTransport
from repro.dist.protocol import FrameDecoder, encode_frame
from repro.formal.engine import EngineConfig

CONFIG = EngineConfig(max_bound=8, max_frames=30)


def _tcp_transport(workers, **kwargs):
    transport = TcpTransport(min_workers=workers, worker_timeout_s=60.0,
                             **kwargs)
    transport.spawn_local(workers)
    return transport


@pytest.fixture(scope="module")
def a1_jobs():
    return expand_jobs(case_ids=["A1"], config=CONFIG)


@pytest.fixture(scope="module")
def a1_local_baseline(a1_jobs):
    return verdict_contract(run_property_campaign(a1_jobs, workers=2))


class TestLoopbackEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_cost_schedule_matches_local(self, a1_jobs,
                                         a1_local_baseline, workers):
        transport = _tcp_transport(workers)
        results = run_property_campaign(a1_jobs, transport=transport)
        assert verdict_contract(results) == a1_local_baseline
        stats = transport.worker_stats()
        assert len([s for s in stats if s["slots"]]) == workers
        assert sum(s["tasks"] for s in stats) > 0

    def test_inventory_schedule_matches_local(self, a1_jobs,
                                              a1_local_baseline):
        transport = _tcp_transport(2)
        results = run_property_campaign(a1_jobs, schedule="inventory",
                                        transport=transport)
        assert verdict_contract(results) == a1_local_baseline

    def test_design_granularity_matches_local(self, a1_jobs):
        local = verdict_contract(run_campaign(a1_jobs, workers=2))
        transport = _tcp_transport(2)
        remote = verdict_contract(run_campaign(a1_jobs, transport=transport))
        assert remote == local
        # Every job reports the remote agent that executed it.
        results = run_campaign(a1_jobs, transport=_tcp_transport(1))
        assert all(r.worker and ":" in r.worker for r in results)

    def test_result_events_carry_remote_worker_ids(self, a1_jobs):
        from repro.api.session import VerificationSession
        from repro.campaign.sharding import stream_tasks

        transport = _tcp_transport(2)
        session = VerificationSession(stream_tasks(a1_jobs),
                                      precompile=False,
                                      transport=transport)
        session.run_all()
        workers = {event.worker for event in session.results}
        assert workers  # at least one result
        assert all(worker and ":" in worker for worker in workers)


class TestRemoteCaching:
    def test_warm_rerun_ships_zero_jobs(self, a1_jobs, a1_local_baseline,
                                        tmp_path):
        """Cache hits resolve at admission, coordinator-side: a fully
        warm rerun never sends a single task over the wire."""
        from repro.campaign import ArtifactCache

        cache = ArtifactCache(tmp_path / "cache")
        cold = run_property_campaign(a1_jobs, workers=1, cache=cache)
        assert verdict_contract(cold) == a1_local_baseline

        transport = _tcp_transport(2)
        warm = run_property_campaign(a1_jobs, cache=cache,
                                     transport=transport)
        assert verdict_contract(warm) == a1_local_baseline
        assert all(result.from_cache for result in warm)
        assert sum(s["tasks"] for s in transport.worker_stats()) == 0


class TestPoolMembership:
    def test_wait_for_workers_and_capacity(self):
        transport = TcpTransport(min_workers=2)
        try:
            assert transport.free_slots() == 0
            transport.spawn_local(1, slots=2)
            # One agent is not enough for min_workers=2.
            transport.wait_for_workers(1, timeout_s=30.0)
            assert transport.free_slots() == 0
            transport.spawn_local(1, slots=1)
            transport.wait_for_workers(2, timeout_s=30.0)
            # 2 + 1 slots, +1 prefetch each.
            assert transport.free_slots() == 5
        finally:
            transport.close()

    def test_version_mismatch_is_refused(self):
        transport = TcpTransport(min_workers=1)
        try:
            client = socket.create_connection(transport.address,
                                              timeout=5.0)
            client.sendall(encode_frame(
                {"type": "hello", "version": 99, "slots": 1,
                 "host": "x", "pid": 1}))
            decoder = FrameDecoder()
            reply = None
            deadline = time.monotonic() + 10.0
            while reply is None and time.monotonic() < deadline:
                transport.step()
                client.settimeout(0.2)
                try:
                    data = client.recv(65536)
                except socket.timeout:
                    continue
                if not data:
                    break
                messages = decoder.feed(data)
                if messages:
                    reply = messages[0]
            assert reply is not None, "coordinator never answered"
            assert reply["type"] == "shutdown"
            assert "version mismatch" in reply["reason"]
            assert transport.free_slots() == 0   # never joined the pool
            client.close()
        finally:
            transport.close()

    def test_starvation_timeout_raises(self):
        from repro.core.language import AutoSVAError

        transport = TcpTransport(min_workers=1, worker_timeout_s=0.0)
        try:
            time.sleep(0.01)
            with pytest.raises(AutoSVAError, match="no worker connected"):
                transport.step()
        finally:
            transport.close()


class TestCliTcp:
    def test_campaign_cli_over_tcp_with_spawned_agents(self, tmp_path,
                                                       capsys):
        from repro.core.cli import main as cli_main

        json_out = tmp_path / "dist.json"
        rc = cli_main(["campaign", "--cases", "A1", "--transport", "tcp",
                       "--spawn-workers", "2", "--granularity",
                       "property", "--json", str(json_out)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Coordinator listening on 127.0.0.1:" in out
        assert "Worker fabric:" in out
        assert "transport tcp" in out

        import json
        data = json.loads(json_out.read_text())
        assert data["totals"]["transport"] == "tcp"
        agents = [w for w in data["workers"] if w["slots"]]
        assert len(agents) == 2
        assert sum(w["tasks"] for w in agents) > 0
        assert data["totals"]["workers"] == 2


class TestHeartbeatLiveness:
    def test_silent_worker_is_declared_dead_and_requeued(self):
        """A worker whose socket stays open but stops answering (hung
        host, network partition) is killed by heartbeat timeout and its
        in-flight task is requeued with the dead id excluded."""
        import slowunit

        transport = TcpTransport(min_workers=1, heartbeat_s=0.2,
                                 liveness_timeout_s=1.0)
        try:
            client = socket.create_connection(transport.address,
                                              timeout=5.0)
            client.sendall(encode_frame(
                {"type": "hello", "version": 1, "slots": 1,
                 "host": "zombie", "pid": 4242}))
            deadline = time.monotonic() + 10.0
            while not transport._ready_workers() and \
                    time.monotonic() < deadline:
                transport.step()
            assert transport._ready_workers()

            job = slowunit.SleepTask("z1", 0.1, "Z")
            assert transport.dispatch(0, job)
            assert transport.in_flight() == 1

            # The client never echoes a heartbeat: within the liveness
            # window the coordinator must requeue, excluding zombie:4242.
            requeued = []
            deadline = time.monotonic() + 10.0
            while not requeued and time.monotonic() < deadline:
                _, gone = transport.step()
                requeued.extend(gone)
            assert requeued == [(0, job, "zombie:4242")]
            assert not transport._ready_workers()
            stats = transport.worker_stats()
            assert any("heartbeat timeout" in (s["departed"] or "")
                       for s in stats)
            client.close()
        finally:
            transport.close()


class TestReviewRegressions:
    """Pins for review findings on the first fabric cut."""

    def test_quorum_never_met_still_times_out(self):
        """One agent joining must not disarm --worker-timeout when the
        startup quorum needs two: the campaign fails loudly, not hangs."""
        from repro.core.language import AutoSVAError

        transport = TcpTransport(min_workers=2, worker_timeout_s=0.5)
        try:
            client = socket.create_connection(transport.address,
                                              timeout=5.0)
            client.sendall(encode_frame(
                {"type": "hello", "version": 1, "slots": 1,
                 "host": "only", "pid": 1}))
            deadline = time.monotonic() + 10.0
            with pytest.raises(AutoSVAError,
                               match="only 1 of the 2 worker"):
                while time.monotonic() < deadline:
                    transport.step()
            client.close()
        finally:
            transport.close()

    def test_fleet_death_mid_campaign_times_out(self):
        """The starvation timer re-arms when the last worker dies."""
        from repro.core.language import AutoSVAError

        transport = TcpTransport(min_workers=1, worker_timeout_s=0.5,
                                 heartbeat_s=0.1, liveness_timeout_s=0.4)
        try:
            client = socket.create_connection(transport.address,
                                              timeout=5.0)
            client.sendall(encode_frame(
                {"type": "hello", "version": 1, "slots": 1,
                 "host": "brief", "pid": 2}))
            deadline = time.monotonic() + 10.0
            while not transport._ready_workers() and \
                    time.monotonic() < deadline:
                transport.step()
            assert transport._ready_workers()
            client.close()        # the whole fleet departs
            deadline = time.monotonic() + 10.0
            with pytest.raises(AutoSVAError, match="no worker connected"):
                while time.monotonic() < deadline:
                    transport.step()
        finally:
            transport.close()

    def test_compile_grace_suspends_liveness_kill(self):
        """An agent silent inside a long first-sight compile (it sent
        compile_started) must not be declared dead; once compile_done
        arrives the normal window applies again."""
        transport = TcpTransport(min_workers=1, heartbeat_s=0.1,
                                 liveness_timeout_s=0.5,
                                 compile_grace_s=300.0)
        try:
            client = socket.create_connection(transport.address,
                                              timeout=5.0)
            client.sendall(encode_frame(
                {"type": "hello", "version": 1, "slots": 1,
                 "host": "compiler", "pid": 3}))
            deadline = time.monotonic() + 10.0
            while not transport._ready_workers() and \
                    time.monotonic() < deadline:
                transport.step()
            client.sendall(encode_frame(
                {"type": "event", "kind": "compile_started",
                 "design": "A4"}))
            # Stay silent well past the liveness window: still alive.
            until = time.monotonic() + 1.5
            while time.monotonic() < until:
                transport.step()
            assert transport._ready_workers(), \
                "killed during a declared compile"
            client.sendall(encode_frame(
                {"type": "event", "kind": "compile_done",
                 "design": "A4", "wall_time_s": 1.5}))
            # Grace cleared: silence now kills within the window.
            deadline = time.monotonic() + 10.0
            while transport._ready_workers() and \
                    time.monotonic() < deadline:
                transport.step()
            assert not transport._ready_workers()
            client.close()
        finally:
            transport.close()

    def test_explicit_local_transport_keeps_precompile(self):
        from repro.api.session import VerificationSession
        from repro.campaign.scheduler import LocalTransport

        assert VerificationSession([]).precompile
        assert VerificationSession(
            [], transport=LocalTransport(2)).precompile
        remote = TcpTransport(min_workers=1)
        try:
            assert not VerificationSession([],
                                           transport=remote).precompile
        finally:
            remote.close()

    def test_worker_cli_rejects_out_of_range_port(self, capsys):
        from repro.dist.worker import worker_main

        assert worker_main(["--connect", "host:99999"]) == 1
        assert "HOST:PORT" in capsys.readouterr().err
