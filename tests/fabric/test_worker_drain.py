"""Graceful-drain semantics: SIGTERM an agent, see a clean departure.

The counterpart to ``test_worker_failure``: where SIGKILL exercises the
death path (requeue-excluded, ``departed`` records a timeout/EOF
reason), SIGTERM must exercise the *drain* path — the agent hands back
its unstarted backlog in a worker-sent ``shutdown`` frame, finishes the
task it already started, and the coordinator records ``graceful
shutdown`` rather than a false death.
"""

import os
import signal
import time

import slowunit  # registers the sleep-task codec in this process
from repro.campaign.scheduler import Scheduler
from repro.dist import TcpTransport


def _spawn_preloaded(transport, count, monkeypatch):
    """Spawn agents that also know the sleep-task unit."""
    here = os.path.dirname(os.path.abspath(__file__))
    existing = os.environ.get("PYTHONPATH", "")
    monkeypatch.setenv("PYTHONPATH",
                       here + os.pathsep + existing if existing else here)
    for _ in range(count):
        transport.spawn_local(1, preload=["slowunit"])


class TestGracefulDrain:
    def test_sigterm_drains_backlog_and_finishes_started_task(
            self, monkeypatch):
        transport = TcpTransport(min_workers=2, worker_timeout_s=60.0,
                                 heartbeat_s=0.5)
        # Pin connection order so dispatch is predictable: worker 0
        # first, then worker 1.
        _spawn_preloaded(transport, 1, monkeypatch)
        transport.wait_for_workers(1, timeout_s=30.0)
        _spawn_preloaded(transport, 1, monkeypatch)
        transport.wait_for_workers(2, timeout_s=30.0)

        # Dispatch (1 slot + 1 prefetch each, cost 1 apiece, ties by
        # connection order): "a"->w0, "b"->w1, "c"->w0, "d"->w1.  "a"
        # occupies w0's slot; "c" sits unstarted in its prefetch queue —
        # the drain must give "c" back while "a" runs to completion on
        # the draining agent.  "e" and "f" keep the scheduler's own
        # queue non-empty at SIGTERM time so tail steal reclaim (which
        # only fires on an empty queue) cannot pull "c" back first, and
        # "g" keeps the survivor busy past the drained agent's EOF so
        # the coordinator observes the departure mid-campaign.
        jobs = [slowunit.SleepTask("a", 3.0, "A"),
                slowunit.SleepTask("b", 0.2, "B"),
                slowunit.SleepTask("c", 0.2, "C"),
                slowunit.SleepTask("d", 0.2, "D"),
                slowunit.SleepTask("e", 0.4, "E"),
                slowunit.SleepTask("f", 0.4, "F"),
                slowunit.SleepTask("g", 3.0, "G")]
        scheduler = Scheduler(jobs, transport=transport)
        results = {}
        requeue_events = []
        drained = None
        for event in scheduler.run():
            if event[0] == "requeue":
                requeue_events.append(event)
            if event[0] != "done":
                continue
            _, _, job, result = event
            results[job.job_id] = result
            if drained is None:
                # First completion: find the agent grinding "a" and ask
                # it — politely, via SIGTERM — to drain.
                owner = next(
                    (worker for worker in transport._workers
                     if any(j.job_id == "a"
                            for j in worker.assigned.values())),
                    None)
                assert owner is not None, "'a' finished implausibly fast"
                drained = owner.worker_id
                os.kill(int(drained.rsplit(":", 1)[1]), signal.SIGTERM)

        # Every job converged.
        assert set(results) == {"a", "b", "c", "d", "e", "f", "g"}
        assert all(result.ok for result in results.values())
        # The started task finished ON the draining agent — drain never
        # abandons running work.
        assert results["a"].worker == drained
        # The unstarted backlog was handed back *silently* (like a steal
        # grant, not a death): no death-requeue was counted or evented
        # anywhere, and "c" finished on the survivor.
        assert scheduler.requeue_counts == {}
        assert requeue_events == []
        assert results["c"].worker != drained
        # The coordinator saw a clean departure, not a false death.
        departed = [entry for entry in transport.worker_stats()
                    if entry["worker"] == drained]
        assert departed
        assert departed[0]["departed"] == "graceful shutdown"

    def test_sigterm_of_idle_agent_departs_cleanly(self, monkeypatch):
        """An idle agent's drain is immediate: announce, EOF, clean
        departure — no requeues, no liveness kill."""
        transport = TcpTransport(min_workers=1, worker_timeout_s=60.0)
        try:
            _spawn_preloaded(transport, 1, monkeypatch)
            transport.wait_for_workers(1, timeout_s=30.0)
            worker = transport._ready_workers()[0]
            worker_id = worker.worker_id
            os.kill(int(worker_id.rsplit(":", 1)[1]), signal.SIGTERM)
            deadline = time.monotonic() + 10.0
            while transport._ready_workers() and \
                    time.monotonic() < deadline:
                transport.step()
            assert not transport._ready_workers()
            assert transport.in_flight() == 0
            departed = [entry for entry in transport.worker_stats()
                        if entry["worker"] == worker_id]
            assert departed
            assert departed[0]["departed"] == "graceful shutdown"
        finally:
            transport.close()
