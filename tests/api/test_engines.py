"""Engine registry contract tests: dispatch, plugins, eager validation."""

import pytest

from repro.core.language import AutoSVAError
from repro.formal import (AIG, EngineConfig, EngineVerdict, FormalEngine,
                          TransitionSystem, available_engines,
                          available_liveness_strategies, get_engine,
                          get_liveness_strategy, register_engine)
from repro.formal.engines import _ENGINES, Engine


def make_counter(width=3):
    ts = TransitionSystem("counter")
    g = ts.aig
    lats = ts.add_latch_vec("cnt", width, init=0)
    bits = [lat.node for lat in lats]
    inc = g.add_vec(bits, g.const_vec(1, width))
    for lat, nxt in zip(lats, inc):
        ts.set_next(lat, nxt)
    return ts, bits


class TestRegistry:
    def test_builtins_registered(self):
        assert {"pdr", "kind", "bmc-only"} <= set(available_engines())
        assert set(available_liveness_strategies()) >= {"l2s", "bounded"}

    def test_unknown_engine_raises_with_candidates(self):
        with pytest.raises(KeyError, match="pdr"):
            get_engine("zz3")
        with pytest.raises(KeyError, match="l2s"):
            get_liveness_strategy("zz")

    def test_verdict_shapes(self):
        ts, bits = make_counter()
        g = ts.aig
        good = g.NOT(g.eq_vec(bits, g.const_vec(5, 3)))
        config = EngineConfig(max_bound=4, max_frames=20)
        verdict = get_engine("pdr").prove_invariant(ts, good, config)
        assert verdict.failed and verdict.cex_depth == 5
        assert verdict.trace is None  # PDR learns the depth only
        verdict = get_engine("kind").prove_invariant(ts, good, config)
        assert verdict.failed and verdict.cex_depth == 5
        assert verdict.trace is not None  # induction base case has a trace
        verdict = get_engine("bmc-only").prove_invariant(ts, good, config)
        assert verdict.status == "unknown"

    def test_custom_engine_dispatches_from_config(self):
        class AlwaysProven(Engine):
            name = "always-proven"

            def prove_invariant(self, system, good_lit, config):
                return EngineVerdict("proven", depth=1)

        register_engine(AlwaysProven())
        try:
            def factory():
                ts, bits = make_counter()
                g = ts.aig
                # False beyond the BMC bound: only the "proof" can claim it.
                ts.add_assert("claim", g.NOT(g.eq_vec(bits,
                                                      g.const_vec(7, 3))))
                return ts

            config = EngineConfig(max_bound=2,
                                  proof_engine="always-proven")
            report = FormalEngine(factory, config).check_all()
            assert report.by_name("claim").status == "proven"
        finally:
            _ENGINES.pop("always-proven", None)

    def test_nameless_engine_rejected(self):
        with pytest.raises(ValueError):
            register_engine(Engine())


class TestEagerConfigValidation:
    def test_unknown_proof_engine_fails_at_construction(self):
        with pytest.raises(AutoSVAError, match="unknown proof engine"):
            EngineConfig(proof_engine="jasper")

    def test_unknown_liveness_strategy_fails_at_construction(self):
        with pytest.raises(AutoSVAError, match="liveness strategy"):
            EngineConfig(liveness_strategy="k-liveness")

    def test_negative_bound_rejected(self):
        with pytest.raises(AutoSVAError, match="max_bound"):
            EngineConfig(max_bound=-1)

    def test_error_message_names_the_candidates(self):
        with pytest.raises(AutoSVAError, match="pdr"):
            EngineConfig(proof_engine="prd")

    def test_valid_configs_unaffected(self):
        for engine in ("pdr", "kind", "bmc-only"):
            assert EngineConfig(proof_engine=engine).proof_engine == engine


class TestKindTraceLabeling:
    def test_proof_step_cex_keeps_property_name(self):
        """A CEX found by the kind backend's base case (beyond the BMC
        hunt bound) must carry the property's name into the trace the CLI
        renders, not the extract_trace default."""
        def factory():
            ts, bits = make_counter()
            g = ts.aig
            ts.add_assert("never5", g.NOT(g.eq_vec(bits, g.const_vec(5, 3))))
            return ts

        config = EngineConfig(max_bound=2, proof_engine="kind")
        result = FormalEngine(factory, config).check_property("never5")
        assert result.status == "cex" and result.depth == 5
        assert result.trace.property_name == "never5"


class TestBmcOnlyEngine:
    def test_hunts_but_never_proves(self):
        def factory():
            ts, bits = make_counter()
            g = ts.aig
            ts.add_assert("never5", g.NOT(g.eq_vec(bits, g.const_vec(5, 3))))
            # Holds in every state, but bmc-only has no proof step.
            ts.add_assert("low_bits", g.OR(g.NOT(bits[0]), bits[0]))
            # Unreachable within any bound: must stay unknown, never
            # "unreachable" — that verdict needs a proof engine.
            ts.add_cover("reach_never", g.AND(bits[0], g.NOT(bits[0])))
            return ts

        config = EngineConfig(max_bound=8, proof_engine="bmc-only")
        report = FormalEngine(factory, config).check_all()
        assert report.by_name("never5").status == "cex"
        # A true property stays unknown: bmc-only never claims proofs.
        assert report.by_name("low_bits").status == "unknown"
        assert report.by_name("low_bits").depth == 8
        assert report.by_name("reach_never").status == "unknown"
