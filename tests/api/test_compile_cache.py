"""Compile-step tests: cache hits, clone independence, key stability."""

import pytest

from repro.api import CompileCache, CompiledDesign, compile_design, design_key
from repro.core import generate_ft
from repro.designs import case_by_id, load
from repro.formal import EngineConfig, FormalEngine


def merged_source(case_id="A2", variant="fixed"):
    case = case_by_id(case_id)
    src = load(case.buggy_file if variant == "buggy" else case.dut_file)
    extra = [load(name) for name in case.extra_files]
    ft = generate_ft(src, module_name=case.dut_module)
    return ("\n".join([src] + extra + ft.testbench_sources()),
            case.dut_module)


class TestCompileCache:
    def test_compile_once_per_design(self):
        cache = CompileCache()
        merged, module = merged_source()
        first = cache.get_or_compile([merged], module)
        second = cache.get_or_compile([merged], module)
        assert first is second
        assert cache.stats() == {"compiles": 1, "hits": 1, "entries": 1}

    def test_distinct_variants_compile_separately(self):
        cache = CompileCache()
        fixed, module = merged_source("A3")
        buggy, _ = merged_source("A3", variant="buggy")
        cache.get_or_compile([fixed], module)
        cache.get_or_compile([buggy], module)
        assert cache.stats()["compiles"] == 2

    def test_key_covers_sources_top_and_defines(self):
        assert design_key(["a"], "m") != design_key(["b"], "m")
        assert design_key(["a"], "m") != design_key(["a"], "n")
        assert design_key(["a"], "m") != design_key(["a"], "m", ["X"])
        # Length framing: source-boundary moves must change the key.
        assert design_key(["ab", "c"], "m") != design_key(["a", "bc"], "m")

    def test_lru_bound_evicts_oldest(self):
        cache = CompileCache(max_entries=1)
        merged, module = merged_source()
        other, other_module = merged_source("A1")
        cache.get_or_compile([merged], module)
        cache.get_or_compile([other], other_module)
        assert len(cache) == 1
        cache.get_or_compile([merged], module)  # evicted: recompiles
        assert cache.stats()["compiles"] == 3

    def test_bad_bound_rejected(self):
        with pytest.raises(ValueError):
            CompileCache(max_entries=0)


class TestCloneIndependence:
    def test_checks_cannot_corrupt_the_base(self):
        """Liveness checking mutates its system (L2S monitors); a cached
        base must hand every check a fresh clone so verdicts stay identical
        across arbitrarily many reuses."""
        merged, module = merged_source()
        cache = CompileCache()
        compiled = cache.get_or_compile([merged], module)
        base_stats = compiled.base.stats()
        config = EngineConfig(max_bound=6, max_frames=25)

        first = FormalEngine(compiled.system, config).check_all()
        assert compiled.base.stats() == base_stats  # untouched by L2S
        second = FormalEngine(compiled.system, config).check_all()
        verdicts = lambda report: [(r.name, r.kind, r.status, r.depth)
                                   for r in report.results]
        assert verdicts(first) == verdicts(second)
        assert compiled.clones >= 4  # safety + liveness systems, twice

    def test_clone_preserves_node_ids(self):
        merged, module = merged_source()
        compiled = CompileCache().get_or_compile([merged], module)
        clone = compiled.base.clone()
        assert [p.lit for p in clone.asserts] == \
            [p.lit for p in compiled.base.asserts]
        assert [l.name for l in clone.latches] == \
            [l.name for l in compiled.base.latches]
        # Mutating the clone's AIG grows the clone only.
        before = compiled.base.aig.num_ands
        g = clone.aig
        g.AND(g.new_input("probe"), clone.latches[0].node)
        assert clone.aig.num_ands == before + 1
        assert compiled.base.aig.num_ands == before
        assert len(clone.aig.inputs) == len(compiled.base.aig.inputs) + 1

    def test_inventory_is_canonical_check_order(self):
        merged, module = merged_source()
        compiled = compile_design([merged], module)
        kinds = [kind for _, kind in compiled.inventory]
        # asserts, then covers, then liveness — the whole-design order.
        boundaries = [kinds.index(k) for k in ("assert", "cover", "live")
                      if k in kinds]
        assert boundaries == sorted(boundaries)
        assert len(compiled.property_names()) == len(set(
            compiled.property_names()))
