"""VerificationSession tests: streaming, determinism, shim equivalence."""

import pytest

from repro.api import (COMPILE_CACHE, EngineConfig, VerificationSession,
                       expand_tasks, group_properties, run_tasks)
from repro.campaign import ArtifactCache
from repro.core import generate_ft, run_fv
from repro.designs import case_by_id, load

FAST = EngineConfig(max_bound=6, max_frames=25)


def case_setup(case_id="A2"):
    case = case_by_id(case_id)
    src = load(case.dut_file)
    ft = generate_ft(src, module_name=case.dut_module)
    merged = "\n".join([src] + ft.testbench_sources())
    return case, src, ft, merged


def verdicts(report):
    return [(r.name, r.kind, r.status, r.depth) for r in report.results]


def event_verdicts(events):
    out = {}
    for event in events:
        out[event.task_id] = (event.status,
                              [(r["name"], r["status"], r["depth"])
                               for r in event.results])
    return out


class TestExpandTasks:
    def test_one_task_per_property_by_default(self):
        case, src, ft, merged = case_setup()
        tasks = expand_tasks([merged], case.dut_module, FAST,
                             design="A2.fixed")
        assert len(tasks) >= 5
        assert all(len(task.properties) == 1 for task in tasks)
        assert [task.design for task in tasks] == ["A2.fixed"] * len(tasks)
        assert len({task.task_id for task in tasks}) == len(tasks)

    def test_group_size_chunks_inventory(self):
        assert group_properties(list("abcde"), 2) == \
            [("a", "b"), ("c", "d"), ("e",)]
        with pytest.raises(ValueError):
            group_properties(["a"], 0)

    def test_subset_expansion_and_unknown_name(self):
        case, src, ft, merged = case_setup()
        everything = expand_tasks([merged], case.dut_module, FAST)
        some = everything[0].properties[0]
        subset = expand_tasks([merged], case.dut_module, FAST,
                              properties=[some])
        assert len(subset) == 1 and subset[0].properties == (some,)
        with pytest.raises(KeyError):
            expand_tasks([merged], case.dut_module, FAST,
                         properties=["nope"])

    def test_tasks_are_picklable(self):
        import pickle
        case, src, ft, merged = case_setup()
        task = expand_tasks([merged], case.dut_module, FAST)[0]
        clone = pickle.loads(pickle.dumps(task))
        assert clone == task


class TestSessionDeterminism:
    def test_results_identical_across_worker_counts(self):
        case, src, ft, merged = case_setup()
        runs = {}
        for workers in (1, 3):
            tasks = expand_tasks([merged], case.dut_module, FAST,
                                 design="A2.fixed")
            session = VerificationSession(tasks, workers=workers)
            session.run_all()
            assert not session.failures
            runs[workers] = (event_verdicts(session.events),
                             verdicts(session.reports()["A2.fixed"]))
        assert runs[1] == runs[3]

    def test_streaming_yields_every_task_once(self):
        case, src, ft, merged = case_setup()
        tasks = expand_tasks([merged], case.dut_module, FAST)
        session = VerificationSession(tasks, workers=2)
        seen = [event.task_id for event in session.run()]
        assert sorted(seen) == sorted(task.task_id for task in tasks)
        assert session.events and len(session.events) == len(tasks)

    def test_one_compile_across_workers(self):
        """The acceptance-criterion counter: sharding one design across
        >=2 workers costs exactly one frontend compile (parent-side), and
        no worker reports compiling."""
        case, src, ft, merged = case_setup()
        COMPILE_CACHE.clear()
        before = COMPILE_CACHE.compiles
        tasks = expand_tasks([merged], case.dut_module, FAST,
                             design="A2.fixed")
        session = VerificationSession(tasks, workers=2)
        session.run_all()
        assert not session.failures
        assert COMPILE_CACHE.compiles - before == 1
        assert all(not event.compiled_in_worker
                   for event in session.events)

    def test_aggregated_report_matches_whole_design_run(self):
        case, src, ft, merged = case_setup()
        tasks = expand_tasks([merged], case.dut_module, FAST,
                             design="A2.fixed", group_size=2)
        reports = run_tasks(tasks, workers=2)
        whole = run_fv(ft, [src], FAST)
        assert verdicts(reports["A2.fixed"]) == verdicts(whole)


class TestSessionFailureHandling:
    def test_failed_task_surfaces_not_raises(self):
        from repro.api import PropertyTask
        case, src, ft, merged = case_setup()
        tasks = expand_tasks([merged], case.dut_module, FAST)
        broken = PropertyTask(
            task_id="broken", design="X", dut_module="not_a_module",
            sources=("module wrong; endmodule",), engine_config=FAST,
            properties=("nope",))
        session = VerificationSession([broken] + tasks[1:], workers=2)
        session.run_all()
        assert [event.task_id for event in session.failures] == ["broken"]
        assert session.failures[0].status == "error"

    def test_run_tasks_raises_on_failures(self):
        from repro.api import PropertyTask
        case, src, ft, merged = case_setup()
        bad = PropertyTask(task_id="t", design="d",
                           dut_module=case.dut_module,
                           sources=(merged,), engine_config=FAST,
                           properties=("ghost",))
        with pytest.raises(RuntimeError, match="task"):
            run_tasks([bad], workers=1)


class TestShimEquivalence:
    def test_run_fv_unchanged_shape_and_verdicts(self):
        """The legacy whole-design entry point must return the same
        CheckReport (verdicts, ordering, trace presence) it always did."""
        case, src, ft, merged = case_setup("A3")
        extra = [load(name) for name in case_by_id("A3").extra_files]
        report = run_fv(ft, [src] + extra, FAST)
        assert report.design == "mmu"
        assert report.proof_rate == 1.0
        second = run_fv(ft, [src] + extra, FAST)  # cache-hit path
        assert verdicts(report) == verdicts(second)

    def test_run_fv_keeps_traces(self):
        """Traces must survive the shim: the CLI renders CEX waveforms."""
        case, src, ft, merged = case_setup("A3")
        buggy_case = case_by_id("A3")
        bsrc = load(buggy_case.buggy_file)
        bft = generate_ft(bsrc, module_name=buggy_case.dut_module)
        extra = [load(name) for name in buggy_case.extra_files]
        report = run_fv(bft, [bsrc] + extra, FAST)
        assert report.cex_results
        assert all(r.trace is not None for r in report.cex_results)
