"""Tokenizer tests."""

import pytest

from repro.rtl.lexer import LexError, Lexer


def kinds_values(text):
    return [(t.kind, t.value) for t in Lexer(text).tokenize()[:-1]]


class TestBasics:
    def test_keywords_vs_ids(self):
        toks = kinds_values("module foo_1;")
        assert toks == [("keyword", "module"), ("id", "foo_1"),
                        ("punct", ";")]

    def test_line_comment_skipped(self):
        assert kinds_values("a // comment\n b") == [("id", "a"), ("id", "b")]

    def test_block_comment_skipped(self):
        assert kinds_values("a /* x\ny */ b") == [("id", "a"), ("id", "b")]

    def test_backtick_directive_skipped(self):
        assert kinds_values("`timescale 1ns/1ps\nwire") == \
            [("keyword", "wire")]

    def test_line_numbers(self):
        toks = Lexer("a\nb\n  c").tokenize()
        assert [t.line for t in toks[:-1]] == [1, 2, 3]

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            Lexer("\x01").tokenize()


class TestNumbers:
    def test_plain_decimal(self):
        assert kinds_values("42") == [("number", "42")]

    def test_underscores(self):
        assert kinds_values("1_000") == [("number", "1000")]

    def test_sized_binary(self):
        assert kinds_values("4'b1010") == [("number", "4'b1010")]

    def test_sized_hex_case(self):
        assert kinds_values("8'hFF") == [("number", "8'hFF")]

    def test_unsized_based(self):
        assert kinds_values("'d5") == [("number", "'d5")]

    def test_fill_literals(self):
        assert kinds_values("'0") == [("number", "'0")]
        assert kinds_values("'1") == [("number", "'1")]

    def test_signed_marker(self):
        assert kinds_values("4'sb10")[0][0] == "number"

    def test_bad_base(self):
        with pytest.raises(LexError):
            Lexer("4'q10").tokenize()


class TestOperators:
    def test_three_char_operators(self):
        assert kinds_values("a |-> b") == [("id", "a"), ("punct", "|->"),
                                           ("id", "b")]
        assert kinds_values("a |=> b")[1] == ("punct", "|=>")

    def test_two_char_before_one_char(self):
        assert kinds_values("a<=b") == [("id", "a"), ("punct", "<="),
                                        ("id", "b")]
        assert kinds_values("a<b")[1] == ("punct", "<")

    def test_delay_operator(self):
        assert kinds_values("##1 x")[0] == ("punct", "##")

    def test_system_functions(self):
        assert kinds_values("$stable(x)")[0] == ("system", "$stable")
        assert kinds_values("$past(x, 2)")[0] == ("system", "$past")

    def test_bare_dollar_rejected(self):
        with pytest.raises(LexError):
            Lexer("$ ").tokenize()

    def test_string_literal(self):
        assert kinds_values('"hello world"') == [("string", "hello world")]
