"""Tests for the `ifdef preprocessor and the constant evaluator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rtl.elaborate import ElabError, clog2, const_eval
from repro.rtl.parser import parse_expr_text
from repro.rtl.preprocess import strip_ifdefs


class TestStripIfdefs:
    def test_undefined_region_removed(self):
        text = "a\n`ifdef X\nb\n`endif\nc\n"
        assert strip_ifdefs(text) == "a\nc\n"

    def test_defined_region_kept(self):
        text = "a\n`ifdef X\nb\n`endif\nc\n"
        assert strip_ifdefs(text, ["X"]) == "a\nb\nc\n"

    def test_else_branches(self):
        text = "`ifdef X\nyes\n`else\nno\n`endif\n"
        assert strip_ifdefs(text, ["X"]) == "yes\n"
        assert strip_ifdefs(text) == "no\n"

    def test_ifndef(self):
        text = "`ifndef X\nformal\n`endif\n"
        assert strip_ifdefs(text) == "formal\n"
        assert strip_ifdefs(text, ["X"]) == ""

    def test_nesting(self):
        text = "`ifdef A\n1\n`ifdef B\n2\n`endif\n3\n`endif\n"
        assert strip_ifdefs(text, ["A"]) == "1\n3\n"
        assert strip_ifdefs(text, ["A", "B"]) == "1\n2\n3\n"
        assert strip_ifdefs(text) == ""

    def test_unbalanced_rejected(self):
        with pytest.raises(ValueError):
            strip_ifdefs("`ifdef X\n")
        with pytest.raises(ValueError):
            strip_ifdefs("`endif\n")
        with pytest.raises(ValueError):
            strip_ifdefs("`else\n")

    def test_directive_lines_always_dropped(self):
        out = strip_ifdefs("`ifdef X\n`endif\nrest\n", ["X"])
        assert out == "rest\n"


class TestClog2:
    @pytest.mark.parametrize("value,expected", [
        (0, 0), (1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4),
        (1024, 10), (1025, 11),
    ])
    def test_values(self, value, expected):
        assert clog2(value) == expected

    @given(st.integers(1, 1 << 20))
    @settings(max_examples=50, deadline=None)
    def test_defining_property(self, value):
        k = clog2(value)
        assert (1 << k) >= value
        if value > 1:
            assert (1 << (k - 1)) < value


class TestConstEval:
    PARAMS = {"W": 8, "D": 4}

    def eval_text(self, text):
        return const_eval(parse_expr_text(text), self.PARAMS)

    def test_arithmetic(self):
        assert self.eval_text("W - 1") == 7
        assert self.eval_text("W * D + 2") == 34
        assert self.eval_text("W / D") == 2
        assert self.eval_text("(W + D) % 5") == 2

    def test_comparisons_and_ternary(self):
        assert self.eval_text("W > D ? W : D") == 8
        assert self.eval_text("W == 8 && D == 4") == 1

    def test_clog2_call(self):
        assert self.eval_text("$clog2(D) + 1") == 3

    def test_shift(self):
        assert self.eval_text("1 << D") == 16

    def test_unknown_identifier(self):
        with pytest.raises(ElabError):
            self.eval_text("NOPE + 1")

    def test_non_constant_syscall(self):
        with pytest.raises(ElabError):
            self.eval_text("$past(W)")
