"""Synthesizer tests: RTL subset -> transition system semantics.

Each test synthesizes a small design and checks behaviour through the
formal engine (BMC as an oracle for sequential semantics).
"""

import pytest

from repro.formal import EngineConfig, FormalEngine, Unroller, bmc_cover, bmc_safety
from repro.rtl.synth import SynthError, Synthesizer, synthesize
from repro.rtl.parser import parse_design


def reaches(src, top, cover_expr_signal, depth=10, **kw):
    """Synthesize with a cover on a named 1-bit signal; BMC it."""
    ts = synthesize(src, top, **kw)
    bits = ts.observables[cover_expr_signal]
    result = bmc_cover(ts, bits[0], depth)
    return result


class TestCombinational:
    def test_assign_chain(self):
        ts = synthesize("""
            module m (input wire a, output wire y);
              wire b = !a;
              wire c = !b;
              assign y = c;
            endmodule""", "m")
        a_bits = ts.observables["a"]
        b_bits = ts.observables["b"]
        for val in (False, True):
            assert ts.aig.eval_literal(b_bits[0], {a_bits[0]: val}) == (not val)
        # y folds back to a structurally and is deduped from the observables
        assert "y" not in ts.observables

    def test_arith_width_extension(self):
        ts = synthesize("""
            module m (input wire [2:0] a, output wire [3:0] y);
              assign y = a + 1;
            endmodule""", "m")
        a = ts.observables["a"]
        y = ts.observables["y"]
        env = {bit: bool((5 >> i) & 1) for i, bit in enumerate(a)}
        val = sum(1 << i for i, b in enumerate(y)
                  if ts.aig.eval_literal(b, env))
        assert val == 6

    def test_always_comb_with_default(self):
        ts = synthesize("""
            module m (input wire s, input wire [1:0] a, output wire [1:0] y);
              reg [1:0] r;
              always_comb begin
                r = 2'd0;
                if (s) r = a;
              end
              assign y = r;
            endmodule""", "m")
        s = ts.observables["s"][0]
        a = ts.observables["a"]
        y = ts.observables["y"]
        env = {s: True, a[0]: True, a[1]: True}
        assert ts.aig.eval_literal(y[1], env) is True
        env[s] = False
        assert ts.aig.eval_literal(y[1], env) is False

    def test_latch_inference_rejected(self):
        with pytest.raises(SynthError, match="latch inferred"):
            synthesize("""
                module m (input wire s, input wire a, output wire y);
                  reg r;
                  always_comb begin
                    if (s) r = a;
                  end
                  assign y = r;
                endmodule""", "m")

    def test_combinational_loop_rejected(self):
        with pytest.raises(SynthError, match="loop"):
            synthesize("""
                module m (output wire y);
                  wire a = !b;
                  wire b = !a;
                  assign y = a;
                endmodule""", "m")

    def test_multiple_drivers_rejected(self):
        with pytest.raises(SynthError, match="multiple drivers"):
            synthesize("""
                module m (input wire a, output wire y);
                  assign y = a;
                  assign y = !a;
                endmodule""", "m")

    def test_case_lowering(self):
        ts = synthesize("""
            module m (input wire [1:0] s, output wire [1:0] y);
              reg [1:0] r;
              always_comb begin
                case (s)
                  2'd0: r = 2'd3;
                  2'd1, 2'd2: r = 2'd1;
                  default: r = 2'd0;
                endcase
              end
              assign y = r;
            endmodule""", "m")
        s = ts.observables["s"]
        y = ts.observables["y"]

        def value(sv):
            env = {s[0]: bool(sv & 1), s[1]: bool(sv & 2)}
            return sum(1 << i for i, b in enumerate(y)
                       if ts.aig.eval_literal(b, env))
        assert [value(i) for i in range(4)] == [3, 1, 1, 0]


class TestSequential:
    COUNTER = """
        module m (input wire clk_i, input wire rst_ni, input wire en,
                  output wire [2:0] cnt_o);
          reg [2:0] cnt;
          always_ff @(posedge clk_i or negedge rst_ni) begin
            if (!rst_ni) cnt <= 3'd0;
            else if (en) cnt <= cnt + 3'd1;
          end
          assign cnt_o = cnt;
        endmodule"""

    def test_reset_gives_initial_value(self):
        ts = synthesize(self.COUNTER, "m")
        latch_names = [lat.name for lat in ts.latches]
        assert "cnt[0]" in latch_names
        assert all(lat.init is False for lat in ts.latches)

    def test_counter_reaches_value(self):
        ts = synthesize(self.COUNTER, "m")
        g = ts.aig
        cnt = ts.observables["cnt_o"]
        at5 = g.eq_vec(cnt, g.const_vec(5, 3))
        result = bmc_cover(ts, at5, 10)
        assert result.failed and result.depth == 5  # needs en every cycle

    def test_hold_when_disabled(self):
        ts = synthesize(self.COUNTER, "m")
        g = ts.aig
        en = ts.observables["en"][0]
        cnt = ts.observables["cnt_o"]
        # constraint: en never -> cnt stays 0
        ts.add_constraint("never_en", g.NOT(en))
        nonzero = g.or_many(cnt)
        assert not bmc_cover(ts, nonzero, 8).failed

    def test_reset_tied_inactive(self):
        ts = synthesize(self.COUNTER, "m")
        rst = ts.observables["rst_ni"]
        assert ts.aig.eval_literal(rst[0], {}) is True  # constant 1

    def test_nonblocking_reads_old_value(self):
        # swap registers: classic nonblocking semantics check
        ts = synthesize("""
            module m (input wire clk_i, input wire rst_ni,
                      output wire a_o, output wire b_o);
              reg a, b;
              always_ff @(posedge clk_i or negedge rst_ni) begin
                if (!rst_ni) begin
                  a <= 1'b0;
                  b <= 1'b1;
                end else begin
                  a <= b;
                  b <= a;
                end
              end
              assign a_o = a;
              assign b_o = b;
            endmodule""", "m")
        g = ts.aig
        a = ts.observables["a_o"][0]
        b = ts.observables["b_o"][0]
        # a and b keep swapping: a^b always 1
        result = bmc_safety(ts, g.XOR(a, b), 10, "always_differ")
        assert not result.failed

    def test_array_registers(self):
        ts = synthesize("""
            module m (input wire clk_i, input wire rst_ni,
                      input wire wen, input wire widx,
                      input wire [1:0] wdata, input wire ridx,
                      output wire [1:0] rdata);
              reg [1:0] mem [0:1];
              always_ff @(posedge clk_i or negedge rst_ni) begin
                if (!rst_ni) begin
                  mem[0] <= 2'd0;
                  mem[1] <= 2'd0;
                end else begin
                  if (wen)
                    mem[widx] <= wdata;
                end
              end
              assign rdata = mem[ridx];
            endmodule""", "m")
        g = ts.aig
        rdata = ts.observables["rdata"]
        at3 = g.eq_vec(rdata, g.const_vec(3, 2))
        assert bmc_cover(ts, at3, 4).failed  # write 3 then read it


class TestHierarchy:
    def test_instance_connection(self):
        src = """
            module inv (input wire x, output wire y);
              assign y = !x;
            endmodule
            module m (input wire a, output wire out);
              wire mid;
              inv u1 (.x(a), .y(mid));
              inv u2 (.x(mid), .y(out));
            endmodule"""
        ts = synthesize(src, "m")
        a = ts.observables["a"][0]
        # The double inversion folds structurally: `out` aliases `a` in the
        # AIG, so the dedup keeps only the first name.  Check the alias via
        # the instance-internal signal instead.
        mid = ts.observables["mid"][0]
        assert ts.aig.eval_literal(mid, {a: True}) is False
        assert "out" not in ts.observables  # aliased away by dedup

    def test_parameter_override(self):
        src = """
            module wide #(parameter W = 2)(input wire [W-1:0] x,
                                           output wire [W-1:0] y);
              assign y = ~x;
            endmodule
            module m (input wire [3:0] a, output wire [3:0] out);
              wide #(.W(4)) u (.x(a), .y(out));
            endmodule"""
        ts = synthesize(src, "m")
        assert len(ts.observables["out"]) == 4

    def test_bind_attaches_checker(self):
        src = """
            module dut (input wire clk_i, input wire rst_ni, input wire a);
              reg q;
              always_ff @(posedge clk_i or negedge rst_ni) begin
                if (!rst_ni) q <= 1'b0;
                else q <= a;
              end
            endmodule
            module chk (input wire clk_i, input wire rst_ni, input wire a);
              as__never_a: assert property (@(posedge clk_i)
                  disable iff (!rst_ni) !a);
            endmodule
            bind dut chk u_chk (.*);"""
        ts = synthesize(src, "dut")
        assert len(ts.asserts) == 1
        assert ts.asserts[0].name == "u_chk.as__never_a"
        result = bmc_safety(ts, ts.asserts[0].lit, 5)
        assert result.failed  # 'a' is free, so !a is violable

    def test_unknown_parameter_override(self):
        src = """
            module sub (input wire x); endmodule
            module m (input wire a);
              sub #(.NOPE(1)) u (.x(a));
            endmodule"""
        with pytest.raises(SynthError, match="unknown parameter"):
            synthesize(src, "m")


class TestProperties:
    def test_past_and_stable(self):
        src = """
            module m (input wire clk_i, input wire rst_ni, input wire a);
              reg a_q;
              always_ff @(posedge clk_i or negedge rst_ni) begin
                if (!rst_ni) a_q <= 1'b0;
                else a_q <= a;
              end
              as__past: assert property (@(posedge clk_i)
                  disable iff (!rst_ni) a_q == $past(a));
            endmodule"""
        ts = synthesize(src, "m")
        assert not bmc_safety(ts, ts.asserts[0].lit, 8).failed

    def test_implication_next_cycle(self):
        src = """
            module m (input wire clk_i, input wire rst_ni, input wire a,
                      output wire b);
              reg q;
              always_ff @(posedge clk_i or negedge rst_ni) begin
                if (!rst_ni) q <= 1'b0;
                else q <= a;
              end
              assign b = q;
              as__follow: assert property (@(posedge clk_i)
                  disable iff (!rst_ni) a |=> b);
            endmodule"""
        ts = synthesize(src, "m")
        assert not bmc_safety(ts, ts.asserts[0].lit, 8).failed

    def test_liveness_compiles_to_justice(self):
        src = """
            module m (input wire clk_i, input wire rst_ni, input wire a,
                      input wire b);
              as__ev: assert property (@(posedge clk_i)
                  disable iff (!rst_ni) a |-> s_eventually b);
            endmodule"""
        ts = synthesize(src, "m")
        assert len(ts.liveness) == 1 and not ts.asserts

    def test_assume_becomes_constraint(self):
        # The dummy flop makes rst_ni a recognized (tied-off) reset; without
        # any register the reset stays a free input and `disable iff` can
        # legitimately disable the assumption.
        src = """
            module m (input wire clk_i, input wire rst_ni, input wire a);
              reg q;
              always_ff @(posedge clk_i or negedge rst_ni) begin
                if (!rst_ni) q <= 1'b0;
                else q <= a;
              end
              am__never: assume property (@(posedge clk_i)
                  disable iff (!rst_ni) !a);
              co__a: cover property (@(posedge clk_i) a);
            endmodule"""
        ts = synthesize(src, "m")
        assert len(ts.constraints) == 1
        # the assume forbids a: cover must be unreachable
        assert not bmc_cover(ts, ts.covers[0].lit, 6).failed

    def test_initstate(self):
        src = """
            module m (input wire clk_i, input wire rst_ni, input wire a);
              co__first: cover property (@(posedge clk_i) $initstate);
            endmodule"""
        ts = synthesize(src, "m")
        result = bmc_cover(ts, ts.covers[0].lit, 4)
        assert result.failed and result.depth == 0

    def test_delay_guard(self):
        src = """
            module m (input wire clk_i, input wire rst_ni, input wire a);
              am__st: assume property (@(posedge clk_i)
                  disable iff (!rst_ni) ##1 $stable(a));
              co__a1: cover property (@(posedge clk_i) a);
              co__a0: cover property (@(posedge clk_i) !a);
            endmodule"""
        ts = synthesize(src, "m")
        # 'a' is rigid after cycle 0: both covers still reachable (choose at
        # cycle 0), demonstrating the ##1 exemption for the first cycle.
        assert bmc_cover(ts, ts.covers[0].lit, 3).failed
        assert bmc_cover(ts, ts.covers[1].lit, 3).failed

    def test_undriven_wire_is_symbolic(self):
        src = """
            module m (input wire clk_i, input wire rst_ni);
              wire [1:0] symb;
              co__s3: cover property (@(posedge clk_i) symb == 2'd3);
            endmodule"""
        synth = Synthesizer(parse_design(src), "m")
        ts = synth.build()
        assert any("symb" in w for w in synth.warnings)
        assert bmc_cover(ts, ts.covers[0].lit, 2).failed
