"""Parser tests for the SystemVerilog subset."""

import pytest

from repro.rtl import ast
from repro.rtl.parser import ParseError, parse_design, parse_expr_text
from repro.rtl.render import render_expr


class TestModules:
    def test_empty_module(self):
        design = parse_design("module m; endmodule")
        assert design.modules[0].name == "m"
        assert design.modules[0].ports == []

    def test_ansi_ports(self):
        design = parse_design("""
            module m (
              input  wire clk,
              input  wire [7:0] data_i,
              output reg  [3:0] out_o,
              output wire flag_o
            ); endmodule""")
        ports = design.modules[0].ports
        assert [(p.direction, p.name) for p in ports] == [
            ("input", "clk"), ("input", "data_i"),
            ("output", "out_o"), ("output", "flag_o")]
        assert ports[1].packed is not None
        assert ports[3].packed is None

    def test_port_direction_carries_over(self):
        design = parse_design("module m (input wire a, b); endmodule")
        ports = design.modules[0].ports
        assert [p.direction for p in ports] == ["input", "input"]

    def test_parameters(self):
        design = parse_design("""
            module m #(parameter W = 8, parameter D = W*2)();
              localparam HALF = W/2;
            endmodule""")
        params = design.modules[0].params
        assert [p.name for p in params] == ["W", "D", "HALF"]
        assert params[2].is_local

    def test_multiple_modules(self):
        design = parse_design("module a; endmodule module b; endmodule")
        assert [m.name for m in design.modules] == ["a", "b"]
        with pytest.raises(KeyError):
            design.module("c")

    def test_net_declarations(self):
        design = parse_design("""
            module m;
              wire [3:0] a;
              reg b, c;
              wire d = b && c;
              reg [7:0] mem [0:3];
            endmodule""")
        nets = design.modules[0].nets
        assert [n.name for n in nets] == ["a", "b", "c", "d", "mem"]
        assert nets[3].init is not None
        assert nets[4].unpacked is not None


class TestStatements:
    def test_always_ff_with_reset(self):
        design = parse_design("""
            module m (input wire clk_i, input wire rst_ni);
              reg q;
              always_ff @(posedge clk_i or negedge rst_ni) begin
                if (!rst_ni) q <= 1'b0;
                else q <= !q;
              end
            endmodule""")
        block = design.modules[0].always_ffs[0]
        assert block.clock == "clk_i"
        assert block.reset_name == "rst_ni"
        assert block.reset_active_low

    def test_always_comb_star(self):
        design = parse_design("""
            module m; reg a; reg b;
              always @(*) begin a = b; end
              always_comb a = !b;
            endmodule""")
        assert len(design.modules[0].always_combs) == 2

    def test_case_statement(self):
        design = parse_design("""
            module m; reg [1:0] s; reg o;
              always_comb begin
                case (s)
                  2'd0, 2'd1: o = 1'b0;
                  2'd2: o = 1'b1;
                  default: o = 1'b0;
                endcase
              end
            endmodule""")
        case = design.modules[0].always_combs[0].body.stmts[0]
        assert isinstance(case, ast.Case)
        assert len(case.items) == 3
        assert case.items[0].labels and len(case.items[0].labels) == 2
        assert case.items[2].labels == []

    def test_instance_named_connections(self):
        design = parse_design("""
            module m; wire a; wire b;
              sub #(.W(4)) u_sub (.x(a), .y(b), .z());
            endmodule""")
        inst = design.modules[0].instances[0]
        assert inst.module_name == "sub"
        assert inst.param_overrides[0][0] == "W"
        assert inst.connections[2] == ("z", None)

    def test_instance_dot_star(self):
        design = parse_design("module m; sub u (.*); endmodule")
        assert design.modules[0].instances[0].connections == [("*", None)]

    def test_bind_directive(self):
        design = parse_design("bind dut checker u_chk (.*);")
        bind = design.binds[0]
        assert (bind.target_module, bind.checker_module) == ("dut", "checker")


class TestAssertions:
    SRC = """
        module m (input wire clk_i, input wire rst_ni, input wire a,
                  input wire b);
          lbl: assert property (@(posedge clk_i) disable iff (!rst_ni)
              a |-> s_eventually b);
          am__x: assume property (@(posedge clk_i) ##1 $stable(a));
          co__y: cover property (@(posedge clk_i) a && b);
        endmodule"""

    def test_assertion_parse(self):
        module = parse_design(self.SRC).modules[0]
        asserts = module.assertions
        assert [a.directive for a in asserts] == ["assert", "assume", "cover"]
        assert asserts[0].label == "lbl"
        assert asserts[0].clock == "clk_i"
        assert asserts[0].disable_iff is not None
        prop = asserts[0].prop
        assert isinstance(prop, ast.Implication)
        assert isinstance(prop.consequent, ast.SEventually)

    def test_delay_prefix(self):
        module = parse_design(self.SRC).modules[0]
        delayed = module.assertions[1].prop
        assert isinstance(delayed, ast.Delay)
        assert delayed.cycles == 1
        assert isinstance(delayed.expr, ast.SysCall)


class TestExpressions:
    def test_precedence(self):
        expr = parse_expr_text("a || b && c")
        assert isinstance(expr, ast.Binary) and expr.op == "||"
        assert isinstance(expr.rhs, ast.Binary) and expr.rhs.op == "&&"

    def test_comparison_binds_tighter_than_logical(self):
        expr = parse_expr_text("a == b && c == d")
        assert expr.op == "&&"
        assert expr.lhs.op == "=="

    def test_ternary(self):
        expr = parse_expr_text("sel ? a + 1 : b - 1")
        assert isinstance(expr, ast.Ternary)

    def test_concat_and_replication(self):
        concat = parse_expr_text("{a, b, 2'b01}")
        assert isinstance(concat, ast.Concat) and len(concat.parts) == 3
        repl = parse_expr_text("{4{x}}")
        assert isinstance(repl, ast.Repl)

    def test_slices_and_indexing(self):
        expr = parse_expr_text("x[7:4]")
        assert isinstance(expr, ast.RangeSelect)
        expr = parse_expr_text("mem[idx][3]")
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.base, ast.Index)

    def test_dotted_and_scoped_names(self):
        # Paper Fig. 3 / Fig. 7 use struct members and package scopes.
        expr = parse_expr_text("fu_data_i.trans_id")
        assert isinstance(expr, ast.Id) and expr.name == "fu_data_i.trans_id"
        expr = parse_expr_text("riscv::VLEN - 1")
        assert expr.lhs.name == "riscv::VLEN"

    def test_fig3_expressions_parse(self):
        parse_expr_text("lsu_valid_i && fu_data_i.fu == LOAD")
        parse_expr_text("{fu_data_i.trans_id, fu_data_i.fu}")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expr_text("a + b c")

    def test_unary_operators(self):
        for op in ("!", "~", "&", "|", "^", "-"):
            expr = parse_expr_text(f"{op}x")
            assert isinstance(expr, ast.Unary) and expr.op == op

    def test_number_forms(self):
        assert parse_expr_text("4'b1010").value == 10
        assert parse_expr_text("8'hff").value == 255
        assert parse_expr_text("'0").is_fill
        assert parse_expr_text("16'd123").width == 16


class TestRenderRoundTrip:
    CASES = [
        "a && b || c",
        "x + 1",
        "(a | b) & c",
        "sel ? a : b",
        "{a, b}",
        "{2{x}}",
        "x[3:0]",
        "mem[i]",
        "$stable(x)",
        "!(a == b)",
        "a - b - c",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_parse_render_parse_fixpoint(self, text):
        first = parse_expr_text(text)
        rendered = render_expr(first)
        second = parse_expr_text(rendered)
        assert render_expr(second) == rendered
