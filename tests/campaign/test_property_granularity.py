"""Property-granularity campaign tests — the PR's acceptance criterion:
sharding a design across >=2 workers, exactly one compile per design ×
variant (via the compile-cache counter), verdict-identical reports."""

import dataclasses

import pytest

from repro.api import COMPILE_CACHE
from repro.campaign import (ArtifactCache, expand_jobs, merge_shard_results,
                            run_campaign, run_property_campaign, shard_jobs)
from repro.core.cli import main as cli_main
from repro.formal import EngineConfig

FAST = EngineConfig(max_bound=6, max_frames=25)


def _strip_timing(results):
    out = []
    for result in results:
        payload = dict(result.payload or {})
        payload.pop("engine_time_s", None)
        payload.pop("solve_time_s", None)
        payload.pop("solver", None)
        out.append((result.job_id, result.status, result.error, payload))
    return out


class TestShardPlan:
    def test_one_compile_per_design_variant(self):
        jobs = expand_jobs(case_ids=["A3"], config=FAST)  # fixed + buggy
        COMPILE_CACHE.clear()
        before = COMPILE_CACHE.compiles
        plan = shard_jobs(jobs)
        assert COMPILE_CACHE.compiles - before == 2
        assert len(plan.tasks) > len(jobs)  # genuinely sharded
        # Re-sharding the same jobs is compile-free.
        shard_jobs(jobs)
        assert COMPILE_CACHE.compiles - before == 2

    def test_group_size_reduces_task_count(self):
        jobs = expand_jobs(case_ids=["A2"], config=FAST)
        singles = shard_jobs(jobs, group_size=1)
        pairs = shard_jobs(jobs, group_size=2)
        assert len(pairs.tasks) < len(singles.tasks)
        singles_props = [p for t in singles.tasks for p in t.properties]
        pairs_props = [p for t in pairs.tasks for p in t.properties]
        assert singles_props == pairs_props  # same inventory, same order

    def test_broken_job_isolated_in_plan(self):
        jobs = expand_jobs(case_ids=["A2"], config=FAST)
        broken = dataclasses.replace(jobs[0], job_id="broken",
                                     dut_file="ariane/missing.sv")
        plan = shard_jobs([broken] + jobs)
        assert plan.shards[0].expand_error is not None
        assert plan.shards[0].task_ids == []
        results = merge_shard_results(plan, [])
        assert results[0].status == "error"
        assert "missing" in results[0].error


class TestAcceptanceCriterion:
    def test_sharded_run_matches_design_granularity(self):
        """One design's property set across 2 workers: one compile per
        design x variant, verdicts identical to the design-granularity
        campaign."""
        jobs = expand_jobs(case_ids=["A2"], config=FAST)
        COMPILE_CACHE.clear()
        before = COMPILE_CACHE.compiles
        sharded = run_property_campaign(jobs, workers=2)
        assert COMPILE_CACHE.compiles - before == len(jobs)
        whole = run_campaign(jobs, workers=2)
        assert _strip_timing(sharded) == _strip_timing(whole)

    def test_worker_count_does_not_change_results(self):
        jobs = expand_jobs(case_ids=["A2", "E10"], config=FAST)
        serial = run_property_campaign(jobs, workers=1)
        parallel = run_property_campaign(jobs, workers=4)
        assert _strip_timing(serial) == _strip_timing(parallel)
        assert [r.job_id for r in serial] == [j.job_id for j in jobs]

    def test_cli_property_granularity_smoke(self, tmp_path, capsys):
        json_out = tmp_path / "prop.json"
        rc = cli_main(["campaign", "--cases", "A2", "--workers", "2",
                       "--granularity", "property",
                       "--json", str(json_out)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "property tasks" in out
        assert "A2.fixed/p" in out        # per-property progress lines
        assert "100% liveness/safety properties proof" in out
        assert json_out.exists()

    def test_cli_bad_group_size_exits_1(self, capsys):
        assert cli_main(["campaign", "--cases", "A2",
                         "--granularity", "property",
                         "--group-size", "0"]) == 1
        capsys.readouterr()


class TestPropertyTaskCaching:
    def test_second_sharded_run_is_cached(self, tmp_path):
        jobs = expand_jobs(case_ids=["A2"], config=FAST)
        cache = ArtifactCache(tmp_path)
        first = run_property_campaign(jobs, workers=2, cache=cache)
        assert not any(r.from_cache for r in first)
        second = run_property_campaign(jobs, workers=2, cache=cache)
        assert all(r.from_cache for r in second)
        assert _strip_timing(first) == _strip_timing(second)

    def test_task_and_job_cache_entries_do_not_collide(self, tmp_path):
        jobs = expand_jobs(case_ids=["A2"], config=FAST)
        cache = ArtifactCache(tmp_path)
        run_campaign(jobs, workers=1, cache=cache)
        design_entries = cache.stats()["entries"]
        run_property_campaign(jobs, workers=1, cache=cache)
        # Property tasks key differently (they include the group names).
        assert cache.stats()["entries"] > design_entries
