"""Job expansion and report aggregation tests (no engine runs needed)."""

import json

import pytest

from repro.campaign import (CampaignJob, CampaignReport, JobResult,
                            default_engine_config, expand_jobs)
from repro.designs import CORPUS
from repro.formal import EngineConfig


class TestExpandJobs:
    def test_full_corpus_expansion(self):
        jobs = expand_jobs()
        ids = [j.job_id for j in jobs]
        assert len(ids) == len(set(ids))
        # every case yields a fixed job; only cases with a buggy file a
        # buggy one
        for case in CORPUS:
            assert f"{case.case_id}.fixed" in ids
            assert (f"{case.case_id}.buggy" in ids) == bool(case.buggy_file)

    def test_variant_filter(self):
        jobs = expand_jobs(variants=("buggy",))
        assert jobs and all(j.variant == "buggy" for j in jobs)

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            expand_jobs(variants=("fixed", "zz"))

    def test_config_sweep_gets_distinct_ids(self):
        configs = [EngineConfig(max_bound=4), EngineConfig(max_bound=8)]
        jobs = expand_jobs(case_ids=["A2"], variants=("fixed",),
                           configs=configs)
        assert [j.job_id for j in jobs] == ["A2.fixed.cfg0", "A2.fixed.cfg1"]
        assert jobs[0].engine_config.max_bound == 4
        assert jobs[1].engine_config.max_bound == 8

    def test_expectations_carried(self):
        jobs = {j.job_id: j for j in expand_jobs(case_ids=["A3"])}
        assert jobs["A3.fixed"].expect_proof is True
        assert jobs["A3.buggy"].expect_cex == "had_a_request"


def _job(job_id, case_id="A9", variant="fixed", name="Synthetic", **kw):
    return CampaignJob(
        job_id=job_id, case_id=case_id, case_name=name, dut_module="m",
        variant=variant, dut_file="x.sv", extra_files=(),
        engine_config=default_engine_config(), **kw)


def _payload(proof_rate, cex=(), props=3):
    return {
        "design": "m", "proof_rate": proof_rate, "num_properties": props,
        "num_proven": props - len(cex), "num_cex": len(cex),
        "cex": [{"name": f"u_m_sva.as__{n}", "depth": d} for n, d in cex],
        "properties": [], "annotation_loc": 2, "property_count": props,
        "engine_time_s": 0.5,
    }


class TestCampaignReport:
    def _bug_campaign(self):
        jobs = [_job("A9.fixed"), _job("A9.buggy", variant="buggy")]
        results = [
            JobResult("A9.fixed", "ok", _payload(1.0), wall_time_s=1.0),
            JobResult("A9.buggy", "ok",
                      _payload(0.5, cex=[("t_eventual_response", 4)]),
                      wall_time_s=2.0),
        ]
        return CampaignReport(jobs, results, workers=2, wall_time_s=2.5)

    def test_bug_found_and_fixed_row(self):
        rows = self._bug_campaign().rows()
        assert len(rows) == 1
        row = rows[0]
        assert row.outcome == \
            "Bug found (t_eventual_response) and fixed -> 100% proof"
        assert row.fixed_proof_rate == 1.0
        assert row.buggy_proof_rate == 0.5
        assert row.cex_depths == [4]
        assert row.time_s == pytest.approx(3.0)

    def test_partial_proof_row(self):
        jobs = [_job("O9.fixed", case_id="O9")]
        results = [JobResult("O9.fixed", "ok",
                             _payload(0.6, cex=[("miss_hsk", 2)]))]
        row = CampaignReport(jobs, results).rows()[0]
        assert row.outcome.startswith("partial proof")

    def test_error_surfaces_in_row(self):
        jobs = [_job("A9.fixed")]
        results = [JobResult("A9.fixed", "error", error="boom")]
        report = CampaignReport(jobs, results)
        row = report.rows()[0]
        assert row.outcome == "campaign error"
        assert report.num_failed == 1

    def test_json_roundtrip(self):
        report = self._bug_campaign()
        data = json.loads(report.to_json())
        assert data["totals"]["jobs"] == 2
        assert data["rows"][0]["case_id"] == "A9"
        assert len(data["results"]) == 2

    def test_markdown_has_all_rows(self):
        text = self._bug_campaign().to_markdown()
        assert "| A9. Synthetic |" in text
        assert "2 jobs" in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CampaignReport([_job("a")], [])

    def test_result_lookup(self):
        report = self._bug_campaign()
        assert report.result("A9.buggy").wall_time_s == 2.0
        with pytest.raises(KeyError):
            report.result("nope")

    def test_unreproduced_bug_is_never_claimed(self):
        # A shallow bound can leave the buggy variant clean; the report
        # must say so instead of printing "Bug found ()".
        jobs = [_job("A9.fixed"), _job("A9.buggy", variant="buggy")]
        results = [JobResult("A9.fixed", "ok", _payload(1.0)),
                   JobResult("A9.buggy", "ok", _payload(1.0))]
        row = CampaignReport(jobs, results).rows()[0]
        assert "NOT reproduced" in row.outcome
        assert "Bug found" not in row.outcome

    def test_expectation_mismatches_flagged(self):
        jobs = [_job("A9.fixed", expect_proof=True),
                _job("A9.buggy", variant="buggy",
                     expect_cex="eventual_response")]
        results = [JobResult("A9.fixed", "ok", _payload(0.5)),
                   JobResult("A9.buggy", "ok", _payload(1.0))]
        report = CampaignReport(jobs, results)
        row = report.rows()[0]
        assert any("expected 100% proof" in m for m in row.mismatches)
        assert any("eventual_response" in m for m in row.mismatches)
        assert "expectation:" in report.summary()

    def test_met_expectations_not_flagged(self):
        jobs = [_job("A9.buggy", variant="buggy",
                     expect_cex="t_eventual_response")]
        results = [JobResult("A9.buggy", "ok",
                             _payload(0.5,
                                      cex=[("t_eventual_response", 3)]))]
        assert CampaignReport(jobs, results).rows()[0].mismatches == []

    def test_totals_count_each_case_once_under_config_sweep(self):
        jobs = [_job("A9.fixed.cfg0"), _job("A9.fixed.cfg1")]
        results = [JobResult(j.job_id, "ok", _payload(1.0)) for j in jobs]
        totals = CampaignReport(jobs, results).totals()
        assert totals["properties"] == 3      # not 6: same FT, two configs
        assert totals["annotation_loc"] == 2  # not 4

    def test_sweep_rows_keep_primary_config_headline(self):
        # The first (primary) config owns the row's proof rate; a later,
        # shallower config must not silently overwrite it.
        jobs = [_job("A9.fixed.cfg0"), _job("A9.fixed.cfg1")]
        results = [JobResult("A9.fixed.cfg0", "ok", _payload(1.0)),
                   JobResult("A9.fixed.cfg1", "ok",
                             _payload(0.5, cex=[("t_hsk", 2)]))]
        row = CampaignReport(jobs, results).rows()[0]
        assert row.fixed_proof_rate == 1.0
        assert "fixed:t_hsk" in row.cex_properties  # cfg1 still visible
