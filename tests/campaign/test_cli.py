"""Campaign CLI contract tests: exit codes and report files."""

import json

from repro.core.cli import main as cli_main


class TestCampaignCli:
    def test_smoke_campaign_writes_reports(self, tmp_path, capsys):
        json_out = tmp_path / "t3.json"
        md_out = tmp_path / "t3.md"
        rc = cli_main(["campaign", "--cases", "A2", "--workers", "2",
                       "--json", str(json_out),
                       "--markdown", str(md_out)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "100% liveness/safety properties proof" in out
        data = json.loads(json_out.read_text())
        assert data["totals"]["ok"] == 1
        assert "| A2." in md_out.read_text()

    def test_usage_errors_exit_1(self, capsys):
        # Both semantic and argparse-level usage errors keep the
        # documented contract: 1 = bad usage, 2 = failed jobs.
        assert cli_main(["campaign", "--cases", "ZZ"]) == 1
        assert cli_main(["campaign", "--workers", "0"]) == 1
        assert cli_main(["campaign", "--workers", "abc"]) == 1
        assert cli_main(["campaign", "--timeout", "-5"]) == 1
        capsys.readouterr()

    def test_help_exits_0(self, capsys):
        assert cli_main(["campaign", "--help"]) == 0
        assert "--cache-dir" in capsys.readouterr().out

    def test_failed_job_exits_2(self, capsys):
        rc = cli_main(["campaign", "--cases", "A2", "--variants", "fixed",
                       "--timeout", "0.01"])
        assert rc == 2
        assert "timeout" in capsys.readouterr().out
