"""Campaign CLI contract tests: exit codes and report files."""

import json

import pytest

from repro.core.cli import main as cli_main


class TestCampaignCli:
    def test_smoke_campaign_writes_reports(self, tmp_path, capsys):
        json_out = tmp_path / "t3.json"
        md_out = tmp_path / "t3.md"
        rc = cli_main(["campaign", "--cases", "A2", "--workers", "2",
                       "--json", str(json_out),
                       "--markdown", str(md_out)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "100% liveness/safety properties proof" in out
        data = json.loads(json_out.read_text())
        assert data["totals"]["ok"] == 1
        assert "| A2." in md_out.read_text()

    def test_obs_flags_write_artifacts(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        record = tmp_path / "record.json"
        rc = cli_main(["campaign", "--cases", "A2", "--workers", "2",
                       "--granularity", "property",
                       "--trace", str(trace),
                       "--trace-jsonl", str(jsonl),
                       "--metrics",
                       "--execution-record", str(record)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Phases: frontend" in out
        assert "Metrics:" in out
        assert "task.executed" in out
        doc = json.loads(trace.read_text())
        assert {e["ph"] for e in doc["traceEvents"]} >= {"M", "X"}
        assert jsonl.read_text().count("\n") > 0
        from repro.obs.record import validate_record
        data = json.loads(record.read_text())
        validate_record(data)
        assert data["config"]["granularity"] == "property"
        assert data["span_count"] > 0
        # Tracing is per-run: a later untraced campaign stays clean.
        from repro.obs import TRACER
        assert not TRACER.enabled

    def test_report_json_carries_phases(self, tmp_path, capsys):
        json_out = tmp_path / "report.json"
        rc = cli_main(["campaign", "--cases", "A2", "--workers", "1",
                       "--granularity", "property",
                       "--json", str(json_out)])
        assert rc == 0
        capsys.readouterr()
        data = json.loads(json_out.read_text())
        phases = data["phases"]
        assert set(phases) == {"frontend_s", "solve_s", "engine_other_s",
                               "overhead_s", "wall_s"}
        assert phases["solve_s"] > 0
        # 1-worker runs are additive: phases account for the wall time.
        total = (phases["frontend_s"] + phases["solve_s"]
                 + phases["engine_other_s"] + phases["overhead_s"])
        assert total == pytest.approx(phases["wall_s"], abs=0.05)

    def test_usage_errors_exit_1(self, capsys):
        # Both semantic and argparse-level usage errors keep the
        # documented contract: 1 = bad usage, 2 = failed jobs.
        assert cli_main(["campaign", "--cases", "ZZ"]) == 1
        assert cli_main(["campaign", "--workers", "0"]) == 1
        assert cli_main(["campaign", "--workers", "abc"]) == 1
        assert cli_main(["campaign", "--timeout", "-5"]) == 1
        assert cli_main(["campaign", "--listen", "nocolon",
                         "--transport", "tcp"]) == 1
        assert cli_main(["campaign", "--spawn-workers", "-1"]) == 1
        assert cli_main(["campaign", "--min-workers", "0"]) == 1
        capsys.readouterr()

    def test_help_exits_0(self, capsys):
        assert cli_main(["campaign", "--help"]) == 0
        assert "--cache-dir" in capsys.readouterr().out

    def test_failed_job_exits_2(self, capsys):
        rc = cli_main(["campaign", "--cases", "A2", "--variants", "fixed",
                       "--timeout", "0.01"])
        assert rc == 2
        assert "timeout" in capsys.readouterr().out


class TestWorkersAuto:
    """``--workers auto`` (and worker ``--slots auto``) = CPU count."""

    def test_auto_resolves_to_cpu_count(self, monkeypatch):
        import os

        from repro.campaign import resolve_worker_count

        monkeypatch.setattr(os, "cpu_count", lambda: 6)
        assert resolve_worker_count("auto") == 6
        assert resolve_worker_count("AUTO") == 6
        assert resolve_worker_count("3") == 3
        assert resolve_worker_count(4) == 4

    def test_invalid_values_rejected(self):
        import pytest

        from repro.campaign import resolve_worker_count

        for bad in ("0", "-2", "many", 0, None, 1.5):
            with pytest.raises(ValueError):
                resolve_worker_count(bad)

    def test_single_core_warns_exactly_once(self, monkeypatch, capsys):
        import os

        from repro.campaign import resolve_worker_count
        from repro.campaign import scheduler as scheduler_mod

        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        monkeypatch.setattr(scheduler_mod, "_WARNED_SINGLE_CORE", False)
        assert resolve_worker_count("auto") == 1
        first = capsys.readouterr().err
        assert "single CPU core" in first
        assert resolve_worker_count("auto") == 1
        assert capsys.readouterr().err == ""   # warn-once

    def test_cpu_count_unknown_falls_back_to_1(self, monkeypatch):
        import os

        from repro.campaign import resolve_worker_count
        from repro.campaign import scheduler as scheduler_mod

        monkeypatch.setattr(os, "cpu_count", lambda: None)
        monkeypatch.setattr(scheduler_mod, "_WARNED_SINGLE_CORE", True)
        assert resolve_worker_count("auto") == 1

    def test_campaign_default_is_auto(self, monkeypatch, capsys):
        """The CLI default is 'auto', resolved through the same helper —
        the hardcoded 1-worker default is gone."""
        from repro.core.cli import build_campaign_parser

        args = build_campaign_parser().parse_args([])
        assert args.workers == "auto"

    def test_worker_cli_slots_auto(self, monkeypatch):
        import os

        from repro.dist.worker import build_worker_parser

        args = build_worker_parser().parse_args(
            ["--connect", "127.0.0.1:1", "--slots", "auto"])
        assert args.slots == "auto"
