"""Task-retry policy: transient worker deaths retry, real failures don't.

The classification boundary is deliberate: only "worker died with exit
code N" — the one failure shape that says nothing about the *task* —
is transient.  Timeouts, tracebacks and memory kills are properties of
the work and would fail identically on retry.
"""

import os
from pathlib import Path

from repro.campaign.scheduler import (JobResult, RetryPolicy, Scheduler,
                                      classify_failure)
from repro.formal import EngineConfig

FAST_CONFIG = EngineConfig(max_bound=6, max_frames=25)


def _result(status="error", error="worker died with exit code 9"):
    return JobResult(job_id="j", status=status, payload=None, error=error)


class TestClassification:
    def test_worker_death_is_transient(self):
        assert classify_failure(_result()) == "transient"
        assert classify_failure(
            _result(error="worker died with exit code -9")) == "transient"

    def test_timeout_is_deterministic(self):
        result = _result(status="timeout",
                         error="wall-clock limit (0.5s) exceeded")
        assert classify_failure(result) == "deterministic"

    def test_traceback_is_deterministic(self):
        result = _result(error="ValueError: no such file")
        assert classify_failure(result) == "deterministic"

    def test_ok_is_deterministic(self):
        result = JobResult(job_id="j", status="ok", payload={}, error=None)
        assert classify_failure(result) == "deterministic"


# -- runners (top-level: fork/spawn safe) ---------------------------------
def _flaky_runner(job):
    """Dies abruptly on the first attempt per job, succeeds after.

    A marker file records the first attempt; forked pool workers share
    the filesystem, so the flag survives whichever worker retries.
    """
    marker = Path(os.environ["RETRY_TEST_DIR"]) / f"{job.job_id}.seen"
    if not marker.exists():
        marker.touch()
        os._exit(9)
    return {"job_id": job.job_id, "attempt": 2}


def _doomed_runner(job):
    os._exit(9)


def _jobs(ids):
    from repro.campaign import CampaignJob

    return [CampaignJob(job_id=job_id, case_id="X", case_name="dummy",
                        dut_module="tlb", variant="fixed",
                        dut_file="ariane/tlb.sv", extra_files=(),
                        engine_config=FAST_CONFIG)
            for job_id in ids]


def _drive(scheduler):
    """Run to completion, collecting done results and retry events."""
    done, retries = {}, []
    for event in scheduler.run():
        if event[0] == "done":
            _, _, job, result = event
            done[job.job_id] = result
        elif event[0] == "retry":
            _, job, attempt, failed = event
            retries.append((job.job_id, attempt, failed.error))
    return done, retries


class TestSchedulerRetry:
    def test_transient_death_retries_and_succeeds(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setenv("RETRY_TEST_DIR", str(tmp_path))
        scheduler = Scheduler(_jobs(["a", "b"]), workers=2,
                              runner=_flaky_runner,
                              retry=RetryPolicy(max_retries=2))
        done, retries = _drive(scheduler)
        # Exactly one done event per job, all successful after 1 retry.
        assert sorted(done) == ["a", "b"]
        assert all(result.ok for result in done.values())
        assert sorted(job_id for job_id, _, _ in retries) == ["a", "b"]
        assert all("exit code" in error for _, _, error in retries)
        assert scheduler.retry_counts == {"a": 1, "b": 1}

    def test_retries_are_bounded(self):
        scheduler = Scheduler(_jobs(["doom"]), workers=1,
                              runner=_doomed_runner,
                              retry=RetryPolicy(max_retries=2))
        done, retries = _drive(scheduler)
        assert done["doom"].status == "error"
        assert "exit code" in done["doom"].error
        assert len(retries) == 2  # max_retries attempts, then surfaced

    def test_no_policy_means_fail_fast(self):
        scheduler = Scheduler(_jobs(["doom"]), workers=1,
                              runner=_doomed_runner)
        done, retries = _drive(scheduler)
        assert done["doom"].status == "error"
        assert retries == []
