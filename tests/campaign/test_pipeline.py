"""Streaming cost-aware pipeline tests — this PR's acceptance criteria.

Covers the four layers of the pipeline refactor:

* **work-stealing determinism** — re-splitting pending property groups
  changes wall time and grouping, never merged verdicts (identical
  result lists for 1/2/4 workers, and vs the inventory schedule);
* **pipeline overlap** — proven by *event order*, not wall clock: with
  ≥2 workers, design B's ``compile_started`` event lands strictly
  between design A's first and last check events, on any host (the
  scheduler refills — i.e. runs the next design's frontend — between
  consecutive result yields, deterministically);
* **LPT bin balance** — cost-priced corpus properties pack into bins
  within 1.5× max/mean;
* **cost model** — pricing ordering (liveness ≫ assert ≫ cover),
  deterministic packing, calibration from history timing records;
* **cached replays** — report the original check time, not the replay
  time, steal-transparently.
"""

import pytest

from repro.campaign import (ArtifactCache, CampaignHistory, CostModel,
                            expand_jobs, pack_lpt, run_campaign,
                            run_property_campaign, shard_jobs)
from repro.formal import EngineConfig

FAST = EngineConfig(max_bound=6, max_frames=25)


def _strip(results):
    out = []
    for result in results:
        payload = dict(result.payload or {})
        payload.pop("engine_time_s", None)
        payload.pop("solve_time_s", None)
        payload.pop("solver", None)
        out.append((result.job_id, result.status, result.error, payload))
    return out


class TestCostModel:
    def test_kind_ordering(self):
        model = CostModel()
        live = model.property_cost("live", 10, 8, 30)
        asrt = model.property_cost("assert", 10, 8, 30)
        cover = model.property_cost("cover", 10, 8, 30)
        assert live > asrt > cover > 0

    def test_coi_and_bounds_scale_cost(self):
        model = CostModel()
        assert model.property_cost("assert", 100, 8, 30) > \
            model.property_cost("assert", 5, 8, 30)
        assert model.property_cost("cover", 5, 30, 0) > \
            model.property_cost("cover", 5, 5, 0)

    def test_pack_lpt_balances_and_is_deterministic(self):
        costs = [10.0, 1.0, 1.0, 1.0, 9.0, 1.0, 1.0, 8.0]
        first = pack_lpt(costs, 3)
        assert first == pack_lpt(costs, 3)
        loads = [sum(costs[i] for i in b) for b in first]
        assert max(loads) / (sum(loads) / len(loads)) <= 1.5
        # Every item lands in exactly one bin.
        assert sorted(i for b in first for i in b) == list(range(len(costs)))
        # Issue order: costliest bin first.
        assert loads == sorted(loads, reverse=True)
        with pytest.raises(ValueError):
            pack_lpt(costs, 0)

    def test_calibration_reshapes_weights(self):
        samples = ([{"kinds": {"live": 1}, "wall_time_s": 2.0}] * 5
                   + [{"kinds": {"cover": 1}, "wall_time_s": 0.1}] * 5)
        model = CostModel().calibrated(samples)
        assert model.kind_weights["live"] > model.kind_weights["cover"]
        assert model.fingerprint() != CostModel().fingerprint()
        # Mixed-kind and empty samples are ignored, not fatal.
        assert CostModel().calibrated(
            [{"kinds": {"live": 1, "cover": 2}, "wall_time_s": 1.0}]
        ).fingerprint() == CostModel().fingerprint()
        assert CostModel().calibrated([]).fingerprint() == \
            CostModel().fingerprint()

    def test_calibration_needs_two_kinds_for_a_ratio(self):
        """A single measured kind carries no cross-kind ratio information
        — mixing its raw seconds into the other kinds' abstract units
        would distort the very ratios LPT balances on, so it's a no-op."""
        samples = [{"kinds": {"assert": 1}, "wall_time_s": 0.3}] * 10
        assert CostModel().calibrated(samples).fingerprint() == \
            CostModel().fingerprint()

    def test_calibration_is_noise_stable(self):
        """Run-to-run timing noise must not churn the fingerprint (it
        keys the shard-plan cache): weights quantize to ~19% buckets."""
        def samples(scale):
            return ([{"kinds": {"live": 1}, "wall_time_s": 2.0 * scale}] * 5
                    + [{"kinds": {"cover": 1}, "wall_time_s": 0.1}] * 5)
        base = CostModel().calibrated(samples(1.0))
        noisy = CostModel().calibrated(samples(1.03))
        assert base.fingerprint() == noisy.fingerprint()

    def test_history_timing_roundtrip(self, tmp_path):
        history = CampaignHistory(tmp_path / "runs.jsonl")
        assert history.timing_samples() == []
        history.append_timings(
            [{"kinds": {"assert": 1}, "wall_time_s": 0.5}])
        samples = history.timing_samples()
        assert samples == [{"kinds": {"assert": 1}, "wall_time_s": 0.5}]
        # Timing records are invisible to the regression baseline.
        assert history.last() is None


class TestLptBalanceOnCorpus:
    def test_corpus_inventory_packs_within_bound(self):
        """Cost-priced corpus properties pack into 4 bins within 1.5×
        max/mean — the balance inventory-order chunking cannot give."""
        jobs = expand_jobs(config=FAST)  # the full registry
        plan = shard_jobs(jobs, schedule="cost")
        model = CostModel()
        costs = [model.task_cost(task) for task in plan.tasks]
        assert len(costs) > 20
        assert all(cost > 0 for cost in costs)
        bins = pack_lpt(costs, 4)
        loads = [sum(costs[i] for i in b) for b in bins]
        assert max(loads) / (sum(loads) / len(loads)) <= 1.5, loads

    def test_cost_metadata_attached_by_sharding(self):
        jobs = expand_jobs(case_ids=["A2"], config=FAST)
        plan = shard_jobs(jobs, schedule="cost")
        for task in plan.tasks:
            assert len(task.kinds) == len(task.properties)
            assert len(task.coi_sizes) == len(task.properties)
            assert len(task.order) == len(task.properties)
        # COI sizes are real (some property sees at least one latch).
        assert any(size > 0 for task in plan.tasks
                   for size in task.coi_sizes)
        # Canonical positions cover the inventory exactly once.
        positions = sorted(p for task in plan.tasks for p in task.order)
        assert positions == list(range(len(positions)))


class TestStealingDeterminism:
    def test_results_identical_across_worker_counts(self):
        jobs = expand_jobs(case_ids=["A2", "E10"], config=FAST)
        runs = {workers: run_property_campaign(jobs, workers=workers,
                                               schedule="cost")
                for workers in (1, 2, 4)}
        assert _strip(runs[1]) == _strip(runs[2]) == _strip(runs[4])
        assert [r.job_id for r in runs[1]] == [j.job_id for j in jobs]

    def test_cost_schedule_matches_inventory_and_design(self):
        jobs = expand_jobs(case_ids=["A3"], config=FAST)  # fixed + buggy
        cost = run_property_campaign(jobs, workers=2, schedule="cost")
        inventory = run_property_campaign(jobs, workers=2,
                                          schedule="inventory")
        whole = run_campaign(jobs, workers=2)
        assert _strip(cost) == _strip(inventory) == _strip(whole)

    def test_forced_steal_preserves_verdicts(self):
        """One giant group + 4 workers forces tail re-splits; merged
        verdicts must not notice."""
        jobs = expand_jobs(case_ids=["A2"], config=FAST)
        stolen = run_property_campaign(jobs, workers=4, group_size=100,
                                       schedule="cost")
        whole = run_campaign(jobs, workers=1)
        assert _strip(stolen) == _strip(whole)
        assert sum(r.steals for r in stolen) >= 1

    def test_inventory_schedule_never_steals(self):
        jobs = expand_jobs(case_ids=["A2"], config=FAST)
        results = run_property_campaign(jobs, workers=4, group_size=100,
                                        schedule="inventory")
        assert sum(r.steals for r in results) == 0
        assert all(r.ok for r in results)


class TestPipelineOverlap:
    def test_design_b_compiles_during_design_a_checking(self):
        """Event-order proof of frontend/check overlap (no wall clock).

        With 2 workers, after design A's first result the scheduler
        refills — pulling the stream runs design B's frontend — before
        processing A's next result.  So B's compile events land strictly
        between A's first and last check events, deterministically,
        single-core hosts included.
        """
        jobs = expand_jobs(case_ids=["A2", "E10"], config=FAST)
        events = []
        run_property_campaign(jobs, workers=2, schedule="cost",
                              progress=events.append)
        a_label, b_label = jobs[0].job_id, jobs[1].job_id
        a_checks = [i for i, e in enumerate(events)
                    if e.kind == "result" and e.design == a_label]
        b_compile = [i for i, e in enumerate(events)
                     if e.kind == "compile_started" and e.design == b_label]
        b_done = [i for i, e in enumerate(events)
                  if e.kind == "compile_done" and e.design == b_label]
        assert len(a_checks) >= 2 and len(b_compile) == 1
        assert a_checks[0] < b_compile[0] < a_checks[-1]
        assert a_checks[0] < b_done[0] < a_checks[-1]

    def test_stream_does_not_precompile_later_designs(self):
        """shard_jobs-era behavior is gone: with one worker, design B's
        compile must happen after ALL of design A's checks (the stream
        is pulled lazily), not before the first one."""
        jobs = expand_jobs(case_ids=["A2", "E10"], config=FAST)
        events = []
        run_property_campaign(jobs, workers=1, schedule="cost",
                              progress=events.append)
        a_label, b_label = jobs[0].job_id, jobs[1].job_id
        a_checks = [i for i, e in enumerate(events)
                    if e.kind == "result" and e.design == a_label]
        b_compile = [i for i, e in enumerate(events)
                     if e.kind == "compile_started" and e.design == b_label]
        assert b_compile[0] > a_checks[0]

    def test_one_compile_per_design_variant_streaming(self):
        from repro.api import COMPILE_CACHE

        jobs = expand_jobs(case_ids=["A3"], config=FAST)  # fixed + buggy
        COMPILE_CACHE.clear()
        before = COMPILE_CACHE.compiles
        results = run_property_campaign(jobs, workers=2, schedule="cost")
        assert all(r.ok for r in results)
        assert COMPILE_CACHE.compiles - before == len(jobs)


class TestCachedReplayTimes:
    def test_replay_reports_original_wall_time(self, tmp_path):
        jobs = expand_jobs(case_ids=["A2"], config=FAST)
        cache = ArtifactCache(tmp_path)
        cold = run_property_campaign(jobs, workers=2, schedule="cost",
                                     cache=cache)
        warm = run_property_campaign(jobs, workers=2, schedule="cost",
                                     cache=cache)
        assert _strip(cold) == _strip(warm)
        for cold_result, warm_result in zip(cold, warm):
            assert not cold_result.from_cache and warm_result.from_cache
            assert warm_result.original_wall_time_s is not None
            assert warm_result.original_wall_time_s > 0
            # The replay itself is near-instant; the original time is the
            # real check time (same order of magnitude as the cold run).
            assert warm_result.wall_time_s < 1.0
            assert warm_result.original_wall_time_s == pytest.approx(
                cold_result.wall_time_s, rel=0.5, abs=0.5)

    def test_design_granularity_replay_reports_original_time(self,
                                                             tmp_path):
        jobs = expand_jobs(case_ids=["A2"], config=FAST)
        cache = ArtifactCache(tmp_path)
        cold = run_campaign(jobs, workers=1, cache=cache)
        warm = run_campaign(jobs, workers=1, cache=cache)
        assert warm[0].from_cache
        assert warm[0].original_wall_time_s == pytest.approx(
            cold[0].wall_time_s, rel=0.5, abs=0.5)

    def test_report_surfaces_both_times(self, tmp_path):
        from repro.campaign import CampaignReport

        jobs = expand_jobs(case_ids=["A2"], config=FAST)
        cache = ArtifactCache(tmp_path)
        run_campaign(jobs, workers=1, cache=cache)
        warm = run_campaign(jobs, workers=1, cache=cache)
        report = CampaignReport(jobs, warm, schedule="cost", steals=2)
        exported = report.as_dict()["results"][0]
        assert exported["from_cache"] is True
        assert exported["original_wall_time_s"] is not None
        assert report.rows()[0].original_time_s > 0
        assert "originally" in report.summary()
        assert "Scheduling: cost" in report.summary()
