"""Artifact-cache schema handling: explicit versions, clear failures."""

import json

import pytest

from repro.campaign.cache import _SCHEMA_VERSION, ArtifactCache
from repro.core.language import AutoSVAError


class TestCacheSchema:
    def test_entries_are_written_with_an_explicit_schema(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("k1", {"answer": 42}, wall_time_s=1.5)
        raw = json.loads((tmp_path / "k1.json").read_text())
        assert raw["schema"] == _SCHEMA_VERSION
        entry = cache.get_entry("k1")
        assert entry.payload == {"answer": 42}
        assert entry.wall_time_s == 1.5

    def test_future_schema_raises_a_clear_error(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        (tmp_path / "k1.json").write_text(json.dumps(
            {"schema": _SCHEMA_VERSION + 1, "payload": {"x": 1}}))
        with pytest.raises(AutoSVAError, match="schema"):
            cache.get_entry("k1")
        with pytest.raises(AutoSVAError, match="schema"):
            cache.contains("k1")
        # Non-integer schema values are just as untrustworthy.
        (tmp_path / "k2.json").write_text(json.dumps(
            {"schema": "newest", "payload": {"x": 1}}))
        with pytest.raises(AutoSVAError, match="schema"):
            cache.get("k2")

    def test_schema1_entries_migrate_on_read(self, tmp_path):
        """Schema 1 stored the raw payload dict itself — no envelope, no
        ``schema`` field.  The explicit load path serves it (with no
        original-wall-time metadata, which that format never had)."""
        cache = ArtifactCache(tmp_path)
        legacy_payload = {"design": "tlb", "proof_rate": 1.0,
                          "properties": []}
        (tmp_path / "old.json").write_text(json.dumps(legacy_payload))
        entry = cache.get_entry("old")
        assert entry is not None
        assert entry.payload == legacy_payload
        assert entry.wall_time_s is None
        assert cache.contains("old")

    def test_corrupt_entries_stay_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        (tmp_path / "torn.json").write_text('{"schema": 2, "pay')
        assert cache.get_entry("torn") is None
        (tmp_path / "list.json").write_text("[1, 2, 3]")
        assert cache.get_entry("list") is None
        # An envelope missing its payload is truncated, not future.
        (tmp_path / "empty.json").write_text(json.dumps({"schema": 2}))
        assert cache.get_entry("empty") is None
