"""Warm property-granularity reruns: the shard-plan cache.

A cold ``run_property_campaign`` with a cache pays, per job, one FT
generation + one compile (parent-side) and stores both the per-task
results *and* the shard plan.  The warm rerun must rebuild its task list
from the cached plan — zero FT generations, zero compiles — and replay
every task result from disk, making warm property reruns as instant as
design-granularity ones (the ROADMAP "property-level result reuse" gap).
"""

import pytest

import repro.campaign.sharding as sharding
from repro.api.compile import COMPILE_CACHE
from repro.campaign import ArtifactCache, expand_jobs, run_property_campaign
from repro.campaign.sharding import shard_jobs
from repro.formal import EngineConfig


@pytest.fixture()
def jobs():
    return expand_jobs(case_ids=["A2"],
                       config=EngineConfig(max_bound=6, max_frames=20))


def _count_ft_calls(monkeypatch):
    import repro.core as core

    calls = {"n": 0}
    real = core.generate_ft

    def counting(*args, **kwargs):
        calls["n"] += 1
        return real(*args, **kwargs)

    # shard_jobs imports generate_ft from repro.core at call time.
    monkeypatch.setattr(core, "generate_ft", counting)
    return calls


class TestShardPlanCache:
    def test_warm_rerun_skips_ft_and_compile(self, jobs, tmp_path,
                                             monkeypatch):
        cache = ArtifactCache(tmp_path / "cache")
        calls = _count_ft_calls(monkeypatch)

        cold = run_property_campaign(jobs, workers=2, cache=cache)
        assert all(r.ok for r in cold)
        assert calls["n"] == len(jobs)          # one FT gen per job
        assert not any(r.from_cache for r in cold)

        calls["n"] = 0
        compiles_before = COMPILE_CACHE.compiles
        hits_before = COMPILE_CACHE.hits
        warm = run_property_campaign(jobs, workers=2, cache=cache)
        assert all(r.from_cache for r in warm)
        assert calls["n"] == 0                  # plan cache: no FT gen
        # No parent-side compile either — not even a compile-cache lookup.
        assert COMPILE_CACHE.compiles == compiles_before
        assert COMPILE_CACHE.hits == hits_before

        def strip(results):
            return [(r.job_id, r.status, r.payload) for r in results]
        assert strip(cold) == strip(warm)

    def test_partial_warm_compiles_once_from_cached_plan(self, jobs,
                                                         tmp_path,
                                                         monkeypatch):
        """Plan hit + missing task results: FT gen still skipped, exactly
        one compile per design, served from the stored merged source."""
        cache = ArtifactCache(tmp_path / "cache")
        calls = _count_ft_calls(monkeypatch)
        cold = run_property_campaign(jobs, workers=1, cache=cache)
        assert all(r.ok for r in cold)

        # Drop the task-result entries, keep the plans.
        plan = shard_jobs(jobs, cache=cache)
        removed = 0
        for task in plan.tasks:
            path = cache._path(cache.key(task))
            if path.exists():
                path.unlink()
                removed += 1
        assert removed > 0

        calls["n"] = 0
        warm = run_property_campaign(jobs, workers=1, cache=cache)
        assert all(r.ok for r in warm)
        assert calls["n"] == 0                  # plan hit: no FT gen
        assert not any(r.from_cache for r in warm)

    def test_plan_key_covers_config_and_group_size(self, jobs):
        job = jobs[0]
        base = sharding._plan_key(job, group_size=1)
        assert sharding._plan_key(job, group_size=2) != base
        import dataclasses
        other = dataclasses.replace(job, engine_config=EngineConfig(
            max_bound=7, max_frames=20))
        assert sharding._plan_key(other, group_size=1) != base

    def test_corrupt_plan_entry_falls_back(self, jobs, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        run_property_campaign(jobs, workers=1, cache=cache)
        key = sharding._plan_key(jobs[0], group_size=1)
        cache._path(key).write_text('{"merged": "gone"}')  # malformed
        results = run_property_campaign(jobs, workers=1, cache=cache)
        assert all(r.ok for r in results)
