"""Sweep-axis CLI/report tests and campaign-history regression tests."""

import json

import pytest

from repro.campaign import (CampaignHistory, CampaignJob, CampaignReport,
                            JobResult, default_engine_config, expand_jobs)
from repro.core.cli import _expand_sweep, main as cli_main
from repro.core.language import AutoSVAError
from repro.formal import EngineConfig


class TestSweepParsing:
    def test_single_axis(self):
        configs = _expand_sweep(["max_bound=4,8"], EngineConfig())
        assert [c.max_bound for c in configs] == [4, 8]

    def test_engine_axis(self):
        configs = _expand_sweep(["proof_engine=pdr,kind"], EngineConfig())
        assert [c.proof_engine for c in configs] == ["pdr", "kind"]

    def test_cartesian_product(self):
        configs = _expand_sweep(["max_bound=4,8", "proof_engine=pdr,kind"],
                                EngineConfig())
        assert len(configs) == 4
        assert {(c.max_bound, c.proof_engine) for c in configs} == \
            {(4, "pdr"), (4, "kind"), (8, "pdr"), (8, "kind")}

    def test_bad_specs_rejected(self):
        with pytest.raises(AutoSVAError):
            _expand_sweep(["max_bound"], EngineConfig())
        with pytest.raises(AutoSVAError):
            _expand_sweep(["no_such_field=1,2"], EngineConfig())
        with pytest.raises(AutoSVAError):
            _expand_sweep(["max_bound=four"], EngineConfig())
        with pytest.raises(AutoSVAError):
            _expand_sweep(["kliveness_rounds=1,2"], EngineConfig())
        # Engine names are validated eagerly, inside the sweep expansion.
        with pytest.raises(AutoSVAError):
            _expand_sweep(["proof_engine=pdr,jasper"], EngineConfig())
        # A field given twice must error, not silently keep the last one.
        with pytest.raises(AutoSVAError, match="twice"):
            _expand_sweep(["max_bound=4", "max_bound=8"], EngineConfig())

    def test_sweep_jobs_carry_config_index(self):
        configs = _expand_sweep(["max_bound=4,8"], EngineConfig())
        jobs = expand_jobs(case_ids=["A2"], variants=("fixed",),
                           configs=configs)
        assert [j.config_index for j in jobs] == [0, 1]
        single = expand_jobs(case_ids=["A2"], variants=("fixed",))
        assert [j.config_index for j in single] == [None]

    def test_cli_bad_sweep_exits_1(self, capsys):
        assert cli_main(["campaign", "--cases", "A2",
                         "--sweep", "bogus=1"]) == 1
        capsys.readouterr()


def _job(job_id, case_id="A9", variant="fixed", config_index=None, **kw):
    return CampaignJob(
        job_id=job_id, case_id=case_id, case_name="Synthetic",
        dut_module="m", variant=variant, dut_file="x.sv", extra_files=(),
        engine_config=default_engine_config(), config_index=config_index,
        **kw)


def _payload(proof_rate, cex=(), props=3):
    return {
        "design": "m", "proof_rate": proof_rate, "num_properties": props,
        "num_proven": props - len(cex), "num_cex": len(cex),
        "cex": [{"name": f"u_m_sva.as__{n}", "depth": d} for n, d in cex],
        "properties": [], "annotation_loc": 2, "property_count": props,
        "engine_time_s": 0.5,
    }


def _sweep_report():
    jobs = [_job("A9.fixed.cfg0", config_index=0),
            _job("A9.fixed.cfg1", config_index=1),
            _job("A9.buggy.cfg0", variant="buggy", config_index=0),
            _job("A9.buggy.cfg1", variant="buggy", config_index=1)]
    results = [
        JobResult("A9.fixed.cfg0", "ok", _payload(1.0)),
        JobResult("A9.fixed.cfg1", "ok", _payload(0.5)),
        JobResult("A9.buggy.cfg0", "ok",
                  _payload(0.5, cex=[("t_eventual_response", 4)])),
        JobResult("A9.buggy.cfg1", "ok", _payload(1.0)),
    ]
    return CampaignReport(jobs, results, workers=1)


class TestConfigComparison:
    def test_per_config_aggregates(self):
        comparison = _sweep_report().config_comparison()
        assert [entry["config"] for entry in comparison] == [0, 1]
        assert comparison[0]["fixed_proof_rate"] == 1.0
        assert comparison[0]["buggy_cex_found"] == 1
        assert comparison[1]["fixed_proof_rate"] == 0.5
        assert comparison[1]["buggy_cex_found"] == 0

    def test_comparison_in_exports(self):
        report = _sweep_report()
        assert "Config sweep comparison:" in report.summary()
        assert "### Config sweep" in report.to_markdown()
        data = json.loads(report.to_json())
        assert len(data["config_comparison"]) == 2

    def test_no_section_outside_sweeps(self):
        jobs = [_job("A9.fixed")]
        results = [JobResult("A9.fixed", "ok", _payload(1.0))]
        report = CampaignReport(jobs, results)
        assert report.config_comparison() == []
        assert "Config sweep" not in report.summary()
        assert "Config sweep" not in report.to_markdown()


def _simple_report(fixed_rate=1.0, cex=(("t_eventual_response", 4),),
                   errors=False):
    jobs = [_job("A9.fixed"), _job("A9.buggy", variant="buggy")]
    buggy = (JobResult("A9.buggy", "error", error="boom") if errors
             else JobResult("A9.buggy", "ok", _payload(0.5, cex=list(cex))))
    results = [JobResult("A9.fixed", "ok", _payload(fixed_rate)), buggy]
    return CampaignReport(jobs, results)


class TestCampaignHistory:
    def test_append_and_read_back(self, tmp_path):
        history = CampaignHistory(tmp_path / "runs.jsonl")
        assert history.last() is None
        record = history.append(_simple_report(), label="first")
        assert history.last()["label"] == "first"
        assert record["designs"]["A9"]["fixed_proof_rate"] == 1.0
        history.append(_simple_report())
        assert len(history.entries()) == 2

    def test_no_baseline_means_no_regressions(self, tmp_path):
        history = CampaignHistory(tmp_path / "runs.jsonl")
        assert history.regressions(_simple_report()) == []

    def test_proof_rate_regression_detected(self, tmp_path):
        history = CampaignHistory(tmp_path / "runs.jsonl")
        history.append(_simple_report(fixed_rate=1.0))
        findings = history.regressions(_simple_report(fixed_rate=0.5))
        assert any("proof rate regressed 100% -> 50%" in f
                   for f in findings)

    def test_lost_and_drifted_cex_detected(self, tmp_path):
        history = CampaignHistory(tmp_path / "runs.jsonl")
        history.append(_simple_report())
        lost = history.regressions(_simple_report(cex=()))
        assert any("no longer found" in f for f in lost)
        drifted = history.regressions(
            _simple_report(cex=(("t_eventual_response", 7),)))
        assert any("drifted 4 -> 7" in f for f in drifted)

    def test_new_errors_detected(self, tmp_path):
        history = CampaignHistory(tmp_path / "runs.jsonl")
        history.append(_simple_report())
        findings = history.regressions(_simple_report(errors=True))
        assert any("now failing" in f for f in findings)

    def test_improvements_not_flagged(self, tmp_path):
        history = CampaignHistory(tmp_path / "runs.jsonl")
        history.append(_simple_report(fixed_rate=0.5))
        assert history.regressions(_simple_report(fixed_rate=1.0)) == []

    def test_corrupt_lines_skipped(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        history = CampaignHistory(path)
        history.append(_simple_report())
        with path.open("a") as handle:
            handle.write("{torn json...\n")
        assert len(history.entries()) == 1
        assert history.last() is not None

    def test_cli_history_roundtrip(self, tmp_path, capsys):
        hist = tmp_path / "runs.jsonl"
        argv = ["campaign", "--cases", "A2", "--variants", "fixed",
                "--history", str(hist)]
        assert cli_main(argv) == 0
        out = capsys.readouterr().out
        assert "No regressions vs previous run." in out
        assert cli_main(argv) == 0
        out = capsys.readouterr().out
        assert "No regressions vs previous run." in out
        assert len(hist.read_text().splitlines()) == 2


class TestTimingWorkerIdentity:
    """Timing records carry where each task ran (host:pid), so
    calibration over heterogeneous fleets can filter per host."""

    def _history_with(self, tmp_path, samples):
        history = CampaignHistory(tmp_path / "runs.jsonl")
        history.append_timings(samples)
        return history

    def test_samples_round_trip_with_worker_field(self, tmp_path):
        history = self._history_with(tmp_path, [
            {"kinds": {"assert": 1}, "wall_time_s": 2.0,
             "worker": "bench1:4242"},
        ])
        samples = history.timing_samples()
        assert samples == [{"kinds": {"assert": 1}, "wall_time_s": 2.0,
                            "worker": "bench1:4242"}]

    def test_host_filter(self, tmp_path):
        history = self._history_with(tmp_path, [
            {"kinds": {"assert": 1}, "wall_time_s": 2.0,
             "worker": "bench1:1"},
            {"kinds": {"assert": 1}, "wall_time_s": 9.0,
             "worker": "slowbox:2"},
            {"kinds": {"cover": 1}, "wall_time_s": 0.5},   # pre-field
        ])
        picked = history.timing_samples(hosts=["bench1"])
        assert [s["wall_time_s"] for s in picked] == [2.0]
        # No filter: everything, legacy records included.
        assert len(history.timing_samples()) == 3

    def test_calibration_ignores_unknown_fields(self, tmp_path):
        """Records written by newer builds (worker identity, future
        fields) must feed calibration unchanged — backward compatible in
        both directions."""
        from repro.campaign import CostModel

        base = CostModel()
        plain = [
            {"kinds": {"cover": 1}, "wall_time_s": 1.0},
            {"kinds": {"assert": 1}, "wall_time_s": 12.0},
        ]
        decorated = [
            {"kinds": {"cover": 1}, "wall_time_s": 1.0,
             "worker": "bench1:77", "future_field": {"x": [1, 2]}},
            {"kinds": {"assert": 1}, "wall_time_s": 12.0,
             "worker": "bench1:78", "schema": 99},
        ]
        assert base.calibrated(decorated).kind_weights == \
            base.calibrated(plain).kind_weights
        # And it genuinely recalibrated (assert/cover ratio moved).
        assert base.calibrated(decorated).kind_weights != \
            base.kind_weights

    def test_cli_records_worker_identity(self, tmp_path, capsys):
        hist = tmp_path / "runs.jsonl"
        assert cli_main(["campaign", "--cases", "A1",
                         "--granularity", "property", "--workers", "1",
                         "--history", str(hist)]) == 0
        capsys.readouterr()
        records = [json.loads(line)
                   for line in hist.read_text().splitlines()]
        timing = [r for r in records if r.get("type") == "timings"]
        assert timing, "property campaign should append timing samples"
        for sample in timing[0]["samples"]:
            assert ":" in sample["worker"]


class TestHistoryAtomicity:
    def test_concurrent_appends_never_tear_a_line(self, tmp_path):
        """Many processes appending to one history must interleave whole
        lines, never fragments — the O_APPEND single-write contract the
        campaign service relies on when concurrent campaigns settle
        against a shared history file."""
        import multiprocessing

        path = tmp_path / "runs.jsonl"
        writers, each = 4, 25
        context = multiprocessing.get_context("fork")
        procs = [context.Process(target=_append_many,
                                 args=(str(path), writer, each))
                 for writer in range(writers)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join()
            assert proc.exitcode == 0
        lines = path.read_text().splitlines()
        assert len(lines) == writers * each
        seen = set()
        for line in lines:
            record = json.loads(line)     # any torn line raises here
            assert record["samples"][0]["kinds"]["assert"] == 1
            seen.add((record["label"], record["samples"][0]["seq"]))
        assert seen == {(f"w{writer}", seq)
                        for writer in range(writers)
                        for seq in range(each)}

    def test_fsync_mode_appends_identically(self, tmp_path):
        hist = CampaignHistory(tmp_path / "runs.jsonl", fsync=True)
        hist.append_timings(
            [{"kinds": {"assert": 1}, "wall_time_s": 0.5}], label="d")
        assert hist.timing_samples()[0]["wall_time_s"] == 0.5


def _append_many(path, writer, count):
    history = CampaignHistory(path)
    for seq in range(count):
        history.append_timings(
            [{"kinds": {"assert": 1}, "wall_time_s": 0.01,
              "seq": seq, "pad": "x" * 2048}],
            label=f"w{writer}")
