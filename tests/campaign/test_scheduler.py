"""Scheduler contract tests: determinism, isolation, bounds, caching.

The runners used to provoke failures are module-level functions so forked
workers resolve them regardless of start method.
"""

import dataclasses
import os
import time

import pytest

from repro.campaign import (ArtifactCache, CampaignJob, expand_jobs,
                            run_campaign)
from repro.formal import EngineConfig

FAST_CONFIG = EngineConfig(max_bound=6, max_frames=25)


def _fast_jobs(case_ids=("A2", "E10")):
    return expand_jobs(case_ids=list(case_ids), config=FAST_CONFIG)


def _dummy_job(job_id="dummy", dut_file="ariane/tlb.sv"):
    return CampaignJob(
        job_id=job_id, case_id="X", case_name="dummy", dut_module="tlb",
        variant="fixed", dut_file=dut_file, extra_files=(),
        engine_config=FAST_CONFIG)


def _comparable(results):
    """Everything that must be identical across worker counts."""
    out = []
    for result in results:
        payload = dict(result.payload or {})
        payload.pop("engine_time_s", None)  # timing is not part of the contract
        out.append((result.job_id, result.status, result.error, payload))
    return out


# -- runners for failure-injection tests (top-level: fork/spawn safe) -----
def _sleepy_runner(job):
    time.sleep(30)
    return {"never": "reached"}


def _crashy_runner(job):
    os._exit(3)


def _greedy_runner(job):
    block = bytearray(512 * 1024 * 1024)
    return {"bytes": len(block)}


def _echo_runner(job):
    return {"job_id": job.job_id}


class TestDeterminism:
    def test_results_identical_across_worker_counts(self):
        jobs = _fast_jobs()
        serial = run_campaign(jobs, workers=1)
        parallel = run_campaign(jobs, workers=4)
        assert [r.job_id for r in serial] == [j.job_id for j in jobs]
        assert _comparable(serial) == _comparable(parallel)

    def test_order_is_job_order_not_completion_order(self):
        # A slow job first, fast ones after: completion order inverts, the
        # result list must not.
        jobs = _fast_jobs(("O1",)) + _fast_jobs(("A2",))
        results = run_campaign(jobs, workers=4)
        assert [r.job_id for r in results] == [j.job_id for j in jobs]


class TestFailureIsolation:
    def test_raising_job_yields_error_result(self):
        jobs = [_dummy_job("good"),
                _dummy_job("bad", dut_file="ariane/does_not_exist.sv"),
                _dummy_job("good2")]
        results = run_campaign(jobs, workers=2)
        assert [r.job_id for r in results] == ["good", "bad", "good2"]
        assert results[0].ok and results[2].ok
        assert results[1].status == "error"
        assert "does_not_exist" in results[1].error

    def test_timeout_yields_per_job_timeout(self):
        jobs = [_dummy_job("slow1"), _dummy_job("slow2")]
        begin = time.monotonic()
        results = run_campaign(jobs, workers=2, timeout_s=0.5,
                               runner=_sleepy_runner)
        assert time.monotonic() - begin < 10
        assert all(r.status == "timeout" for r in results)
        assert "wall-clock" in results[0].error

    def test_worker_crash_is_isolated(self):
        jobs = [_dummy_job("boom"), _dummy_job("fine")]
        results = run_campaign(jobs, workers=2,
                               runner=_crashy_runner)
        assert results[0].status == "error"
        assert "exit code" in results[0].error

    def test_memory_limit_enforced(self):
        jobs = [_dummy_job("hog")]
        results = run_campaign(jobs, workers=1, memory_limit_mb=128,
                               runner=_greedy_runner)
        assert results[0].status == "error"

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError):
            run_campaign([_dummy_job()], workers=0)


class TestCache:
    def test_second_run_served_from_cache(self, tmp_path):
        jobs = _fast_jobs(("A2",))
        cache = ArtifactCache(tmp_path)
        first = run_campaign(jobs, workers=1, cache=cache)
        assert not any(r.from_cache for r in first)
        begin = time.monotonic()
        second = run_campaign(jobs, workers=1, cache=cache)
        assert all(r.from_cache for r in second)
        assert time.monotonic() - begin < 1.0
        assert _comparable(first) == _comparable(second)

    def test_config_change_invalidates(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        job = _fast_jobs(("A2",))[0]
        other = dataclasses.replace(
            job, engine_config=EngineConfig(max_bound=4, max_frames=20))
        assert cache.key(job) != cache.key(other)

    def test_source_change_invalidates(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        tlb = _dummy_job("tlb")
        ptw = _dummy_job("ptw", dut_file="ariane/ptw.sv")
        assert cache.key(tlb) != cache.key(ptw)

    def test_failed_jobs_are_not_cached(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        jobs = [_dummy_job("bad", dut_file="ariane/does_not_exist.sv")]
        run_campaign(jobs, workers=1, cache=cache)
        assert cache.stats()["entries"] == 0

    def test_progress_callback_sees_every_job(self, tmp_path):
        jobs = [_dummy_job("a"), _dummy_job("b")]
        seen = []
        run_campaign(jobs, workers=2, runner=_echo_runner,
                     progress=lambda r: seen.append(r.job_id))
        assert sorted(seen) == ["a", "b"]
