"""Scheduler contract tests: determinism, isolation, bounds, caching.

The runners used to provoke failures are module-level functions so forked
workers resolve them regardless of start method.
"""

import dataclasses
import os
import time

import pytest

from repro.campaign import (ArtifactCache, CampaignJob, expand_jobs,
                            run_campaign)
from repro.formal import EngineConfig

FAST_CONFIG = EngineConfig(max_bound=6, max_frames=25)


def _fast_jobs(case_ids=("A2", "E10")):
    return expand_jobs(case_ids=list(case_ids), config=FAST_CONFIG)


def _dummy_job(job_id="dummy", dut_file="ariane/tlb.sv"):
    return CampaignJob(
        job_id=job_id, case_id="X", case_name="dummy", dut_module="tlb",
        variant="fixed", dut_file=dut_file, extra_files=(),
        engine_config=FAST_CONFIG)


def _comparable(results):
    """Everything that must be identical across worker counts."""
    out = []
    for result in results:
        payload = dict(result.payload or {})
        payload.pop("engine_time_s", None)  # timing is not part of the contract
        payload.pop("solve_time_s", None)
        payload.pop("solver", None)   # counters vary with grouping/steals
        out.append((result.job_id, result.status, result.error, payload))
    return out


# -- runners for failure-injection tests (top-level: fork/spawn safe) -----
def _sleepy_runner(job):
    time.sleep(30)
    return {"never": "reached"}


def _crashy_runner(job):
    os._exit(3)


def _greedy_runner(job):
    block = bytearray(512 * 1024 * 1024)
    return {"bytes": len(block)}


def _echo_runner(job):
    return {"job_id": job.job_id}


def _stamping_runner(job):
    started = time.monotonic()
    time.sleep(0.05)
    return {"job_id": job.job_id, "started": started}


class TestDeterminism:
    def test_results_identical_across_worker_counts(self):
        jobs = _fast_jobs()
        serial = run_campaign(jobs, workers=1)
        parallel = run_campaign(jobs, workers=4)
        assert [r.job_id for r in serial] == [j.job_id for j in jobs]
        assert _comparable(serial) == _comparable(parallel)

    def test_order_is_job_order_not_completion_order(self):
        # A slow job first, fast ones after: completion order inverts, the
        # result list must not.
        jobs = _fast_jobs(("O1",)) + _fast_jobs(("A2",))
        results = run_campaign(jobs, workers=4)
        assert [r.job_id for r in results] == [j.job_id for j in jobs]


class TestFailureIsolation:
    def test_raising_job_yields_error_result(self):
        jobs = [_dummy_job("good"),
                _dummy_job("bad", dut_file="ariane/does_not_exist.sv"),
                _dummy_job("good2")]
        results = run_campaign(jobs, workers=2)
        assert [r.job_id for r in results] == ["good", "bad", "good2"]
        assert results[0].ok and results[2].ok
        assert results[1].status == "error"
        assert "does_not_exist" in results[1].error

    def test_timeout_yields_per_job_timeout(self):
        jobs = [_dummy_job("slow1"), _dummy_job("slow2")]
        begin = time.monotonic()
        results = run_campaign(jobs, workers=2, timeout_s=0.5,
                               runner=_sleepy_runner)
        assert time.monotonic() - begin < 10
        assert all(r.status == "timeout" for r in results)
        assert "wall-clock" in results[0].error

    def test_worker_crash_is_isolated(self):
        jobs = [_dummy_job("boom"), _dummy_job("fine")]
        results = run_campaign(jobs, workers=2,
                               runner=_crashy_runner)
        assert results[0].status == "error"
        assert "exit code" in results[0].error

    def test_memory_limit_enforced(self):
        jobs = [_dummy_job("hog")]
        results = run_campaign(jobs, workers=1, memory_limit_mb=128,
                               runner=_greedy_runner)
        assert results[0].status == "error"

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError):
            run_campaign([_dummy_job()], workers=0)


class TestCache:
    def test_second_run_served_from_cache(self, tmp_path):
        jobs = _fast_jobs(("A2",))
        cache = ArtifactCache(tmp_path)
        first = run_campaign(jobs, workers=1, cache=cache)
        assert not any(r.from_cache for r in first)
        begin = time.monotonic()
        second = run_campaign(jobs, workers=1, cache=cache)
        assert all(r.from_cache for r in second)
        assert time.monotonic() - begin < 1.0
        assert _comparable(first) == _comparable(second)

    def test_config_change_invalidates(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        job = _fast_jobs(("A2",))[0]
        other = dataclasses.replace(
            job, engine_config=EngineConfig(max_bound=4, max_frames=20))
        assert cache.key(job) != cache.key(other)

    def test_source_change_invalidates(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        tlb = _dummy_job("tlb")
        ptw = _dummy_job("ptw", dut_file="ariane/ptw.sv")
        assert cache.key(tlb) != cache.key(ptw)

    def test_failed_jobs_are_not_cached(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        jobs = [_dummy_job("bad", dut_file="ariane/does_not_exist.sv")]
        run_campaign(jobs, workers=1, cache=cache)
        assert cache.stats()["entries"] == 0

    def test_progress_callback_sees_every_job(self, tmp_path):
        jobs = [_dummy_job("a"), _dummy_job("b")]
        seen = []
        run_campaign(jobs, workers=2, runner=_echo_runner,
                     progress=lambda r: seen.append(r.job_id))
        assert sorted(seen) == ["a", "b"]


class TestStreamingSource:
    def test_queued_jobs_run_during_a_blocking_source_pull(self):
        """Regression: already-pulled jobs must be launched *before* the
        scheduler goes back to the source (a pull can block on the next
        design's frontend compile).  The workers' own start timestamps
        prove the jobs ran during the source's block, not after it."""
        from repro.campaign.scheduler import Scheduler

        def source():
            yield _dummy_job("a0")
            yield _dummy_job("a1")
            time.sleep(0.6)          # the next design's "compile"
            yield _dummy_job("b0")

        begin = time.monotonic()
        results = {}
        scheduler = Scheduler(source(), workers=4,
                              runner=_stamping_runner)
        for event in scheduler.run():
            if event[0] == "done":
                results[event[3].job_id] = event[3].payload
        assert set(results) == {"a0", "a1", "b0"}
        for job_id in ("a0", "a1"):
            launched_after = results[job_id]["started"] - begin
            assert launched_after < 0.3, (job_id, launched_after)
        assert results["b0"]["started"] - begin >= 0.6


class TestDeadlineLatency:
    """Per-job deadlines must fire promptly, not a poll period late.

    The scheduler blocks in ``connection.wait`` with a timeout bounded by
    the earliest running deadline, so timeout enforcement latency is
    bounded by wakeup cost, not by a fixed polling interval.
    """

    def test_wait_timeout_is_bounded_by_nearest_deadline(self):
        import time as time_mod

        from repro.campaign.scheduler import (_IDLE_WAIT_S, Scheduler,
                                              _Running)

        scheduler = Scheduler([], workers=2, timeout_s=30.0)
        now = time_mod.monotonic()

        def slot(deadline):
            return _Running(index=0, job=None, process=None, conn=None,
                            started=now, deadline=deadline)

        # No deadlines: bounded bookkeeping wait, not an unbounded block.
        scheduler._running = [slot(None)]
        assert scheduler._wait_timeout() == _IDLE_WAIT_S
        # The wait never sleeps past the earliest deadline...
        scheduler._running = [slot(now + 10.0), slot(now + 0.2), slot(None)]
        assert scheduler._wait_timeout() <= 0.2
        assert scheduler._wait_timeout() >= 0.0
        # ...and an already-expired deadline means an immediate pass.
        scheduler._running = [slot(now - 1.0)]
        assert scheduler._wait_timeout() == 0.0

    def test_timeout_fires_promptly(self):
        """Regression: a 0.4s deadline on a 30s job must be enforced
        within a small margin of expiry (generous for loaded CI hosts;
        the old fixed-interval poll behaved like a lower bound too —
        this pins the contract down)."""
        jobs = [_dummy_job("slow")]
        results = run_campaign(jobs, workers=1, timeout_s=0.4,
                               runner=_sleepy_runner)
        assert results[0].status == "timeout"
        # wall_time_s is measured from worker start to termination, so it
        # directly exposes enforcement latency past the 0.4s deadline.
        assert results[0].wall_time_s >= 0.4
        assert results[0].wall_time_s < 0.4 + 0.3, results[0].wall_time_s
