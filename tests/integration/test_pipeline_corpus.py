"""Corpus-wide verdict equivalence of the cost-aware streaming pipeline.

The acceptance contract of the pipeline refactor (CI-gated): on the full
Table III corpus, ``--schedule cost`` — LPT cost-balanced property
groups, costliest-first issue, work stealing, streaming compile overlap —
produces **bit-identical statuses and depths** to the inventory-order
path, at property granularity and against the design-granularity
baseline, for any worker count.

Runs at the standard corpus config (bound 8 / 30 frames), like the
sweep-equivalence suite: smaller bounds are a trap, not a speedup (a CEX
pushed beyond the hunt bound costs a full proof-engine run instead).
"""

from repro.campaign import (expand_jobs, run_campaign,
                            run_property_campaign, verdict_contract)
from repro.formal import EngineConfig

CONFIG = EngineConfig(max_bound=8, max_frames=30)


def test_cost_schedule_is_verdict_identical_on_full_corpus():
    jobs = expand_jobs(config=CONFIG)  # whole registry, fixed + buggy
    assert len(jobs) >= 12

    baseline = run_campaign(jobs, workers=2)
    inventory = run_property_campaign(jobs, workers=2,
                                      schedule="inventory")
    cost = run_property_campaign(jobs, workers=2, schedule="cost")
    cost_serial = run_property_campaign(jobs, workers=1, schedule="cost")

    assert verdict_contract(inventory) == verdict_contract(baseline)
    assert verdict_contract(cost) == verdict_contract(baseline)
    assert verdict_contract(cost_serial) == verdict_contract(baseline)
    assert [r.job_id for r in cost] == [j.job_id for j in jobs]
