"""Corpus-wide verdict equivalence of the distributed TCP fabric.

The acceptance contract of the distributed subsystem (CI-gated, with
``make dist-smoke`` as the fast per-push variant): a loopback-TCP
campaign over remote worker agents produces **bit-identical verdicts**
to the local multiprocessing transport on the full Table III corpus —
per-job status, error and payload, at both schedules.  The fabric can
only move where solver cycles burn, never what the campaign concludes.

Runs at the standard corpus config (bound 8 / 30 frames), like the other
corpus-equivalence suites.
"""

from repro.campaign import (expand_jobs, run_property_campaign,
                            verdict_contract)
from repro.dist import TcpTransport
from repro.formal import EngineConfig

CONFIG = EngineConfig(max_bound=8, max_frames=30)


def _fabric(workers):
    transport = TcpTransport(min_workers=workers, worker_timeout_s=120.0)
    transport.spawn_local(workers)
    return transport


def test_tcp_fabric_is_verdict_identical_on_full_corpus():
    jobs = expand_jobs(config=CONFIG)  # whole registry, fixed + buggy
    assert len(jobs) >= 12

    baseline = run_property_campaign(jobs, workers=2, schedule="cost")
    cost_fabric = _fabric(2)
    tcp_cost = run_property_campaign(jobs, schedule="cost",
                                     transport=cost_fabric)
    tcp_inventory = run_property_campaign(jobs, schedule="inventory",
                                          transport=_fabric(2))

    assert verdict_contract(tcp_cost) == verdict_contract(baseline)
    assert verdict_contract(tcp_inventory) == verdict_contract(baseline)
    assert [r.job_id for r in tcp_cost] == [j.job_id for j in jobs]
    # Every property task executed on a remote agent, none locally.
    stats = cost_fabric.worker_stats()
    assert sum(entry["tasks"] for entry in stats) > 0
    assert all(entry["departed"] == "shutdown" for entry in stats)
