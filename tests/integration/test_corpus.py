"""Integration tests: the full AutoSVA flow over the evaluation corpus.

These are the reproduction's acceptance tests — each asserts one Table III
row's outcome *shape*.  They take a few seconds each (pure-Python model
checking); the heavyweight aggregate runs live in benchmarks/.
"""

import pytest

from repro.core import generate_ft, run_fv
from repro.designs import CORPUS, case_by_id
from repro.formal import EngineConfig

CONFIG = EngineConfig(max_bound=8, max_frames=30)


def _run(case, variant):
    src = case.dut_source() if variant == "fixed" else case.buggy_source()
    ft = generate_ft(src, module_name=case.dut_module)
    return ft, run_fv(ft, [src] + case.extra_sources(), CONFIG)


class TestGenerationAcrossCorpus:
    @pytest.mark.parametrize("case", CORPUS, ids=lambda c: c.case_id)
    def test_ft_generates_for_every_module(self, case):
        ft = generate_ft(case.dut_source(), module_name=case.dut_module)
        assert ft.property_count > 0
        assert ft.annotation_loc > 0
        # Generated files are themselves valid inputs for our frontend.
        from repro.rtl.parser import parse_design
        from repro.rtl.preprocess import strip_ifdefs
        parse_design(strip_ifdefs(ft.prop_sv))
        parse_design(ft.bind_sv)

    @pytest.mark.parametrize("case", [c for c in CORPUS if c.buggy_file],
                             ids=lambda c: c.case_id)
    def test_buggy_and_fixed_share_annotations(self, case):
        """The same FT finds the bug and proves the fix — annotations
        describe the *interface*, not the implementation."""
        ft_fixed = generate_ft(case.dut_source(),
                               module_name=case.dut_module)
        ft_buggy = generate_ft(case.buggy_source(),
                               module_name=case.dut_module)
        fixed_labels = {a.full_label() for a in ft_fixed.prop.assertions}
        buggy_labels = {a.full_label() for a in ft_buggy.prop.assertions}
        assert fixed_labels == buggy_labels


class TestTable3Shapes:
    def test_a2_tlb_full_proof(self):
        _, report = _run(case_by_id("A2"), "fixed")
        assert report.proof_rate == 1.0, report.summary()

    def test_a4_lsu_known_bug(self):
        case = case_by_id("A4")
        _, report = _run(case, "buggy")
        assert any("eventual_response" in r.name
                   for r in report.cex_results), report.summary()
        _, fixed = _run(case, "fixed")
        assert fixed.proof_rate == 1.0, fixed.summary()

    def test_o1_noc_buffer_bug_and_fix(self):
        case = case_by_id("O1")
        _, buggy = _run(case, "buggy")
        assert any("eventual_response" in r.name
                   for r in buggy.cex_results), buggy.summary()
        _, fixed = _run(case, "fixed")
        assert fixed.proof_rate == 1.0, fixed.summary()

    def test_e10_fairness_story(self):
        case = case_by_id("E10")
        _, starving = _run(case, "buggy")
        cex = [r for r in starving.cex_results
               if "eventual_response" in r.name]
        assert cex and cex[0].depth <= 4  # paper: <4-cycle trace
        _, fair = _run(case, "fixed")
        assert fair.proof_rate == 1.0, fair.summary()


class TestSubmoduleReuse:
    def test_mmu_links_ptw_ft(self):
        """Paper: 'the MMU FT was set up after 10 minutes of adding a new
        transaction and reusing the properties of its submodules' FTs'."""
        from repro.core import SubmoduleLink
        from repro.designs import load
        ptw_ft = generate_ft(load("ariane/ptw.sv"))
        case = case_by_id("A3")
        mmu_ft = generate_ft(case.dut_source(), module_name=case.dut_module,
                             submodules=[SubmoduleLink(ft=ptw_ft,
                                                       mode="am")])
        assert mmu_ft.total_property_count > mmu_ft.property_count
        report = run_fv(mmu_ft, [case.dut_source()] + case.extra_sources(),
                        CONFIG)
        # The linked PTW checker observes the PTW instance inside the MMU:
        # its properties appear in the report under the ptw bind.
        names = [r.name for r in report.results]
        assert any("u_ptw_sva" in name for name in names), names
        assert any("u_mmu_sva" in name for name in names), names
        assert report.proof_rate == 1.0, report.summary()
