"""Corpus-wide sweep equivalence: batched vs per-property verdicts.

The acceptance contract of the hot-path overhaul: on every Table III
design (both variants), the batched engine — one bmc_sweep for all
asserts+covers, one for the liveness lassos, shared proof contexts —
returns property-for-property the same statuses as the legacy
property-at-a-time orchestration, with identical depths for the exact
(trace-backed) verdicts.  Runs at the standard corpus config (bound 8 /
30 frames) — the same comparison `benchmarks/bench_formal_hotpath.py
--compare` gates on; *smaller* bounds are a trap, not a speedup: a CEX
pushed beyond the hunt bound must be rediscovered through a full proof
engine run, which costs orders of magnitude more than hunting it.

Granularity equivalence (property-sharded campaign == design jobs) is
asserted in ``tests/campaign/test_property_granularity.py`` on top of the
same batched engine, so together the two files pin batched == per-property
== sharded.
"""

import pytest

from repro.api.compile import CompileCache
from repro.core import generate_ft
from repro.designs import CORPUS
from repro.formal import EngineConfig, FormalEngine

CONFIG = EngineConfig(max_bound=8, max_frames=30)

_CACHE = CompileCache()


def _variants():
    for case in CORPUS:
        yield pytest.param(case, "fixed", id=f"{case.case_id}.fixed")
        if case.buggy_file:
            yield pytest.param(case, "buggy", id=f"{case.case_id}.buggy")


def _outcome(report):
    out = []
    for r in report.results:
        depth = r.depth if r.status in ("cex", "covered") else None
        trace_shape = None
        if r.trace is not None:
            # loop_start is deliberately NOT compared: a lasso CEX at
            # minimal depth can snapshot its loop at different cycles in
            # different (equally valid) witness models.
            trace_shape = (r.trace.depth, sorted(r.trace.cycles))
        out.append((r.name, r.kind, r.status, depth, trace_shape))
    return out


@pytest.mark.parametrize("case,variant", list(_variants()))
def test_batched_sweep_matches_per_property(case, variant):
    source = (case.dut_source() if variant == "fixed"
              else case.buggy_source())
    ft = generate_ft(source, module_name=case.dut_module)
    merged = "\n".join([source] + case.extra_sources()
                       + ft.testbench_sources())
    compiled = _CACHE.get_or_compile([merged], case.dut_module)
    batched = FormalEngine(compiled.system, CONFIG,
                           batched=True).check_all()
    legacy = FormalEngine(compiled.system, CONFIG,
                          batched=False).check_all()
    assert _outcome(batched) == _outcome(legacy), \
        f"{case.case_id}.{variant}: batched != per-property"
