"""Sanity tests for the evaluation corpus registry and its RTL."""

import pytest

from repro.core import generate_ft
from repro.designs import CORPUS, case_by_id, load, verilog_path
from repro.rtl.parser import parse_design
from repro.rtl.preprocess import strip_ifdefs
from repro.rtl.synth import synthesize


class TestRegistry:
    def test_table3_rows_present(self):
        ids = {case.case_id for case in CORPUS}
        assert {"A1", "A2", "A3", "A4", "A5", "O1", "O2"} <= ids

    def test_case_lookup(self):
        assert case_by_id("A3").dut_module == "mmu"
        with pytest.raises(KeyError):
            case_by_id("Z9")

    def test_files_exist(self):
        for case in CORPUS:
            assert verilog_path(case.dut_file).exists(), case.dut_file
            if case.buggy_file:
                assert verilog_path(case.buggy_file).exists()
            for extra in case.extra_files:
                assert verilog_path(extra).exists()

    @pytest.mark.parametrize("case", CORPUS, ids=lambda c: c.case_id)
    def test_sources_parse(self, case):
        for source in filter(None, [case.dut_source(),
                                    case.buggy_source()]):
            design = parse_design(strip_ifdefs(source))
            assert design.module(case.dut_module)

    @pytest.mark.parametrize("case", CORPUS, ids=lambda c: c.case_id)
    def test_duts_synthesize_standalone(self, case):
        merged = "\n".join([case.dut_source()] + case.extra_sources())
        ts = synthesize(merged, case.dut_module)
        assert ts.latches, f"{case.case_id}: no state?"

    @pytest.mark.parametrize("case", CORPUS, ids=lambda c: c.case_id)
    def test_annotations_yield_transactions(self, case):
        ft = generate_ft(case.dut_source(), module_name=case.dut_module)
        assert ft.transactions
        for tx in ft.transactions:
            assert tx.p.val is not None and tx.q.val is not None

    def test_buggy_and_fixed_differ_only_in_logic(self):
        """Interface (ports + annotations) identical across variants."""
        from repro.core import scan_rtl
        for case in CORPUS:
            if not case.buggy_file:
                continue
            fixed = scan_rtl(case.dut_source(), case.dut_module)
            buggy = scan_rtl(case.buggy_source(), case.dut_module)
            assert [(p.direction, p.name, p.width_text)
                    for p in fixed.ports] == \
                [(p.direction, p.name, p.width_text) for p in buggy.ports]
            assert [t for _, t in fixed.annotation_lines] == \
                [t for _, t in buggy.annotation_lines]

    def test_mem_engine_is_system_context(self):
        src = load("openpiton/mem_engine.sv")
        design = parse_design(src)
        assert design.module("mem_engine")
        # It can be composed with the buffer into a closed system.
        buffer_src = load("openpiton/noc_buffer_fixed.sv")
        top = """
module system (input wire clk_i, input wire rst_ni, input wire go_i,
               output wire busy_o);
  wire rv; wire ra; wire [1:0] rm;
  wire ev; wire ea; wire [1:0] em;
  mem_engine u_eng (.clk_i(clk_i), .rst_ni(rst_ni), .go_i(go_i),
    .busy_o(busy_o),
    .noc1buffer_req_val(rv), .noc1buffer_req_ack(ra),
    .noc1buffer_req_mshrid(rm), .noc1buffer_enc_val(ev),
    .noc1buffer_enc_ack(ea), .noc1buffer_enc_mshrid(em));
  noc_buffer u_buf (.clk_i(clk_i), .rst_ni(rst_ni),
    .noc1buffer_req_val(rv), .noc1buffer_req_ack(ra),
    .noc1buffer_req_mshrid(rm), .noc1buffer_enc_val(ev),
    .noc1buffer_enc_ack(ea), .noc1buffer_enc_mshrid(em));
endmodule
"""
        ts = synthesize("\n".join([src, buffer_src, top]), "system")
        assert ts.latches
