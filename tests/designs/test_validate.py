"""Corpus health-check tests (the validate() registry guard)."""

import dataclasses

import pytest

from repro.designs import CORPUS, CorpusError, load, validate


class TestValidate:
    def test_shipped_corpus_is_healthy(self):
        assert validate() == []

    def test_missing_file_reported_with_case_context(self):
        broken = dataclasses.replace(CORPUS[0],
                                     dut_file="ariane/not_there.sv")
        issues = validate((broken,), parse=False)
        assert len(issues) == 1
        assert issues[0].kind == "missing"
        assert issues[0].case_id == broken.case_id
        assert "not_there.sv" in str(issues[0])

    def test_wrong_module_reported(self):
        broken = dataclasses.replace(CORPUS[0], dut_module="ghost")
        issues = validate((broken,))
        assert any(issue.kind == "wrong-module" for issue in issues)

    def test_raise_on_issue_collects_everything(self):
        broken = dataclasses.replace(
            CORPUS[0], dut_file="ariane/not_there.sv",
            extra_files=["openpiton/also_missing.sv"])
        with pytest.raises(CorpusError) as excinfo:
            validate((broken,), raise_on_issue=True)
        message = str(excinfo.value)
        assert "not_there.sv" in message and "also_missing.sv" in message

    def test_load_raises_clear_error(self):
        with pytest.raises(CorpusError, match="missing"):
            load("ariane/definitely_not_a_file.sv")
