"""Tests for trace extraction and rendering."""

from repro.formal import TransitionSystem, bmc_safety
from repro.formal.trace import Trace


def _failing_counter():
    ts = TransitionSystem("t")
    g = ts.aig
    lats = ts.add_latch_vec("cnt", 2, init=0)
    bits = [lat.node for lat in lats]
    nxt = g.add_vec(bits, g.const_vec(1, 2))
    for lat, n in zip(lats, nxt):
        ts.set_next(lat, n)
    ts.add_observable("cnt", bits)
    bad = g.NOT(g.eq_vec(bits, g.const_vec(2, 2)))
    return ts, bad


class TestTrace:
    def test_values_per_cycle(self):
        ts, assert_lit = _failing_counter()
        result = bmc_safety(ts, assert_lit, 5, "not2")
        trace = result.trace
        assert len(trace) == 3
        assert [trace.value("cnt", k) for k in range(3)] == [0, 1, 2]

    def test_render_contains_values_and_name(self):
        ts, assert_lit = _failing_counter()
        trace = bmc_safety(ts, assert_lit, 5, "not2").trace
        text = trace.render()
        assert "not2" in text
        assert "cnt" in text
        assert "3 cycles" in text

    def test_render_marks_loop(self):
        trace = Trace(property_name="p", cycles={"x": [0, 1, 1]}, depth=3,
                      loop_start=1)
        assert "loop back to cycle 1" in trace.render()

    def test_empty_trace_render(self):
        trace = Trace(property_name="p")
        assert "empty trace" in trace.render()

    def test_hex_rendering_of_wide_values(self):
        trace = Trace(property_name="p", cycles={"v": [255, 16]}, depth=2)
        text = trace.render()
        assert "ff" in text and "10" in text
