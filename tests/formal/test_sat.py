"""Unit and property-based tests for the CDCL SAT solver."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.formal.sat import Solver, luby


class TestBasics:
    def test_empty_formula_is_sat(self):
        assert Solver().solve()

    def test_single_unit(self):
        s = Solver()
        a = s.new_var()
        assert s.add_clause([a])
        assert s.solve()
        assert s.value(a) is True

    def test_contradictory_units(self):
        s = Solver()
        a = s.new_var()
        assert s.add_clause([a])
        assert not s.add_clause([-a])
        assert not s.solve()

    def test_implication_chain(self):
        s = Solver()
        vs = [s.new_var() for _ in range(10)]
        for x, y in zip(vs, vs[1:]):
            s.add_clause([-x, y])
        s.add_clause([vs[0]])
        assert s.solve()
        assert all(s.value(v) for v in vs)

    def test_simple_unsat(self):
        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        s.add_clause([a, -b])
        s.add_clause([-a, b])
        s.add_clause([-a, -b])
        assert not s.solve()

    def test_tautology_ignored(self):
        s = Solver()
        a = s.new_var()
        assert s.add_clause([a, -a])
        assert s.solve()

    def test_duplicate_literals_collapse(self):
        s = Solver()
        a = s.new_var()
        assert s.add_clause([a, a, a])
        assert s.solve()
        assert s.value(a) is True

    def test_invalid_literal_rejected(self):
        s = Solver()
        s.new_var()
        with pytest.raises(ValueError):
            s.add_clause([0])
        with pytest.raises(ValueError):
            s.add_clause([5])

    def test_model_covers_all_vars(self):
        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a])
        s.add_clause([b])
        assert s.solve()
        assert set(s.model()) == {a, b}


class TestAssumptions:
    def test_sat_under_assumption(self):
        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([-a, b])
        assert s.solve(assumptions=[a])
        assert s.value(b) is True

    def test_unsat_under_assumption_then_sat(self):
        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([-a, b])
        assert not s.solve(assumptions=[a, -b])
        # The solver must remain usable.
        assert s.solve(assumptions=[a])
        assert s.solve(assumptions=[-b])
        assert s.value(a) is False

    def test_conflicting_assumptions(self):
        s = Solver()
        a = s.new_var()
        assert not s.solve(assumptions=[a, -a])

    def test_core_is_subset_of_assumptions(self):
        s = Solver()
        a, b, c = s.new_var(), s.new_var(), s.new_var()
        s.add_clause([-a, -b])
        assert not s.solve(assumptions=[a, b, c])
        assert set(s.core) <= {a, b, c}

    def test_incremental_reuse(self):
        s = Solver()
        vs = [s.new_var() for _ in range(8)]
        for x, y in zip(vs, vs[1:]):
            s.add_clause([-x, y])
        for _ in range(5):
            assert s.solve(assumptions=[vs[0]])
            assert s.value(vs[-1]) is True
            assert not s.solve(assumptions=[vs[0], -vs[-1]])

    def test_invalid_assumption_rejected(self):
        s = Solver()
        s.new_var()
        with pytest.raises(ValueError):
            s.solve(assumptions=[7])


class TestLuby:
    def test_prefix(self):
        assert [luby(i) for i in range(1, 16)] == \
            [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]


def _brute_force(num_vars, clauses):
    """Reference SAT decision by enumeration."""
    for bits in itertools.product([False, True], repeat=num_vars):
        ok = True
        for clause in clauses:
            if not any(bits[abs(l) - 1] == (l > 0) for l in clause):
                ok = False
                break
        if ok:
            return True
    return False


@st.composite
def cnf_instances(draw):
    num_vars = draw(st.integers(min_value=1, max_value=6))
    num_clauses = draw(st.integers(min_value=1, max_value=14))
    clauses = []
    for _ in range(num_clauses):
        width = draw(st.integers(min_value=1, max_value=3))
        clause = [
            draw(st.integers(min_value=1, max_value=num_vars))
            * draw(st.sampled_from([1, -1]))
            for _ in range(width)
        ]
        clauses.append(clause)
    return num_vars, clauses


class TestAgainstBruteForce:
    @given(cnf_instances())
    @settings(max_examples=150, deadline=None)
    def test_matches_enumeration(self, instance):
        num_vars, clauses = instance
        s = Solver()
        for _ in range(num_vars):
            s.new_var()
        ok = True
        for clause in clauses:
            ok = s.add_clause(clause) and ok
        result = s.solve() if ok else False
        assert result == _brute_force(num_vars, clauses)
        if result:
            # The model must actually satisfy every clause.
            for clause in clauses:
                assert any(s.value(l) for l in clause)

    @given(cnf_instances(), st.lists(st.integers(min_value=1, max_value=6),
                                     max_size=3))
    @settings(max_examples=100, deadline=None)
    def test_assumptions_match_added_units(self, instance, assumption_vars):
        num_vars, clauses = instance
        assumptions = [v for v in assumption_vars if v <= num_vars]
        s = Solver()
        for _ in range(num_vars):
            s.new_var()
        ok = True
        for clause in clauses:
            ok = s.add_clause(clause) and ok
        under_assumptions = s.solve(assumptions=assumptions) if ok else False
        expected = _brute_force(num_vars,
                                clauses + [[a] for a in assumptions])
        assert under_assumptions == expected
