"""Unit and property-based tests for the CDCL SAT solver."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.formal.sat import Solver, luby


class TestBasics:
    def test_empty_formula_is_sat(self):
        assert Solver().solve()

    def test_single_unit(self):
        s = Solver()
        a = s.new_var()
        assert s.add_clause([a])
        assert s.solve()
        assert s.value(a) is True

    def test_contradictory_units(self):
        s = Solver()
        a = s.new_var()
        assert s.add_clause([a])
        assert not s.add_clause([-a])
        assert not s.solve()

    def test_implication_chain(self):
        s = Solver()
        vs = [s.new_var() for _ in range(10)]
        for x, y in zip(vs, vs[1:]):
            s.add_clause([-x, y])
        s.add_clause([vs[0]])
        assert s.solve()
        assert all(s.value(v) for v in vs)

    def test_simple_unsat(self):
        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        s.add_clause([a, -b])
        s.add_clause([-a, b])
        s.add_clause([-a, -b])
        assert not s.solve()

    def test_tautology_ignored(self):
        s = Solver()
        a = s.new_var()
        assert s.add_clause([a, -a])
        assert s.solve()

    def test_duplicate_literals_collapse(self):
        s = Solver()
        a = s.new_var()
        assert s.add_clause([a, a, a])
        assert s.solve()
        assert s.value(a) is True

    def test_invalid_literal_rejected(self):
        s = Solver()
        s.new_var()
        with pytest.raises(ValueError):
            s.add_clause([0])
        with pytest.raises(ValueError):
            s.add_clause([5])

    def test_model_covers_all_vars(self):
        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a])
        s.add_clause([b])
        assert s.solve()
        assert set(s.model()) == {a, b}


class TestAssumptions:
    def test_sat_under_assumption(self):
        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([-a, b])
        assert s.solve(assumptions=[a])
        assert s.value(b) is True

    def test_unsat_under_assumption_then_sat(self):
        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([-a, b])
        assert not s.solve(assumptions=[a, -b])
        # The solver must remain usable.
        assert s.solve(assumptions=[a])
        assert s.solve(assumptions=[-b])
        assert s.value(a) is False

    def test_conflicting_assumptions(self):
        s = Solver()
        a = s.new_var()
        assert not s.solve(assumptions=[a, -a])

    def test_core_is_subset_of_assumptions(self):
        s = Solver()
        a, b, c = s.new_var(), s.new_var(), s.new_var()
        s.add_clause([-a, -b])
        assert not s.solve(assumptions=[a, b, c])
        assert set(s.core) <= {a, b, c}

    def test_incremental_reuse(self):
        s = Solver()
        vs = [s.new_var() for _ in range(8)]
        for x, y in zip(vs, vs[1:]):
            s.add_clause([-x, y])
        for _ in range(5):
            assert s.solve(assumptions=[vs[0]])
            assert s.value(vs[-1]) is True
            assert not s.solve(assumptions=[vs[0], -vs[-1]])

    def test_invalid_assumption_rejected(self):
        s = Solver()
        s.new_var()
        with pytest.raises(ValueError):
            s.solve(assumptions=[7])


class TestLuby:
    def test_prefix(self):
        assert [luby(i) for i in range(1, 16)] == \
            [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]


def _brute_force(num_vars, clauses):
    """Reference SAT decision by enumeration."""
    for bits in itertools.product([False, True], repeat=num_vars):
        ok = True
        for clause in clauses:
            if not any(bits[abs(l) - 1] == (l > 0) for l in clause):
                ok = False
                break
        if ok:
            return True
    return False


@st.composite
def cnf_instances(draw):
    num_vars = draw(st.integers(min_value=1, max_value=6))
    num_clauses = draw(st.integers(min_value=1, max_value=14))
    clauses = []
    for _ in range(num_clauses):
        width = draw(st.integers(min_value=1, max_value=3))
        clause = [
            draw(st.integers(min_value=1, max_value=num_vars))
            * draw(st.sampled_from([1, -1]))
            for _ in range(width)
        ]
        clauses.append(clause)
    return num_vars, clauses


class TestAgainstBruteForce:
    @given(cnf_instances())
    @settings(max_examples=150, deadline=None)
    def test_matches_enumeration(self, instance):
        num_vars, clauses = instance
        s = Solver()
        for _ in range(num_vars):
            s.new_var()
        ok = True
        for clause in clauses:
            ok = s.add_clause(clause) and ok
        result = s.solve() if ok else False
        assert result == _brute_force(num_vars, clauses)
        if result:
            # The model must actually satisfy every clause.
            for clause in clauses:
                assert any(s.value(l) for l in clause)

    @given(cnf_instances(), st.lists(st.integers(min_value=1, max_value=6),
                                     max_size=3))
    @settings(max_examples=100, deadline=None)
    def test_assumptions_match_added_units(self, instance, assumption_vars):
        num_vars, clauses = instance
        assumptions = [v for v in assumption_vars if v <= num_vars]
        s = Solver()
        for _ in range(num_vars):
            s.new_var()
        ok = True
        for clause in clauses:
            ok = s.add_clause(clause) and ok
        under_assumptions = s.solve(assumptions=assumptions) if ok else False
        expected = _brute_force(num_vars,
                                clauses + [[a] for a in assumptions])
        assert under_assumptions == expected


class TestIncrementalAssumptionSequences:
    """Trail reuse across shifting assumption sets must never change
    answers: one incremental solver vs a fresh solver per query."""

    @given(cnf_instances(),
           st.lists(st.lists(st.integers(min_value=-6, max_value=6)
                             .filter(lambda x: x != 0),
                             max_size=4),
                    min_size=2, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_matches_fresh_solver_per_query(self, instance, queries):
        num_vars, clauses = instance
        incremental = Solver()
        for _ in range(num_vars):
            incremental.new_var()
        ok = True
        for clause in clauses:
            ok = incremental.add_clause(clause) and ok
        for assumptions in queries:
            assumptions = [a for a in assumptions
                           if abs(a) <= num_vars]
            got = incremental.solve(assumptions=assumptions) if ok else False
            expected = _brute_force(
                num_vars, clauses + [[a] for a in assumptions])
            assert got == expected, (clauses, assumptions)
            if got:
                for clause in clauses:
                    assert any(incremental.value(l) for l in clause)
                for a in assumptions:
                    assert incremental.value(a) is True


class TestLearnedClauseReduction:
    def _hard_chain(self, s, n=60):
        """A random 3-SAT instance near the phase transition: enough real
        conflict-driven learning that clauses with LBD above the glue
        threshold exist when reduction triggers."""
        import random
        rng = random.Random(11)
        vs = [s.new_var() for _ in range(n)]
        clauses = []
        for _ in range(int(4.3 * n)):
            trio = rng.sample(vs, 3)
            clause = [v if rng.random() < 0.5 else -v for v in trio]
            clauses.append(clause)
        return vs, clauses

    def test_reduction_preserves_answers(self):
        eager = Solver()
        eager._max_learnts = 10          # reduce constantly
        lazy = Solver()
        lazy._max_learnts = 10 ** 9      # never reduce
        _, clauses = self._hard_chain(eager)
        self._hard_chain(lazy)
        answers = []
        for solver in (eager, lazy):
            ok = True
            for clause in clauses:
                ok = solver.add_clause(clause) and ok
            answers.append(solver.solve() if ok else False)
        assert answers[0] == answers[1]
        # The eager solver must actually have deleted something.
        assert eager.stats.clauses_deleted > 0
        assert eager.stats.reductions > 0
        assert lazy.stats.clauses_deleted == 0

    def test_stats_carry_wall_time_and_deletions(self):
        s = Solver()
        a = s.new_var()
        s.add_clause([a])
        assert s.solve()
        stats = s.stats.as_dict()
        assert {"wall_time_s", "clauses_deleted",
                "reductions"} <= set(stats)
        assert stats["wall_time_s"] >= 0.0
        assert stats["solve_calls"] == 1
