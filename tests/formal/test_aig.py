"""Tests for the and-inverter graph: constructors vs. Python semantics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.formal.aig import AIG, FALSE, TRUE


@pytest.fixture
def graph():
    return AIG()


class TestConstantFolding:
    def test_and_false(self, graph):
        a = graph.new_input("a")
        assert graph.AND(a, FALSE) == FALSE
        assert graph.AND(FALSE, a) == FALSE

    def test_and_true(self, graph):
        a = graph.new_input("a")
        assert graph.AND(a, TRUE) == a
        assert graph.AND(TRUE, a) == a

    def test_and_idempotent(self, graph):
        a = graph.new_input("a")
        assert graph.AND(a, a) == a

    def test_and_complement(self, graph):
        a = graph.new_input("a")
        assert graph.AND(a, graph.NOT(a)) == FALSE

    def test_hash_consing_commutative(self, graph):
        a, b = graph.new_input("a"), graph.new_input("b")
        assert graph.AND(a, b) == graph.AND(b, a)
        assert graph.num_ands == 1

    def test_not_involution(self):
        assert AIG.NOT(AIG.NOT(6)) == 6

    def test_mux_constant_select(self, graph):
        a, b = graph.new_input("a"), graph.new_input("b")
        assert graph.MUX(TRUE, a, b) == a
        assert graph.MUX(FALSE, a, b) == b
        assert graph.MUX(a, b, b) == b


class TestEval:
    def test_or_truth_table(self, graph):
        a, b = graph.new_input("a"), graph.new_input("b")
        out = graph.OR(a, b)
        for va in (False, True):
            for vb in (False, True):
                assert graph.eval_literal(out, {a: va, b: vb}) == (va or vb)

    def test_xor_truth_table(self, graph):
        a, b = graph.new_input("a"), graph.new_input("b")
        out = graph.XOR(a, b)
        for va in (False, True):
            for vb in (False, True):
                assert graph.eval_literal(out, {a: va, b: vb}) == (va != vb)

    def test_implies(self, graph):
        a, b = graph.new_input("a"), graph.new_input("b")
        out = graph.IMPLIES(a, b)
        assert graph.eval_literal(out, {a: True, b: False}) is False
        assert graph.eval_literal(out, {a: False, b: False}) is True

    def test_constants(self, graph):
        assert graph.eval_literal(TRUE, {}) is True
        assert graph.eval_literal(FALSE, {}) is False

    def test_deep_chain_no_recursion_error(self, graph):
        a = graph.new_input("a")
        lit = a
        for _ in range(5000):
            lit = graph.AND(lit, a)
        # idempotent folding keeps this as `a`; force structure with XOR
        lit = a
        b = graph.new_input("b")
        for _ in range(3000):
            lit = graph.XOR(lit, b)
        assert graph.eval_literal(lit, {a: True, b: True}) in (True, False)


class TestVectors:
    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=60, deadline=None)
    def test_add_vec_semantics(self, x, y):
        graph = AIG()
        xs = graph.const_vec(x, 8)
        ys = graph.const_vec(y, 8)
        out = graph.add_vec(xs, ys)
        value = sum(1 << i for i, bit in enumerate(out)
                    if graph.eval_literal(bit, {}))
        assert value == (x + y) & 0xFF

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=60, deadline=None)
    def test_sub_vec_semantics(self, x, y):
        graph = AIG()
        out = graph.sub_vec(graph.const_vec(x, 8), graph.const_vec(y, 8))
        value = sum(1 << i for i, bit in enumerate(out)
                    if graph.eval_literal(bit, {}))
        assert value == (x - y) & 0xFF

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=60, deadline=None)
    def test_ult_vec_semantics(self, x, y):
        graph = AIG()
        out = graph.ult_vec(graph.const_vec(x, 8), graph.const_vec(y, 8))
        assert graph.eval_literal(out, {}) == (x < y)

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=40, deadline=None)
    def test_eq_vec_semantics(self, x, y):
        graph = AIG()
        out = graph.eq_vec(graph.const_vec(x, 8), graph.const_vec(y, 8))
        assert graph.eval_literal(out, {}) == (x == y)

    def test_eq_vec_width_mismatch(self):
        graph = AIG()
        with pytest.raises(ValueError):
            graph.eq_vec(graph.const_vec(1, 2), graph.const_vec(1, 3))

    def test_const_vec_bits(self):
        graph = AIG()
        assert graph.const_vec(0b1010, 4) == [FALSE, TRUE, FALSE, TRUE]

    def test_mux_vec(self):
        graph = AIG()
        sel = graph.new_input("sel")
        out = graph.mux_vec(sel, graph.const_vec(3, 2), graph.const_vec(1, 2))
        as_int = lambda env: sum(
            1 << i for i, b in enumerate(out) if graph.eval_literal(b, env))
        assert as_int({sel: True}) == 3
        assert as_int({sel: False}) == 1
