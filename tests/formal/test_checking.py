"""Tests for the model-checking algorithms: BMC, k-induction, PDR, L2S.

Small hand-built transition systems with known behaviours serve as ground
truth for all four algorithms.
"""

import pytest

from repro.formal import (AIG, FALSE, TRUE, EngineConfig, FormalEngine,
                          TransitionSystem, Unroller, bmc_cover, bmc_safety,
                          compile_liveness, prove_safety)
from repro.formal.coi import coi_latches, latch_support
from repro.formal.pdr import pdr_prove


def make_counter(width=3, wrap=True):
    """A free-running counter; wraps or saturates at the top value."""
    ts = TransitionSystem("counter")
    g = ts.aig
    lats = ts.add_latch_vec("cnt", width, init=0)
    bits = [lat.node for lat in lats]
    inc = g.add_vec(bits, g.const_vec(1, width))
    if wrap:
        for lat, nxt in zip(lats, inc):
            ts.set_next(lat, nxt)
    else:
        top = g.eq_vec(bits, g.const_vec((1 << width) - 1, width))
        for lat, nxt, cur in zip(lats, inc, bits):
            ts.set_next(lat, g.MUX(top, cur, nxt))
    ts.add_observable("cnt", bits)
    return ts, bits


class TestBmc:
    def test_finds_violation_at_exact_depth(self):
        ts, bits = make_counter()
        g = ts.aig
        bad_at_5 = g.NOT(g.eq_vec(bits, g.const_vec(5, 3)))
        result = bmc_safety(ts, bad_at_5, max_depth=10)
        assert result.failed and result.depth == 5
        assert result.trace.value("cnt", 5) == 5
        assert [result.trace.value("cnt", k) for k in range(6)] == \
            [0, 1, 2, 3, 4, 5]

    def test_no_violation_within_bound(self):
        ts, bits = make_counter()
        g = ts.aig
        bad_at_5 = g.NOT(g.eq_vec(bits, g.const_vec(5, 3)))
        result = bmc_safety(ts, bad_at_5, max_depth=4)
        assert not result.failed
        assert result.depth == 4

    def test_cover_reachable(self):
        ts, bits = make_counter()
        g = ts.aig
        at_3 = g.eq_vec(bits, g.const_vec(3, 3))
        result = bmc_cover(ts, at_3, max_depth=10)
        assert result.failed and result.depth == 3

    def test_cover_unreachable_within_bound(self):
        ts, bits = make_counter(wrap=False)
        g = ts.aig
        # Saturating counter: value 7 is reached at depth 7, never 8+...
        at_7 = ts.aig.eq_vec(bits, g.const_vec(7, 3))
        assert not bmc_cover(ts, at_7, max_depth=6).failed
        assert bmc_cover(ts, at_7, max_depth=7).failed

    def test_constraint_excludes_paths(self):
        ts = TransitionSystem("constrained")
        g = ts.aig
        inp = ts.add_input("x")
        lat = ts.add_latch("seen_x", init=False)
        ts.set_next(lat, g.OR(lat.node, inp))
        ts.add_constraint("never_x", g.NOT(inp))
        result = bmc_safety(ts, g.NOT(lat.node), max_depth=8)
        assert not result.failed  # the constraint forbids setting x


class TestInduction:
    def test_proves_even_invariant(self):
        ts = TransitionSystem("even")
        g = ts.aig
        lats = ts.add_latch_vec("cnt", 3, init=0)
        bits = [lat.node for lat in lats]
        inc2 = g.add_vec(bits, g.const_vec(2, 3))
        for lat, nxt in zip(lats, inc2):
            ts.set_next(lat, nxt)
        result = prove_safety(ts, g.NOT(bits[0]), max_k=4)
        assert result.proven

    def test_finds_cex_in_base_case(self):
        ts, bits = make_counter()
        g = ts.aig
        result = prove_safety(ts, g.NOT(g.eq_vec(bits, g.const_vec(2, 3))),
                              max_k=5)
        assert result.failed
        assert result.cex_trace.depth == 3  # cycles 0..2

    def test_simple_path_closes_saturating_counter(self):
        ts, bits = make_counter(wrap=False)
        g = ts.aig
        # "counter never wraps to 0 after leaving it" — inductive only with
        # the simple-path constraint (needs recurrence-diameter reasoning).
        not_zero_again = TRUE  # trivially true property proves at k=0
        result = prove_safety(ts, not_zero_again, max_k=2)
        assert result.proven


class TestPdr:
    def test_proves_even_invariant(self):
        ts = TransitionSystem("even")
        g = ts.aig
        lats = ts.add_latch_vec("cnt", 4, init=0)
        bits = [lat.node for lat in lats]
        inc2 = g.add_vec(bits, g.const_vec(2, 4))
        for lat, nxt in zip(lats, inc2):
            ts.set_next(lat, nxt)
        result = pdr_prove(ts, g.NOT(bits[0]))
        assert result.proven

    def test_finds_deep_violation(self):
        ts, bits = make_counter(width=4)
        g = ts.aig
        bad_at_11 = g.NOT(g.eq_vec(bits, g.const_vec(11, 4)))
        result = pdr_prove(ts, bad_at_11)
        assert result.failed
        assert result.cex_depth == 11

    def test_proves_unreachable_value_with_constraint(self):
        # Counter increments only when the constrained input allows.
        ts = TransitionSystem("gated")
        g = ts.aig
        inp = ts.add_input("en")
        lats = ts.add_latch_vec("cnt", 3, init=0)
        bits = [lat.node for lat in lats]
        inc = g.add_vec(bits, g.const_vec(1, 3))
        for lat, nxt, cur in zip(lats, inc, bits):
            ts.set_next(lat, g.MUX(inp, nxt, cur))
        ts.add_constraint("never_en", g.NOT(inp))
        result = pdr_prove(ts, g.eq_vec(bits, g.const_vec(0, 3)))
        assert result.proven

    def test_trivially_true(self):
        ts, _ = make_counter()
        assert pdr_prove(ts, TRUE).proven

    def test_trivially_false_reported_failed(self):
        ts, _ = make_counter()
        result = pdr_prove(ts, FALSE)
        assert result.failed


class TestLiveness:
    def _request_system(self, responds):
        ts = TransitionSystem("live")
        g = ts.aig
        req = ts.add_input("req")
        gnt = ts.add_latch("gnt", init=False)
        ts.set_next(gnt, req if responds else FALSE)
        pending = ts.pending_monitor("p", trigger=req, discharge=gnt.node)
        ts.add_liveness("ev_gnt", g.NOT(pending))
        ts.add_observable("req", [req])
        return ts

    def test_lasso_found_when_never_responding(self):
        ts = self._request_system(responds=False)
        comp = compile_liveness(ts)
        bad = comp.bad_lits["ev_gnt"]
        result = bmc_cover(ts, bad, max_depth=10)
        assert result.failed

    def test_proof_when_always_responding(self):
        ts = self._request_system(responds=True)
        comp = compile_liveness(ts)
        bad = comp.bad_lits["ev_gnt"]
        assert not bmc_cover(ts, bad, max_depth=8).failed
        assert pdr_prove(ts, bad ^ 1).proven

    def test_fairness_restricts_lassos(self):
        # Response requires a fair input; without fairness -> lasso,
        # with fairness assumed -> proof.
        def build(with_fairness):
            ts = TransitionSystem("fair")
            g = ts.aig
            req = ts.add_input("req")
            consumer = ts.add_input("consumer_rdy")
            pend_req = ts.add_latch("pend", init=False)
            discharge = g.AND(pend_req.node, consumer)
            ts.set_next(pend_req, g.AND(g.OR(pend_req.node, req),
                                        g.NOT(discharge)))
            pending = ts.pending_monitor("p", trigger=req,
                                         discharge=discharge)
            ts.add_liveness("ev_done", g.NOT(pending))
            if with_fairness:
                ts.add_fairness("consumer_fair", consumer)
            return ts

        unfair = build(False)
        comp = compile_liveness(unfair)
        assert bmc_cover(unfair, comp.bad_lits["ev_done"], 10).failed

        fair = build(True)
        comp = compile_liveness(fair)
        bad = comp.bad_lits["ev_done"]
        assert not bmc_cover(fair, bad, 8).failed
        assert pdr_prove(fair, bad ^ 1).proven


class TestCoi:
    def test_support_finds_only_relevant_latches(self):
        ts = TransitionSystem("coi")
        g = ts.aig
        a = ts.add_latch("a", init=False)
        b = ts.add_latch("b", init=False)
        ts.set_next(a, a.node)
        ts.set_next(b, b.node)
        assert latch_support(ts, [a.node]) == {a.node}
        coi = coi_latches(ts, [a.node])
        assert [lat.name for lat in coi] == ["a"]

    def test_closure_follows_next_functions(self):
        ts = TransitionSystem("coi2")
        g = ts.aig
        a = ts.add_latch("a", init=False)
        b = ts.add_latch("b", init=False)
        c = ts.add_latch("c", init=False)
        ts.set_next(a, b.node)      # a depends on b
        ts.set_next(b, b.node)
        ts.set_next(c, c.node)      # c is unrelated
        names = {lat.name for lat in coi_latches(ts, [a.node])}
        assert names == {"a", "b"}

    def test_constraint_support_included(self):
        ts = TransitionSystem("coi3")
        g = ts.aig
        a = ts.add_latch("a", init=False)
        guard = ts.add_latch("guard", init=False)
        ts.set_next(a, a.node)
        ts.set_next(guard, guard.node)
        ts.add_constraint("g", guard.node)
        names = {lat.name for lat in coi_latches(ts, [a.node])}
        assert names == {"a", "guard"}


class TestEngine:
    def test_engine_report_shapes(self):
        def factory():
            ts, bits = make_counter()
            g = ts.aig
            ts.add_assert("never5", g.NOT(g.eq_vec(bits, g.const_vec(5, 3))))
            ts.add_cover("reach3", g.eq_vec(bits, g.const_vec(3, 3)))
            return ts

        engine = FormalEngine(factory, EngineConfig(max_bound=8))
        report = engine.check_all()
        assert report.num_properties == 2
        cex = report.by_name("never5")
        assert cex.status == "cex" and cex.depth == 5
        cover = report.by_name("reach3")
        assert cover.status == "covered" and cover.depth == 3
        assert report.proof_rate == 0.0
        assert "never5" in report.summary()

    def test_check_single_property(self):
        def factory():
            ts, bits = make_counter()
            g = ts.aig
            ts.add_assert("never5", g.NOT(g.eq_vec(bits, g.const_vec(5, 3))))
            return ts

        engine = FormalEngine(factory, EngineConfig(max_bound=8))
        result = engine.check_property("never5")
        assert result.status == "cex"
        with pytest.raises(KeyError):
            engine.check_property("nope")

    def test_kind_engine_option(self):
        def factory():
            ts = TransitionSystem("even")
            g = ts.aig
            lats = ts.add_latch_vec("cnt", 3, init=0)
            bits = [lat.node for lat in lats]
            inc2 = g.add_vec(bits, g.const_vec(2, 3))
            for lat, nxt in zip(lats, inc2):
                ts.set_next(lat, nxt)
            ts.add_assert("even", g.NOT(bits[0]))
            return ts

        engine = FormalEngine(factory, EngineConfig(max_bound=4,
                                                    proof_engine="kind"))
        report = engine.check_all()
        assert report.by_name("even").status == "proven"
