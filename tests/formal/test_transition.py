"""Tests for the transition-system container and the pending monitor."""

import pytest

from repro.formal import (FALSE, TRUE, TransitionSystem, Unroller,
                          bmc_cover, bmc_safety)


class TestConstruction:
    def test_latch_vec_init_bits(self):
        ts = TransitionSystem()
        lats = ts.add_latch_vec("v", 4, init=0b1010)
        assert [lat.init for lat in lats] == [False, True, False, True]

    def test_latch_vec_symbolic_init(self):
        ts = TransitionSystem()
        lats = ts.add_latch_vec("v", 3, init=None)
        assert all(lat.init is None for lat in lats)

    def test_latch_lookup(self):
        ts = TransitionSystem()
        lat = ts.add_latch("x")
        assert ts.is_latch_node(lat.node)
        assert ts.latch_of(lat.node) is lat
        inp = ts.add_input("i")
        assert not ts.is_latch_node(inp)

    def test_stats(self):
        ts = TransitionSystem("s")
        ts.add_input("i")
        ts.add_latch("l")
        ts.add_assert("a", TRUE)
        ts.add_cover("c", TRUE)
        ts.add_liveness("v", TRUE)
        ts.add_fairness("f", TRUE)
        ts.add_constraint("k", TRUE)
        stats = ts.stats()
        assert stats["inputs"] == 1 and stats["latches"] == 1
        assert stats["asserts"] == stats["covers"] == 1
        assert stats["liveness"] == stats["fairness"] == 1
        assert stats["constraints"] == 1


class TestPendingMonitor:
    def _system(self, same_cycle):
        ts = TransitionSystem()
        g = ts.aig
        trig = ts.add_input("trig")
        disch = ts.add_input("disch")
        pending = ts.pending_monitor("m", trig, disch,
                                     same_cycle=same_cycle)
        ts.add_observable("pending", [pending])
        return ts, g, trig, disch, pending

    def test_same_cycle_discharge_clears_immediately(self):
        ts, g, trig, disch, pending = self._system(same_cycle=True)
        # pending with trig and disch both high must be 0 (|-> semantics)
        target = g.and_many([trig, disch, pending])
        assert not bmc_cover(ts, target, 4).failed

    def test_next_cycle_semantics_ignore_same_cycle_discharge(self):
        ts, g, trig, disch, pending = self._system(same_cycle=False)
        # with |=> semantics the same-cycle discharge does not matter:
        # pending (the latch) can be high the cycle after trig&disch
        latch_pending = pending  # monitor returns the latch for |=>
        unro = Unroller(ts)
        t0 = unro.sat_literal(g.AND(trig, disch), 0)
        p1 = unro.sat_literal(latch_pending, 1)
        assert unro.solver.solve(assumptions=[t0, p1])

    def test_pending_persists_until_discharge(self):
        ts, g, trig, disch, pending = self._system(same_cycle=True)
        unro = Unroller(ts)
        t0 = unro.sat_literal(trig, 0)
        no_d0 = -unro.sat_literal(disch, 0)
        no_d1 = -unro.sat_literal(disch, 1)
        p1 = unro.sat_literal(pending, 1)
        # trig at 0 with no discharge: pending still raised at cycle 1
        assert unro.solver.solve(assumptions=[t0, no_d0, no_d1, p1])
        assert not unro.solver.solve(assumptions=[t0, no_d0, no_d1, -p1])


class TestUnroller:
    def test_init_values_respected(self):
        ts = TransitionSystem()
        lat = ts.add_latch("q", init=True)
        ts.set_next(lat, FALSE)
        unro = Unroller(ts)
        q0 = unro.sat_literal(lat.node, 0)
        q1 = unro.sat_literal(lat.node, 1)
        assert unro.solver.solve()
        assert not unro.solver.solve(assumptions=[-q0])  # init forces 1
        assert not unro.solver.solve(assumptions=[q1])   # next forces 0

    def test_symbolic_init_leaves_frame0_free(self):
        ts = TransitionSystem()
        lat = ts.add_latch("q", init=True)
        ts.set_next(lat, lat.node)
        unro = Unroller(ts, symbolic_init=True)
        q0 = unro.sat_literal(lat.node, 0)
        assert unro.solver.solve(assumptions=[q0])
        assert unro.solver.solve(assumptions=[-q0])

    def test_constraints_enforced_every_frame(self):
        ts = TransitionSystem()
        inp = ts.add_input("x")
        ts.add_constraint("no_x", ts.aig.NOT(inp))
        unro = Unroller(ts)
        for k in range(3):
            x_k = unro.sat_literal(inp, k)
            assert not unro.solver.solve(assumptions=[x_k])

    def test_input_values_readback(self):
        ts = TransitionSystem()
        inp = ts.add_input("x")
        unro = Unroller(ts)
        x0 = unro.sat_literal(inp, 0)
        assert unro.solver.solve(assumptions=[x0])
        assert unro.input_values(0)[inp] is True
