"""Batched-sweep equivalence: bmc_sweep vs per-property BMC, batched vs
legacy engine orchestration.

The hot-path contract is that batching changes *solver work*, never
*answers*: every (target, depth) BMC query is decided by the formula, so
``bmc_sweep`` must return the verdicts and depths of the per-property
functions, and the batched engine must report the statuses of the legacy
property-at-a-time engine.  Trace witnesses are model-dependent (a shared
solver may find a different — equally valid — model), so traces are
compared in full only on deterministic systems (no free inputs) and
structurally elsewhere.
"""

import pytest

from repro.formal import (EngineConfig, FormalEngine, TransitionSystem,
                          bmc_cover, bmc_safety)
from repro.formal.bmc import SweepTarget, bmc_sweep


def make_counter(width=3, wrap=True):
    ts = TransitionSystem("counter")
    g = ts.aig
    lats = ts.add_latch_vec("cnt", width, init=0)
    bits = [lat.node for lat in lats]
    inc = g.add_vec(bits, g.const_vec(1, width))
    if wrap:
        for lat, nxt in zip(lats, inc):
            ts.set_next(lat, nxt)
    else:
        top = g.eq_vec(bits, g.const_vec((1 << width) - 1, width))
        for lat, nxt, cur in zip(lats, inc, bits):
            ts.set_next(lat, g.MUX(top, cur, nxt))
    ts.add_observable("cnt", bits)
    return ts, bits


class TestSweepVsPerProperty:
    def test_mixed_targets_match_individual_runs(self):
        """Verdicts, depths and (deterministic) traces match per-property
        BMC for a mix of failing asserts, held asserts and covers."""
        ts, bits = make_counter()
        g = ts.aig
        targets = [
            SweepTarget("bad5", g.NOT(g.eq_vec(bits, g.const_vec(5, 3))),
                        "assert"),
            SweepTarget("bad2", g.NOT(g.eq_vec(bits, g.const_vec(2, 3))),
                        "assert"),
            SweepTarget("holds", g.OR(bits[0], g.NOT(bits[0])), "assert"),
            SweepTarget("reach3", g.eq_vec(bits, g.const_vec(3, 3)),
                        "cover"),
            SweepTarget("reach_never", g.AND(bits[0], g.NOT(bits[0])),
                        "cover"),
        ]
        swept = bmc_sweep(ts, targets, max_depth=10)
        for target in targets:
            if target.kind == "assert":
                solo = bmc_safety(ts, target.lit, 10,
                                  property_name=target.name)
            else:
                solo = bmc_cover(ts, target.lit, 10,
                                 property_name=target.name)
            batched = swept[(target.name, target.kind)]
            assert batched.failed == solo.failed, target.name
            assert batched.depth == solo.depth, target.name
            if solo.failed:
                # The counter has no free inputs: the witness is unique,
                # so even the traces must agree cycle for cycle.
                assert batched.trace.cycles == solo.trace.cycles
                assert batched.trace.depth == solo.trace.depth
            else:
                assert batched.trace is None

    def test_sweep_decides_each_target_at_minimal_depth(self):
        ts, bits = make_counter()
        g = ts.aig
        swept = bmc_sweep(
            ts,
            [SweepTarget(f"bad{v}",
                         g.NOT(g.eq_vec(bits, g.const_vec(v, 3))),
                         "assert") for v in (1, 4, 6)],
            max_depth=8)
        assert {name: r.depth for (name, _), r in swept.items()} == \
            {"bad1": 1, "bad4": 4, "bad6": 6}
        assert all(r.failed for r in swept.values())

    def test_duplicate_name_kind_rejected(self):
        ts, bits = make_counter()
        g = ts.aig
        lit = g.NOT(bits[0])
        with pytest.raises(ValueError, match="duplicate"):
            bmc_sweep(ts, [SweepTarget("x", lit, "assert"),
                           SweepTarget("x", g.NOT(lit), "assert")], 4)

    def test_assert_and_cover_may_share_a_name(self):
        """Names are unique per *kind*: an assert and a cover with the
        same label must both be decided (regression: the batched engine
        merges both families into one sweep)."""
        ts, bits = make_counter()
        g = ts.aig
        swept = bmc_sweep(
            ts, [SweepTarget("handshake",
                             g.NOT(g.eq_vec(bits, g.const_vec(5, 3))),
                             "assert"),
                 SweepTarget("handshake",
                             g.eq_vec(bits, g.const_vec(3, 3)), "cover")],
            max_depth=8)
        assert swept[("handshake", "assert")].depth == 5
        assert swept[("handshake", "cover")].depth == 3

    def test_start_depth_resumes_past_cleared_bound(self):
        """start_depth skips cleared depths without changing the verdict."""
        ts, bits = make_counter()
        g = ts.aig
        bad6 = g.NOT(g.eq_vec(bits, g.const_vec(6, 3)))
        full = bmc_safety(ts, bad6, 10)
        resumed = bmc_safety(ts, bad6, 10, start_depth=5)
        assert full.failed and resumed.failed
        assert full.depth == resumed.depth == 6
        assert resumed.trace.cycles == full.trace.cycles
        # Resuming past the failure depth must *miss* it: the caller owns
        # the claim that earlier depths were cleared.
        late = bmc_safety(ts, bad6, 10, start_depth=7)
        assert not late.failed

    def test_sweep_on_shared_unroller_equals_fresh(self):
        """Query order on a shared unroller cannot change answers."""
        from repro.formal.cnf import Unroller

        ts, bits = make_counter(wrap=False)
        g = ts.aig
        targets = [
            SweepTarget("top", g.eq_vec(bits, g.const_vec(7, 3)), "cover"),
            SweepTarget("never8",
                        g.NOT(g.eq_vec(bits, g.const_vec(7, 3))), "assert"),
        ]
        shared = Unroller(ts)
        first = bmc_sweep(ts, targets, 9, unroller=shared)
        again = bmc_sweep(ts, targets, 9, unroller=shared)
        fresh = bmc_sweep(ts, targets, 9)
        for key in (("top", "cover"), ("never8", "assert")):
            assert first[key].failed == again[key].failed \
                == fresh[key].failed
            assert first[key].depth == again[key].depth \
                == fresh[key].depth


def _engine_outcome(report):
    """The deterministic projection of a report: status always, depth for
    the exact (trace-backed) verdicts; proof-artifact depths are solver-
    trajectory-dependent and deliberately excluded."""
    out = []
    for r in report.results:
        depth = r.depth if r.status in ("cex", "covered") else None
        out.append((r.name, r.kind, r.status, depth))
    return out


class TestBatchedVsLegacyEngine:
    def _factory(self):
        def factory():
            ts, bits = make_counter(width=4)
            g = ts.aig
            ts.add_assert("never11",
                          g.NOT(g.eq_vec(bits, g.const_vec(11, 4))))
            ts.add_assert("tautology", g.OR(bits[0], g.NOT(bits[0])))
            ts.add_cover("reach6", g.eq_vec(bits, g.const_vec(6, 4)))
            ts.add_cover("reach_never", g.AND(bits[0], g.NOT(bits[0])))
            return ts
        return factory

    @pytest.mark.parametrize("proof_engine", ["pdr", "kind", "bmc-only"])
    def test_statuses_and_exact_depths_match(self, proof_engine):
        config = EngineConfig(max_bound=8, max_frames=30,
                              proof_engine=proof_engine)
        batched = FormalEngine(self._factory(), config,
                               batched=True).check_all()
        legacy = FormalEngine(self._factory(), config,
                              batched=False).check_all()
        assert _engine_outcome(batched) == _engine_outcome(legacy)

    def test_repeated_checks_on_warm_engine_stay_identical(self):
        """A persistent (warm) batched engine must keep answering the
        same: the per-property task path reuses one engine per design."""
        config = EngineConfig(max_bound=8, max_frames=30)
        engine = FormalEngine(self._factory(), config)
        first = _engine_outcome(engine.check_all())
        second = _engine_outcome(engine.check_all())
        assert first == second
        single = engine.check_property("never11")
        assert single.status == "cex" and single.depth == 11

    def test_subset_checks_match_full_run(self):
        config = EngineConfig(max_bound=8, max_frames=30)
        engine = FormalEngine(self._factory(), config)
        full = {r.name: r.status for r in engine.check_all().results}
        fresh = FormalEngine(self._factory(), config)
        for name, status in full.items():
            assert fresh.check_property(name).status == status


class TestDeepUnrolling:
    def test_no_recursion_limit_at_deep_bounds(self):
        """Lazy cone-sliced encoding must materialize latch chains
        iteratively: a recursive formulation dies at depth ~330."""
        from repro.formal import TransitionSystem, bmc_safety

        ts = TransitionSystem("chain")
        g = ts.aig
        a = ts.add_latch("a", init=False)
        b = ts.add_latch("b", init=False)
        ts.set_next(a, b.node)
        ts.set_next(b, g.NOT(a.node))
        result = bmc_safety(ts, g.OR(a.node, g.NOT(a.node)), max_depth=500)
        assert not result.failed and result.depth == 500
