"""Property-based cross-validation: PDR vs BMC vs k-induction.

On random small sequential circuits, any property PDR proves must have no
BMC counterexample, and any PDR counterexample must be confirmed by BMC at
the reported depth.  This is the engine's most important internal
consistency invariant (an unsound proof engine would silently fake the
paper's Table III).
"""

from hypothesis import given, settings, strategies as st

from repro.formal import TransitionSystem, bmc_safety
from repro.formal.kinduction import prove_safety
from repro.formal.pdr import pdr_prove


@st.composite
def random_systems(draw):
    """A small random transition system plus a random property literal."""
    num_latches = draw(st.integers(1, 4))
    num_inputs = draw(st.integers(0, 2))
    ts = TransitionSystem("rand")
    g = ts.aig
    inputs = [ts.add_input(f"i{k}") for k in range(num_inputs)]
    latches = [ts.add_latch(f"l{k}", init=draw(st.booleans()))
               for k in range(num_latches)]
    nodes = [lat.node for lat in latches] + inputs + [1]  # 1 == TRUE

    def random_lit(depth=2):
        if depth == 0 or draw(st.booleans()):
            lit = draw(st.sampled_from(nodes))
        else:
            op = draw(st.sampled_from(["and", "or", "xor"]))
            a = random_lit(depth - 1)
            b = random_lit(depth - 1)
            lit = {"and": g.AND, "or": g.OR, "xor": g.XOR}[op](a, b)
        return lit ^ 1 if draw(st.booleans()) else lit

    for lat in latches:
        ts.set_next(lat, random_lit())
    prop = random_lit()
    return ts, prop


class TestEngineConsistency:
    @given(random_systems())
    @settings(max_examples=40, deadline=None)
    def test_pdr_agrees_with_bmc(self, system_and_prop):
        ts, prop = system_and_prop
        pdr = pdr_prove(ts, prop, max_frames=12)
        bmc = bmc_safety(ts, prop, max_depth=12)
        if pdr.proven:
            assert not bmc.failed, "PDR proof contradicted by a BMC CEX"
        if pdr.failed:
            confirm = bmc_safety(ts, prop, max_depth=pdr.cex_depth)
            assert confirm.failed, "PDR CEX not confirmed by BMC"
            assert confirm.depth <= pdr.cex_depth

    @given(random_systems())
    @settings(max_examples=25, deadline=None)
    def test_kinduction_agrees_with_bmc(self, system_and_prop):
        ts, prop = system_and_prop
        kind = prove_safety(ts, prop, max_k=8)
        bmc = bmc_safety(ts, prop, max_depth=12)
        if kind.proven:
            assert not bmc.failed
        if kind.failed:
            assert bmc.failed

    @given(random_systems())
    @settings(max_examples=25, deadline=None)
    def test_proof_engines_never_disagree(self, system_and_prop):
        ts, prop = system_and_prop
        pdr = pdr_prove(ts, prop, max_frames=12)
        kind = prove_safety(ts, prop, max_k=8)
        if pdr.proven and kind.failed:
            raise AssertionError("PDR proved what k-induction refuted")
        if kind.proven and pdr.failed:
            raise AssertionError("k-induction proved what PDR refuted")
