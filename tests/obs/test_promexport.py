"""Golden-format tests for the Prometheus exposition layer.

The exposition is a wire contract with external scrapers, so these
tests pin the format itself: preamble placement, counter ``_total``
suffixes, cumulative histogram invariants, label escaping — and that
:func:`validate_exposition` actually rejects each way the format can
rot.
"""

import pytest

from repro.obs.metrics import MetricsRegistry, labelled, split_labels
from repro.obs.promexport import (MetricsHistory, PROM_CONTENT_TYPE,
                                  prom_name, render_prometheus,
                                  validate_exposition)


def _snapshot():
    registry = MetricsRegistry()
    registry.counter("service.tasks_issued").inc(7)
    registry.counter("service.tasks_issued",
                     labels={"tenant": "alice"}).inc(4)
    registry.counter("service.tasks_issued",
                     labels={"tenant": "bob"}).inc(3)
    registry.gauge("scheduler.queue_depth").set(5)
    hist = registry.histogram("fabric.heartbeat_rtt_s",
                              bounds=(0.001, 0.01, 0.1))
    for value in (0.0005, 0.002, 0.05, 0.5):
        hist.observe(value)
    return registry.snapshot()


class TestLabelKeys:
    def test_round_trip(self):
        key = labelled("service.tasks_issued", {"tenant": "alice",
                                                "engine": "pdr"})
        assert key == 'service.tasks_issued{engine="pdr",tenant="alice"}'
        name, labels = split_labels(key)
        assert name == "service.tasks_issued"
        assert labels == {"tenant": "alice", "engine": "pdr"}

    def test_no_labels_is_identity(self):
        assert labelled("x.y", None) == "x.y"
        assert labelled("x.y", {}) == "x.y"
        assert split_labels("x.y") == ("x.y", {})

    def test_escaping_round_trips(self):
        nasty = 'a"b\\c\nd'
        key = labelled("m", {"k": nasty})
        name, labels = split_labels(key)
        assert name == "m"
        assert labels == {"k": nasty}

    def test_malformed_block_returned_unsplit(self):
        assert split_labels("m{not labels}") == ("m{not labels}", {})


class TestRender:
    def test_families_and_preambles(self):
        text = render_prometheus(_snapshot())
        types = validate_exposition(text)
        assert types == {
            "autosva_service_tasks_issued_total": "counter",
            "autosva_scheduler_queue_depth": "gauge",
            "autosva_fabric_heartbeat_rtt_s": "histogram",
        }
        # One TYPE line per family even with three label sets.
        assert text.count("# TYPE autosva_service_tasks_issued_total") == 1
        assert 'autosva_service_tasks_issued_total{tenant="alice"} 4' \
            in text
        assert "autosva_service_tasks_issued_total 7" in text.splitlines()

    def test_histogram_invariants(self):
        lines = render_prometheus(_snapshot()).splitlines()
        buckets = [line for line in lines
                   if line.startswith("autosva_fabric_heartbeat_rtt_s_bucket")]
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts)            # cumulative
        assert counts[-1] == 4                     # +Inf == observations
        assert any(line.startswith("autosva_fabric_heartbeat_rtt_s_sum ")
                   for line in lines)
        assert "autosva_fabric_heartbeat_rtt_s_count 4" in lines

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("m", labels={"k": 'say "hi"\n'}).inc()
        text = render_prometheus(registry.snapshot())
        assert '\\"hi\\"\\n' in text
        validate_exposition(text)

    def test_prom_name_sanitizes(self):
        assert prom_name("a.b-c") == "autosva_a_b_c"

    def test_content_type_pinned(self):
        assert PROM_CONTENT_TYPE.startswith("text/plain; version=0.0.4")

    def test_empty_snapshot(self):
        assert render_prometheus({}) == ""
        assert validate_exposition("") == {}


class TestValidatorRejects:
    def test_sample_without_type(self):
        with pytest.raises(ValueError, match="no preceding"):
            validate_exposition("some_metric 1\n")

    def test_malformed_sample(self):
        text = ("# HELP m x\n# TYPE m gauge\nm{k=unquoted} 1\n")
        with pytest.raises(ValueError, match="malformed"):
            validate_exposition(text)

    def test_duplicate_sample(self):
        text = ("# HELP m x\n# TYPE m gauge\nm 1\nm 2\n")
        with pytest.raises(ValueError, match="duplicate sample"):
            validate_exposition(text)

    def test_counter_without_total_suffix(self):
        text = ("# HELP m x\n# TYPE m counter\nm 1\n")
        with pytest.raises(ValueError, match="_total"):
            validate_exposition(text)

    def test_non_cumulative_buckets(self):
        text = ("# HELP h x\n# TYPE h histogram\n"
                'h_bucket{le="1"} 5\nh_bucket{le="+Inf"} 3\n'
                "h_sum 1\nh_count 3\n")
        with pytest.raises(ValueError, match="cumulative"):
            validate_exposition(text)

    def test_inf_bucket_must_equal_count(self):
        text = ("# HELP h x\n# TYPE h histogram\n"
                'h_bucket{le="1"} 1\nh_bucket{le="+Inf"} 2\n'
                "h_sum 1\nh_count 3\n")
        with pytest.raises(ValueError, match="_count"):
            validate_exposition(text)

    def test_histogram_missing_sum(self):
        text = ("# HELP h x\n# TYPE h histogram\n"
                'h_bucket{le="+Inf"} 1\nh_count 1\n')
        with pytest.raises(ValueError, match="_sum"):
            validate_exposition(text)

    def test_rendered_registry_is_always_clean(self):
        # The renderer and validator agree on every metric shape we use.
        validate_exposition(render_prometheus(_snapshot()))


class TestMetricsHistory:
    def test_ring_is_bounded(self):
        history = MetricsHistory(window=3, interval_s=0.5)
        for tick in range(5):
            history.sample({"counters": {"c": tick}}, ts=float(tick))
        data = history.as_dict()
        assert data["window"] == 3
        assert data["interval_s"] == 0.5
        assert [entry["counters"]["c"] for entry in data["samples"]] \
            == [2, 3, 4]

    def test_histograms_reduced_to_count_sum(self):
        registry = MetricsRegistry()
        registry.histogram("h", bounds=(1.0,)).observe(0.5)
        history = MetricsHistory(window=4)
        history.sample(registry.snapshot(), ts=1.0)
        sample = history.as_dict()["samples"][0]
        assert sample["histograms"]["h"] == {"count": 1, "sum": 0.5}
        assert "buckets" not in sample["histograms"]["h"]

    def test_series_and_rate(self):
        history = MetricsHistory(window=8)
        for tick, total in enumerate((0, 10, 30)):
            history.sample({"counters": {"done": total}}, ts=float(tick))
        assert history.series("done") == [(0.0, 0.0), (1.0, 10.0),
                                         (2.0, 30.0)]
        assert history.rate("done") == [10.0, 20.0]

    def test_rate_clamps_counter_resets(self):
        history = MetricsHistory(window=8)
        history.sample({"counters": {"done": 10}}, ts=0.0)
        history.sample({"counters": {"done": 2}}, ts=1.0)   # restart
        assert history.rate("done") == [0.0]

    def test_window_floor(self):
        with pytest.raises(ValueError):
            MetricsHistory(window=1)
