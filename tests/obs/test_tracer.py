"""Tracer unit contract: nesting, instants, fork hygiene, zero-cost off.

These tests use private :class:`Tracer` instances, not the global
``TRACER``, so they cannot interfere with campaign tests that run in the
same process.
"""

import json
import os
import threading
import tracemalloc

from repro.obs import Span, Tracer


def _traced(tracer):
    with tracer.span("task", cat="task", args={"task_id": "t0"}):
        with tracer.span("compile", cat="compile"):
            pass
        with tracer.span("check", cat="check"):
            tracer.instant("steal", cat="scheduler")
    return tracer.spans()


class TestNesting:
    def test_parent_links_and_completion_order(self):
        tracer = Tracer()
        tracer.enable()
        spans = _traced(tracer)
        # Spans buffer in completion order: innermost first.
        names = [s.name for s in spans]
        assert names == ["compile", "steal", "check", "task"]
        by_name = {s.name: s for s in spans}
        assert by_name["task"].parent is None
        assert by_name["compile"].parent == "task"
        assert by_name["check"].parent == "task"
        assert by_name["steal"].parent == "check"

    def test_timestamps_nest(self):
        tracer = Tracer()
        tracer.enable()
        spans = {s.name: s for s in _traced(tracer)}
        task, check = spans["task"], spans["check"]
        assert task.ts <= check.ts
        assert check.ts + check.dur <= task.ts + task.dur + 1e-6
        assert spans["steal"].dur == 0.0
        assert spans["steal"].phase == "i"

    def test_current_span_tracks_innermost(self):
        tracer = Tracer()
        tracer.enable()
        assert tracer.current is None
        with tracer.span("outer"):
            assert tracer.current.name == "outer"
            with tracer.span("inner"):
                assert tracer.current.name == "inner"
            assert tracer.current.name == "outer"
        assert tracer.current is None

    def test_threads_nest_independently(self):
        tracer = Tracer()
        tracer.enable()
        seen = []

        def worker(tag):
            with tracer.span(f"outer-{tag}"):
                with tracer.span(f"inner-{tag}"):
                    seen.append(tracer.current.name)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(seen) == [f"inner-{i}" for i in range(4)]
        parents = {s.name: s.parent for s in tracer.spans()}
        for i in range(4):
            assert parents[f"inner-{i}"] == f"outer-{i}"


class TestDrainAbsorb:
    def test_round_trip_is_json_safe(self):
        tracer = Tracer()
        tracer.enable()
        _traced(tracer)
        drained = tracer.drain()
        assert tracer.spans() == []          # drain empties the buffer
        wire = json.loads(json.dumps(drained))  # survives the fork pipe
        other = Tracer()
        other.absorb(wire, ts_offset=0.0)
        names = sorted(s.name for s in other.spans())
        assert names == ["check", "compile", "steal", "task"]

    def test_absorb_applies_ts_offset(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("x"):
            pass
        drained = tracer.drain()
        other = Tracer()
        other.absorb(drained, ts_offset=100.0)
        assert other.spans()[0].ts == drained[0]["ts"] + 100.0


class TestForkSafety:
    def test_child_ships_only_its_own_spans(self):
        """Parent spans inherited through fork() must not re-ship."""
        tracer = Tracer()
        tracer.enable()
        with tracer.span("parent-span"):
            pass
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:                                  # child
            os.close(read_fd)
            try:
                with tracer.span("child-span"):
                    pass
                payload = json.dumps(tracer.drain()).encode()
                os.write(write_fd, payload)
            finally:
                os.close(write_fd)
                os._exit(0)
        os.close(write_fd)
        chunks = []
        while True:
            chunk = os.read(read_fd, 65536)
            if not chunk:
                break
            chunks.append(chunk)
        os.close(read_fd)
        os.waitpid(pid, 0)
        shipped = json.loads(b"".join(chunks).decode())
        assert [s["name"] for s in shipped] == ["child-span"]
        # Parent keeps its span exactly once.
        tracer.absorb(shipped)
        assert sorted(s.name for s in tracer.spans()) == \
            ["child-span", "parent-span"]


class TestDisabledIsFree:
    def test_disabled_span_is_the_shared_null(self):
        tracer = Tracer()
        a = tracer.span("x")
        b = tracer.span("y", cat="check", args={"k": 1})
        assert a is b                          # one preallocated object

    def test_disabled_records_nothing(self):
        tracer = Tracer()
        with tracer.span("x"):
            tracer.instant("i")
        assert tracer.spans() == []

    def test_disabled_hot_path_allocates_nothing(self):
        """The tier-1 contract: tracing off costs zero allocations."""
        tracer = Tracer()
        trace_py = Span.__init__.__code__.co_filename

        def hot():
            for _ in range(200):
                with tracer.span("task", cat="task"):
                    tracer.instant("evt")

        hot()                                  # warm any lazy caches
        tracemalloc.start()
        before = tracemalloc.take_snapshot()
        hot()
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        flt = tracemalloc.Filter(True, trace_py)
        grown = [stat for stat
                 in after.filter_traces([flt]).compare_to(
                     before.filter_traces([flt]), "lineno")
                 if stat.size_diff > 0]
        assert not grown, f"allocations on disabled path: {grown}"
