"""Observability through the real campaign pipeline (LocalTransport).

The contracts under test:

* span structure is deterministic across worker counts — the same task
  decomposition yields the same (name, cat) multiset whether 1, 2 or 4
  forked workers executed it;
* fork-child spans and metric snapshots merge into the scheduler's view
  exactly once (no double counting through the inherited buffer);
* with tracing disabled (the default) campaigns record no spans at all.
"""

from collections import Counter as TallyCounter

import pytest

from repro.campaign import expand_jobs, run_property_campaign
from repro.formal.engine import EngineConfig
from repro.obs import METRICS, TRACER

FAST_CONFIG = EngineConfig(max_bound=6, max_frames=25)


@pytest.fixture()
def clean_obs():
    TRACER.reset()
    METRICS.reset()
    yield
    TRACER.disable()
    TRACER.reset()
    METRICS.reset()


@pytest.fixture(scope="module")
def a2_jobs():
    return expand_jobs(case_ids=["A2"], config=FAST_CONFIG)


def _run_traced(jobs, workers):
    TRACER.reset()
    METRICS.reset()
    TRACER.enable()
    results = run_property_campaign(jobs, workers=workers,
                                    schedule="inventory")
    spans = TRACER.drain()
    snapshot = METRICS.snapshot()
    return results, spans, snapshot


class TestSpanDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_structure_stable_across_worker_counts(self, clean_obs,
                                                   a2_jobs, workers):
        results, spans, snapshot = _run_traced(a2_jobs, workers)
        assert all(r.status == "ok" for r in results)
        shape = TallyCounter((s["name"], s["cat"]) for s in spans)
        # The inventory schedule fixes the task decomposition, so the
        # span multiset is worker-count independent.
        baseline = getattr(type(self), "_baseline", None)
        if baseline is None:
            type(self)._baseline = shape
        else:
            assert shape == baseline
        # Every span category the pipeline emits is present.
        cats = {s["cat"] for s in spans}
        assert {"frontend", "task", "compile", "check"} <= cats

    def test_task_spans_parent_compile_and_check(self, clean_obs, a2_jobs):
        _, spans, _ = _run_traced(a2_jobs, 2)
        for span in spans:
            if span["name"] in ("compile", "check") \
                    and span["cat"] != "frontend":
                assert span.get("parent") == "task"


class TestExactlyOnceMerge:
    def test_child_spans_and_metrics_merge_once(self, clean_obs, a2_jobs):
        _, spans, snapshot = _run_traced(a2_jobs, 2)
        task_spans = [s for s in spans if s["name"] == "task"]
        executed = snapshot["counters"]["task.executed"]
        # One "task" span per executed child task — inherited parent
        # spans (frontend compiles) never re-ship from the children.
        assert len(task_spans) == executed
        task_ids = [s["args"]["task_id"] for s in task_spans]
        assert len(task_ids) == len(set(task_ids))
        frontend = [s for s in spans if s["cat"] == "frontend"]
        scheduler_pid = frontend[0]["pid"]
        assert all(s["pid"] == scheduler_pid for s in frontend)
        # Child task spans come from forked pids, not the scheduler.
        assert all(s["pid"] != scheduler_pid for s in task_spans)

    def test_solver_counters_survive_the_pipe(self, clean_obs, a2_jobs):
        results, _, snapshot = _run_traced(a2_jobs, 2)
        counters = snapshot["counters"]
        assert counters.get("solver.solve_calls", 0) > 0
        # The merged registry total equals the per-result payload sums.
        payload_total = sum(
            (r.payload or {}).get("solver", {}).get("solve_calls", 0)
            for r in results)
        assert counters["solver.solve_calls"] == payload_total
        hist = snapshot["histograms"]["scheduler.dispatch_latency_s"]
        assert hist["count"] == counters["task.executed"]


class TestDisabledDefault:
    def test_untraced_campaign_records_no_spans(self, clean_obs, a2_jobs):
        assert not TRACER.enabled
        run_property_campaign(a2_jobs, workers=2)
        assert TRACER.drain() == []
        # Metrics are always on, even untraced.
        assert METRICS.snapshot()["counters"]["task.executed"] > 0
