"""MetricsRegistry unit contract: types, snapshots, merge semantics."""

import json

from repro.obs.metrics import DEFAULT_BOUNDS, Histogram, MetricsRegistry


class TestPrimitives:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2)
        reg.counter("c").inc(0.5)
        assert reg.snapshot()["counters"]["c"] == 3.5

    def test_gauge_overwrites(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(7)
        reg.gauge("g").set(3)
        assert reg.snapshot()["gauges"]["g"] == 3

    def test_histogram_buckets_and_stats(self):
        hist = Histogram(bounds=(1.0, 10.0))
        for value in (0.5, 0.7, 5.0, 50.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.min == 0.5 and hist.max == 50.0
        assert hist.buckets == [2, 1, 1]       # <=1, <=10, overflow
        assert abs(hist.mean - 14.05) < 1e-9

    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("h") is reg.histogram("h")


class TestSnapshotMerge:
    def test_snapshot_is_json_safe(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(2)
        reg.histogram("h").observe(0.05)
        wire = json.loads(json.dumps(reg.snapshot()))
        assert wire["histograms"]["h"]["count"] == 1

    def test_merge_adds_counters_and_overwrites_gauges(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(3)
        a.gauge("g").set(1)
        b.counter("c").inc(4)
        b.gauge("g").set(9)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["c"] == 7
        assert snap["gauges"]["g"] == 9

    def test_merge_histograms_bucketwise_when_bounds_match(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", bounds=(1.0, 10.0)).observe(0.5)
        b.histogram("h", bounds=(1.0, 10.0)).observe(5.0)
        b.histogram("h", bounds=(1.0, 10.0)).observe(50.0)
        a.merge(b.snapshot())
        merged = a.snapshot()["histograms"]["h"]
        assert merged["count"] == 3
        assert merged["buckets"] == [1, 1, 1]
        assert merged["min"] == 0.5 and merged["max"] == 50.0

    def test_merge_mismatched_bounds_keeps_scalar_stats(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", bounds=(1.0,)).observe(0.5)
        b.histogram("h", bounds=(2.0, 4.0)).observe(3.0)
        a.merge(b.snapshot())
        merged = a.snapshot()["histograms"]["h"]
        assert merged["count"] == 2            # scalars always merge
        assert merged["sum"] == 3.5
        assert merged["max"] == 3.0
        assert merged["buckets"] == [1, 0]     # local shape untouched

    def test_merge_into_empty_registry_adopts_bounds(self):
        src = MetricsRegistry()
        src.histogram("h", bounds=(2.0,)).observe(1.0)
        dst = MetricsRegistry()
        dst.merge(src.snapshot())
        assert dst.snapshot()["histograms"]["h"]["bounds"] == [2.0]

    def test_merge_none_is_a_noop(self):
        reg = MetricsRegistry()
        reg.merge(None)
        assert reg.snapshot() == {"counters": {}, "gauges": {},
                                  "histograms": {}}


class TestDrainReset:
    def test_drain_empties_and_returns_none_when_empty(self):
        reg = MetricsRegistry()
        assert reg.drain() is None
        reg.counter("c").inc()
        shipped = reg.drain()
        assert shipped["counters"]["c"] == 1
        assert reg.drain() is None             # exactly-once

    def test_default_bounds_are_seconds_flavored(self):
        assert DEFAULT_BOUNDS[0] < 1.0 < DEFAULT_BOUNDS[-1]

    def test_format_table_renders_each_kind(self):
        reg = MetricsRegistry()
        reg.counter("solver.conflicts").inc(10)
        reg.gauge("scheduler.queue_depth").set(4)
        reg.histogram("latency").observe(0.25)
        text = reg.format_table()
        assert "solver.conflicts" in text
        assert "(gauge)" in text
        assert "n=1" in text
