"""Chrome-trace export and ExecutionRecord structural contracts."""

import json

import pytest

from repro.obs import Span, Tracer
from repro.obs.export import chrome_trace, write_chrome_trace, write_jsonl
from repro.obs.record import (RECORD_SCHEMA_VERSION, build_record,
                              validate_record)


def _sample_spans():
    tracer = Tracer()
    tracer.enable()
    with tracer.span("task", cat="task", args={"task_id": "t0"}):
        with tracer.span("compile", cat="compile"):
            pass
        tracer.instant("steal", cat="scheduler")
    return tracer.drain()


class TestChromeTrace:
    def test_structure(self):
        doc = chrome_trace(_sample_spans())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        phases = sorted({e["ph"] for e in events})
        assert phases == ["M", "X", "i"]
        meta = [e for e in events if e["ph"] == "M"]
        assert meta[0]["name"] == "process_name"
        instants = [e for e in events if e["ph"] == "i"]
        assert all(e["s"] == "p" for e in instants)
        assert all("dur" not in e for e in instants)

    def test_timestamps_rebased_to_microseconds(self):
        spans = _sample_spans()
        doc = chrome_trace(spans)
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert min(e["ts"] for e in xs) == 0.0
        # dur is µs: the compile span's seconds dur scaled by 1e6.
        compile_span = next(s for s in spans if s["name"] == "compile")
        compile_event = next(e for e in xs if e["name"] == "compile")
        assert compile_event["dur"] == \
            pytest.approx(compile_span["dur"] * 1e6, abs=0.01)

    def test_process_names_label_pids(self):
        spans = _sample_spans()
        pid = spans[0]["pid"]
        doc = chrome_trace(spans, process_names={pid: "scheduler"})
        meta = next(e for e in doc["traceEvents"] if e["ph"] == "M")
        assert meta["args"]["name"] == "scheduler"

    def test_accepts_span_objects_and_dicts(self):
        span = Span("x")
        span.ts, span.dur, span.pid = 1.0, 0.5, 42
        for form in (span, span.as_dict()):
            doc = chrome_trace([form])
            assert doc["traceEvents"][-1]["name"] == "x"

    def test_file_writers(self, tmp_path):
        spans = _sample_spans()
        trace_path = tmp_path / "trace.json"
        jsonl_path = tmp_path / "trace.jsonl"
        write_chrome_trace(trace_path, spans)
        write_jsonl(jsonl_path, spans)
        doc = json.loads(trace_path.read_text())
        assert {e["ph"] for e in doc["traceEvents"]} == {"M", "X", "i"}
        lines = [json.loads(line) for line
                 in jsonl_path.read_text().splitlines()]
        assert [line["name"] for line in lines] == \
            [span["name"] for span in spans]


class _FakeJob:
    def __init__(self, job_id):
        self.job_id = job_id
        self.case_id = job_id.split(".")[0]
        self.variant = "fixed"
        self.engine_config = None


class _FakeResult:
    def __init__(self, job_id, status="ok"):
        self.job_id = job_id
        self.status = status
        self.from_cache = False
        self.wall_time_s = 1.25
        self.steals = 0
        self.worker = None
        self.error = None
        self.payload = {"engine_time_s": 1.0, "solve_time_s": 0.4,
                        "solver": {"conflicts": 10, "wall_time_s": 0.4}}


class _FakeReport:
    def __init__(self):
        self.jobs = [_FakeJob("A1.fixed"), _FakeJob("A2.fixed")]
        self.results = [_FakeResult("A1.fixed"), _FakeResult("A2.fixed")]
        self.worker_stats = None
        self.cache_stats = None
        self.wall_time_s = 2.0

    def phase_breakdown(self):
        return {"frontend_s": 0.1, "solve_s": 0.8, "engine_other_s": 1.2,
                "overhead_s": 0.0, "wall_s": 2.0}


class TestExecutionRecord:
    def test_build_and_validate_round_trip(self, tmp_path):
        record = build_record(_FakeReport(), config={"workers": 2},
                              metrics={"counters": {"task.executed": 2}},
                              span_count=7)
        path = tmp_path / "record.json"
        record.write(path)
        data = json.loads(path.read_text())
        validate_record(data)               # must not raise
        assert data["schema_version"] == RECORD_SCHEMA_VERSION
        assert data["solver"]["conflicts"] == 20
        assert data["span_count"] == 7
        assert [t["job_id"] for t in data["tasks"]] == \
            ["A1.fixed", "A2.fixed"]

    def test_digest_detects_inventory_tampering(self):
        data = json.loads(build_record(_FakeReport()).to_json())
        data["inventory"][0]["variant"] = "buggy"
        with pytest.raises(ValueError, match="digest"):
            validate_record(data)

    @pytest.mark.parametrize("mutation,match", [
        (lambda d: d.update(schema_version=99), "schema_version"),
        (lambda d: d.update(tasks={}), "tasks"),
        (lambda d: d["tasks"][0].pop("status"), "status"),
        (lambda d: d.update(span_count="many"), "span_count"),
        (lambda d: d["phases"].update(solve_s="fast"), "numeric"),
    ])
    def test_validation_rejects_malformed(self, mutation, match):
        data = json.loads(build_record(_FakeReport()).to_json())
        mutation(data)
        with pytest.raises(ValueError, match=match):
            validate_record(data)
