"""Tests for the structured service logger and the fatal() exit helper."""

import argparse
import json

import pytest

from repro.obs import log as obslog
from repro.obs.log import (Logger, add_log_arguments, configure,
                           configure_from_args, current_context, fatal,
                           get_logger, log_context)


@pytest.fixture(autouse=True)
def _restore_config():
    yield
    configure()          # back to info/text/stderr for other tests


class _LogFile:
    def __init__(self, path):
        self.path = path

    def __str__(self):
        return str(self.path)

    def lines(self):
        if not self.path.exists():
            return []
        return [line for line in self.path.read_text().splitlines()
                if line]


@pytest.fixture()
def logfile(tmp_path):
    return _LogFile(tmp_path / "service.log")


class TestLevels:
    def test_level_floor_suppresses(self, logfile):
        configure(level="warn", file=str(logfile))
        logger = get_logger("t")
        logger.debug("quiet")
        logger.info("quiet")
        logger.warn("loud")
        logger.error("loud")
        assert len(logfile.lines()) == 2
        assert all("loud" in line for line in logfile.lines())

    def test_enabled_probe(self):
        configure(level="error")
        logger = get_logger("t")
        assert not logger.enabled("info")
        assert logger.enabled("error")

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            configure(level="loud")
        with pytest.raises(ValueError):
            configure(format="xml")


class TestFormats:
    def test_text_line_shape(self, logfile):
        configure(level="info", format="text", file=str(logfile))
        get_logger("service.broker").info("campaign admitted",
                                          tenant="alice", jobs=4)
        (line,) = logfile.lines()
        assert " INFO " in line
        assert "service.broker: campaign admitted" in line
        assert "tenant=alice" in line and "jobs=4" in line
        assert line[:4].isdigit() and line.split(" ")[0].endswith("Z")

    def test_text_quotes_awkward_values(self, logfile):
        configure(file=str(logfile))
        get_logger("t").info("e", path="/tmp/a b")
        assert 'path="/tmp/a b"' in logfile.lines()[0]

    def test_json_lines(self, logfile):
        configure(format="json", file=str(logfile))
        get_logger("dist.worker").warn("worker death",
                                       worker="h:1", requeued=2)
        record = json.loads(logfile.lines()[0])
        assert record["level"] == "WARN"
        assert record["logger"] == "dist.worker"
        assert record["event"] == "worker death"
        assert record["worker"] == "h:1"
        assert record["requeued"] == 2
        assert record["ts"].endswith("Z")


class TestContext:
    def test_log_context_fields_attach(self, logfile):
        configure(format="json", file=str(logfile))
        with log_context(tenant="alice", campaign="c1"):
            assert current_context() == {"tenant": "alice",
                                         "campaign": "c1"}
            get_logger("t").info("inner")
        get_logger("t").info("outer")
        inner, outer = [json.loads(line) for line in logfile.lines()]
        assert inner["tenant"] == "alice" and inner["campaign"] == "c1"
        assert "tenant" not in outer
        assert current_context() == {}

    def test_contexts_nest(self, logfile):
        configure(format="json", file=str(logfile))
        with log_context(tenant="alice"):
            with log_context(task="t9"):
                get_logger("t").info("deep")
        record = json.loads(logfile.lines()[0])
        assert record["tenant"] == "alice" and record["task"] == "t9"

    def test_bind_creates_stamped_child(self, logfile):
        configure(format="json", file=str(logfile))
        bound = get_logger("w").bind(session="abc123")
        bound.info("hello")
        assert json.loads(logfile.lines()[0])["session"] == "abc123"
        assert isinstance(bound, Logger)

    def test_explicit_fields_beat_context(self, logfile):
        configure(format="json", file=str(logfile))
        with log_context(tenant="alice"):
            get_logger("t").info("e", tenant="bob")
        assert json.loads(logfile.lines()[0])["tenant"] == "bob"


class TestFatal:
    def test_returns_one_and_logs_error(self, logfile):
        configure(format="json", file=str(logfile))
        code = fatal("autosva serve", "cannot listen",
                     address="127.0.0.1:1")
        assert code == 1
        record = json.loads(logfile.lines()[0])
        assert record["level"] == "ERROR"
        assert record["logger"] == "autosva serve"
        assert record["event"] == "cannot listen"
        assert record["address"] == "127.0.0.1:1"

    def test_never_suppressed(self, logfile):
        configure(level="error", file=str(logfile))
        assert fatal("prog", "boom") == 1
        assert len(logfile.lines()) == 1

    def test_default_sink_is_stderr(self, capsys):
        configure()
        assert fatal("prog", "to stderr") == 1
        captured = capsys.readouterr()
        assert "to stderr" in captured.err
        assert captured.out == ""


class TestArgparsePlumbing:
    def test_flags_round_trip(self, logfile):
        parser = argparse.ArgumentParser()
        add_log_arguments(parser)
        args = parser.parse_args(["--log-level", "debug",
                                  "--log-format", "json",
                                  "--log-file", str(logfile)])
        configure_from_args(args)
        get_logger("t").debug("visible")
        assert json.loads(logfile.lines()[0])["event"] == "visible"

    def test_defaults(self):
        parser = argparse.ArgumentParser()
        add_log_arguments(parser)
        args = parser.parse_args([])
        assert args.log_level == "info"
        assert args.log_format == "text"
        assert args.log_file is None

    def test_reconfigure_closes_previous_file(self, tmp_path):
        first = tmp_path / "a.log"
        configure(file=str(first))
        handle = obslog._owned_file
        configure()
        assert handle.closed
