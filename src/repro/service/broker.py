"""The campaign broker: many tenants' campaigns on ONE scheduler run.

The one-shot pipeline (PR 4/5) runs one ``Scheduler`` per campaign and
tears the transport down afterwards.  A service cannot: worker fleets
are expensive to attach and compile caches are only valuable warm.  The
broker therefore drives a **single long-lived** scheduler run over a
fair-share source and multiplexes every admitted campaign through it:

* Each campaign keeps its own :func:`~repro.campaign.sharding.stream_tasks`
  generator (FT generation + one parent-side compile per design, through
  the process-global ``COMPILE_CACHE`` — so two campaigns over the same
  design still cost one compile, and forked local workers inherit it).
* The :class:`_FairSource` the scheduler pulls implements **stride
  scheduling** over tenants: pick the runnable tenant with the smallest
  virtual time, advance its oldest campaign's stream by one item, charge
  ``cost / weight`` virtual time per issued task (the PR 4
  :class:`~repro.campaign.costmodel.CostModel` prices the task).  A
  weight-2 tenant gets twice the fabric of a weight-1 tenant under
  contention; an idle tenant's unused slice goes to whoever is runnable.
* When nothing is admissible the source yields the scheduler's ``None``
  sentinel ("temporarily dry") after a bounded wait — the multiplex seam
  added to :class:`~repro.campaign.scheduler.Scheduler` — so the run
  loop keeps servicing in-flight work and re-probes; only broker
  shutdown raises ``StopIteration`` and ends the run.
* Results route back to their campaign **by task object identity**, not
  task id: two campaigns running the same case produce identical
  ``task_id`` strings, and the verdict-equivalence contract
  (:func:`~repro.campaign.report.verdict_contract`) forbids prefixing
  them.  The broker holds the task references (via each campaign's
  ``ShardPlan``) while outstanding, so ids cannot be recycled under it.
* ``DELETE`` cancellation goes through
  :meth:`~repro.campaign.scheduler.Scheduler.cancel_where` with a
  predicate over the campaign's live task identities: queued tasks
  settle as ``cancelled`` events, transport-reclaimed prefetches are
  retracted at requeue time, and running work finishes without ever
  being interrupted mid-verdict.

Every settled campaign gets the full one-shot treatment: results merged
with :func:`~repro.campaign.sharding.merge_shard_results` (bit-identical
to ``autosva campaign`` by construction), a
:class:`~repro.campaign.report.CampaignReport` with the PR 6 phase
breakdown, and a digest-validated
:class:`~repro.obs.record.ExecutionRecord`.

Threading model: ONE broker thread drives the scheduler (and therefore
every stream advance, compile, cancellation and settle); HTTP handlers
only touch broker state under ``self._cond`` in short critical sections.
Compiles run *outside* the lock, so a status query never waits on a
frontend.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from collections import deque
from dataclasses import asdict, fields
from typing import Callable, Dict, Iterator, List, Optional, Set

from ..api.session import event_from_result
from ..api.task import PropertyTask, TaskEvent, execute_task
from ..campaign.cache import ArtifactCache
from ..campaign.costmodel import CostModel
from ..campaign.report import CampaignReport
from ..campaign.scheduler import RetryPolicy, Scheduler, SourceNotice
from ..campaign.sharding import ShardPlan, merge_shard_results, stream_tasks
from ..formal.engine import EngineConfig
from ..obs import METRICS, TRACER
from ..obs.log import get_logger, log_context
from ..obs.promexport import MetricsHistory
from ..obs.record import build_record, validate_record
from .journal import CampaignJournal, JournaledCampaign
from .tenancy import QuotaError, TenantRegistry

__all__ = ["Campaign", "CampaignBroker", "CampaignSpec"]

_LOG = get_logger("service.broker")

#: Admission-to-settle latency buckets (seconds): campaigns, not tasks.
SETTLE_BOUNDS = (1.0, 5.0, 15.0, 60.0, 300.0)

#: How long the fair source blocks waiting for admissible work before
#: yielding the scheduler's "temporarily dry" sentinel.  Bounded so the
#: scheduler's own run loop stays responsive (see the scheduler's
#: session-multiplexing docs).
_SOURCE_POLL_S = 0.1


class CampaignSpec:
    """A validated campaign submission (the POST /campaigns body)."""

    def __init__(self, tenant: str, case_ids: List[str],
                 variants: List[str], depth: int = 8, frames: int = 30,
                 group_size: int = 1, schedule: str = "cost",
                 memory_limit_mb: Optional[int] = None) -> None:
        self.tenant = tenant
        self.case_ids = case_ids
        self.variants = variants
        self.depth = depth
        self.frames = frames
        self.group_size = group_size
        self.schedule = schedule
        self.memory_limit_mb = memory_limit_mb

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "CampaignSpec":
        """Parse + validate a submission body; ValueError on bad input."""
        if not isinstance(data, dict):
            raise ValueError("submission must be a JSON object")
        tenant = data.get("tenant", "anonymous")
        if not isinstance(tenant, str) or not tenant.strip():
            raise ValueError("'tenant' must be a non-empty string")
        cases = data.get("cases")
        if not isinstance(cases, list) or not cases \
                or not all(isinstance(c, str) and c.strip() for c in cases):
            raise ValueError("'cases' must be a non-empty list of case ids")
        variants = data.get("variants", ["fixed", "buggy"])
        if not isinstance(variants, list) or not variants \
                or not all(v in ("fixed", "buggy") for v in variants):
            raise ValueError("'variants' must be a non-empty subset of "
                             "['fixed', 'buggy']")
        schedule = data.get("schedule", "cost")
        if schedule not in ("cost", "inventory"):
            raise ValueError("'schedule' must be 'cost' or 'inventory'")

        def integer(name, default, minimum):
            value = data.get(name, default)
            if value is None and default is None:
                return None
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < minimum:
                raise ValueError(f"'{name}' must be an integer "
                                 f">= {minimum}")
            return value

        return cls(tenant=tenant.strip(),
                   case_ids=[c.strip() for c in cases],
                   variants=list(variants),
                   depth=integer("depth", 8, 1),
                   frames=integer("frames", 30, 1),
                   group_size=integer("group_size", 1, 1),
                   schedule=schedule,
                   memory_limit_mb=integer("memory_limit_mb", None, 1))

    def as_dict(self) -> Dict[str, object]:
        return {"tenant": self.tenant, "cases": self.case_ids,
                "variants": self.variants, "depth": self.depth,
                "frames": self.frames, "group_size": self.group_size,
                "schedule": self.schedule,
                "memory_limit_mb": self.memory_limit_mb}


def _serialize_event(event: TaskEvent) -> Dict[str, object]:
    """The wire form of one task event (the SSE ``data:`` payload)."""
    return asdict(event)


class Campaign:
    """One admitted campaign's full lifecycle state (broker-internal)."""

    def __init__(self, campaign_id: str, spec: CampaignSpec, jobs,
                 stream: Iterator, plan: ShardPlan) -> None:
        self.id = campaign_id
        self.spec = spec
        self.tenant = spec.tenant
        self.jobs = jobs
        self.stream = stream
        self.plan = plan
        self.status = "running"       # running | completed | cancelled
        self.submitted_at = time.time()
        self.started = time.monotonic()
        self.wall_time_s = 0.0
        #: Result TaskEvents, in completion order (feeds the merge).
        self.events: List[TaskEvent] = []
        #: Serialized event feed for (re)players: every event incl.
        #: notices and the terminal marker, in publish order.
        self.feed: List[Dict[str, object]] = []
        self.subscribers: List[Callable[[Dict[str, object]], None]] = []
        #: id(task) of every task issued to the scheduler, not settled.
        self.live_ids: Set[int] = set()
        self.outstanding = 0
        self.stream_done = False
        self.settled = False
        self.cancel_requested = False
        self.cancel_applied = False
        self.cancel_reason: Optional[str] = None
        #: Parent-side frontend seconds (non-cached compile_done walls).
        self.frontend_time_s = 0.0
        self.wall_spent_s = 0.0
        #: Set at settle: merged job results / report / record dicts.
        self.results = None
        self.report_dict: Optional[Dict[str, object]] = None
        self.record_dict: Optional[Dict[str, object]] = None
        self.error: Optional[str] = None
        #: Monotonic settle time, for the retention policy's TTL check.
        self.settled_at: Optional[float] = None
        #: Journal sequence number (restored across restarts).
        self.seq = 0

    # -- event fan-out (call with the broker lock held) --------------------
    def publish(self, payload: Dict[str, object]) -> None:
        self.feed.append(payload)
        for callback in list(self.subscribers):
            try:
                callback(payload)
            except Exception:
                self.subscribers.remove(callback)

    @property
    def finished(self) -> bool:
        return self.settled

    def summary(self) -> Dict[str, object]:
        done = sum(1 for event in self.events if event.is_result)
        return {
            "id": self.id, "tenant": self.tenant, "status": self.status,
            "submitted_at": self.submitted_at,
            "cases": self.spec.case_ids, "variants": self.spec.variants,
            "jobs": len(self.jobs),
            "tasks_settled": done,
            "tasks_outstanding": self.outstanding,
            "stream_done": self.stream_done,
            "wall_time_s": round(
                self.wall_time_s if self.settled
                else time.monotonic() - self.started, 3),
            "wall_spent_s": round(self.wall_spent_s, 3),
            "cancel_reason": self.cancel_reason,
            "error": self.error,
        }


class CampaignBroker:
    """Admission-controlled multiplexer of campaigns onto one fabric.

    ``transport`` is the shared execution backend (a
    :class:`~repro.campaign.scheduler.LocalTransport` pool or a
    :class:`~repro.dist.coordinator.TcpTransport` fleet); ``workers`` is
    only used to build the default local pool.  ``start()`` launches the
    broker thread; ``close()`` drains admission, lets outstanding work
    finish (or cancels it with ``cancel_pending=True``) and ends the
    scheduler run, closing the transport.
    """

    def __init__(self, workers: int = 2,
                 transport=None,
                 cache: Optional[ArtifactCache] = None,
                 tenants: Optional[TenantRegistry] = None,
                 timeout_s: Optional[float] = None,
                 memory_limit_mb: Optional[int] = None,
                 model: Optional[CostModel] = None,
                 journal: Optional[CampaignJournal] = None,
                 retry: Optional[RetryPolicy] = None,
                 retain_settled: Optional[int] = 64,
                 retain_ttl_s: Optional[float] = None,
                 history_interval_s: float = 2.0,
                 history_window: int = 300) -> None:
        self.workers = workers
        self.transport = transport
        self.cache = cache
        self.tenants = tenants or TenantRegistry()
        self.timeout_s = timeout_s
        self.memory_limit_mb = memory_limit_mb
        self.model = model or CostModel()
        #: Write-ahead journal: every admission, result event,
        #: cancellation and terminal verdict is appended *before* it is
        #: published, so a restarted service can replay open campaigns
        #: (settled tasks come back from the shared ArtifactCache).
        self.journal = journal
        #: Task-level retry policy for transient worker deaths (None
        #: keeps the pre-PR-8 fail-fast behaviour).
        self.retry = retry
        #: Retention policy for *settled* campaigns: keep at most
        #: ``retain_settled`` (None = unbounded) and none older than
        #: ``retain_ttl_s`` seconds past settle.  Without this the
        #: ``_campaigns`` map grows forever in a long-lived service.
        self.retain_settled = retain_settled
        self.retain_ttl_s = retain_ttl_s
        self.transport_kind = "tcp" if getattr(transport, "remote", False) \
            else "local"

        self._cond = threading.Condition()
        self._campaigns: Dict[str, Campaign] = {}
        #: Admission order, for oldest-first picks within a tenant.
        self._order: List[str] = []
        self._owners: Dict[int, Campaign] = {}
        self._seq = 0
        self._closed = False
        self._scheduler: Optional[Scheduler] = None
        self._thread: Optional[threading.Thread] = None
        self._started = time.monotonic()
        self._fatal: Optional[str] = None
        self._evicted = 0
        #: The /metrics/history ring: the sampler thread snapshots the
        #: METRICS registry into it every ``history_interval_s`` so
        #: trends (throughput, queue depth) survive without an external
        #: scraper.  Near-zero cost: one snapshot dict per tick.
        self.history = MetricsHistory(window=history_window,
                                      interval_s=history_interval_s)
        self._sampler: Optional[threading.Thread] = None
        self._sampler_stop = threading.Event()

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "CampaignBroker":
        if self._thread is not None:
            raise RuntimeError("broker already started")
        transport = self.transport
        if transport is None:
            from ..campaign.scheduler import LocalTransport
            transport = self.transport = LocalTransport(self.workers)
        self._scheduler = Scheduler(
            self._source(), workers=self.workers, cache=self.cache,
            timeout_s=self.timeout_s,
            memory_limit_mb=self.memory_limit_mb,
            runner=execute_task, transport=transport, retry=self.retry)
        if self.journal is not None:
            self._recover()
        self._thread = threading.Thread(target=self._run,
                                        name="campaign-broker", daemon=True)
        self._thread.start()
        self._sampler = threading.Thread(target=self._sample_loop,
                                         name="metrics-sampler",
                                         daemon=True)
        self._sampler.start()
        _LOG.info("broker started", transport=self.transport_kind,
                  workers=self.workers)
        return self

    def drain(self, cancel_pending: bool = False) -> None:
        """Flip to draining: no new admissions, /readyz goes 503.

        Existing campaigns finish (or are cancelled); the broker thread
        ends once they settle.  Unlike :meth:`close` this does not join,
        so an HTTP handler can trigger it without deadlocking itself.
        """
        with self._cond:
            already = self._closed
            self._closed = True
            if cancel_pending:
                for campaign in self._campaigns.values():
                    if not campaign.settled \
                            and not campaign.cancel_requested:
                        campaign.cancel_requested = True
                        campaign.cancel_reason = "service shutdown"
            self._cond.notify_all()
        if not already:
            _LOG.info("broker draining", cancel_pending=cancel_pending)

    def close(self, cancel_pending: bool = False,
              timeout_s: Optional[float] = 30.0) -> None:
        """Stop admitting, finish (or cancel) open campaigns, shut down."""
        self.drain(cancel_pending=cancel_pending)
        if self._thread is not None:
            self._thread.join(timeout=timeout_s)
        self._sampler_stop.set()
        if self._sampler is not None:
            self._sampler.join(timeout=5.0)

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # -- health / readiness (HTTP threads) ---------------------------------
    def healthy(self) -> tuple:
        """Liveness: is the broker worth keeping alive?  (ok, checks)."""
        checks = {
            "broker_thread": self._thread is None or self._thread.is_alive()
            or all(c.settled for c in self._campaigns.values()),
            "no_fatal": self._fatal is None,
        }
        return all(checks.values()), checks

    def ready(self) -> tuple:
        """Readiness: should a client submit work here?  (ok, checks).

        Ready means: admission is open (not draining), the broker thread
        is actually running, the fleet has at least one execution slot
        (quorum), and the journal — if configured — can take an append.
        A drained or not-yet-started broker reports not ready while
        staying alive, which is exactly the 503-on-/readyz contract.
        """
        transport = self.transport
        quorum = True
        if transport is not None:
            try:
                quorum = transport.capacity() > 0
            except Exception:
                quorum = False
        checks = {
            "accepting": not self._closed,
            "broker_thread": self._thread is not None
            and self._thread.is_alive(),
            "fleet_quorum": quorum,
            "journal_writable": self.journal is None
            or self.journal.writable(),
        }
        return all(checks.values()), checks

    # -- the sampler thread ------------------------------------------------
    def _sample_loop(self) -> None:
        """Feed the history ring until close(); also refresh fleet gauges.

        Fleet capacity/in-flight live on the transport, not in METRICS —
        mirroring them into gauges here makes them scrapeable and gives
        the ring a utilization trail.
        """
        interval = self.history.interval_s
        while not self._sampler_stop.wait(interval):
            self._sample_once()
        self._sample_once()              # one last sample on shutdown

    def _sample_once(self) -> None:
        METRICS.gauge("service.uptime_s").set(
            round(time.monotonic() - self._started, 3))
        transport = self.transport
        if transport is not None:
            try:
                METRICS.gauge("fabric.capacity").set(transport.capacity())
                METRICS.gauge("fabric.in_flight").set(
                    transport.in_flight())
                METRICS.gauge("fabric.free_slots").set(
                    transport.free_slots())
            except Exception:
                pass                     # a closing transport mid-sample
        self.history.sample(METRICS.snapshot())

    # -- admission (HTTP threads) ------------------------------------------
    def submit(self, spec: CampaignSpec) -> Campaign:
        """Admit one campaign or raise :class:`QuotaError`/ValueError.

        Quota checks run before anything is allocated: a rejected
        submission builds no jobs, opens no stream and consumes zero
        fabric slots (the smoke gate asserts exactly this).
        """
        from ..campaign.jobs import expand_jobs
        from ..designs import case_by_id

        with self._cond:
            if self._closed:
                raise QuotaError("service_shutting_down", 503,
                                 "the service is draining; no new "
                                 "campaigns are admitted")
            self.tenants.admit_campaign(spec.tenant,
                                        memory_limit_mb=spec.memory_limit_mb)
            # Resolve cases before charging anything, so an unknown case
            # id is a clean 400-shaped ValueError, not a half-admitted
            # campaign (or a KeyError the HTTP layer would misread as an
            # unknown *campaign* 404).
            try:
                cases = [case_by_id(cid) for cid in spec.case_ids]
            except KeyError as exc:
                raise ValueError(str(exc.args[0])) from None
            config = EngineConfig(max_bound=spec.depth,
                                  max_frames=spec.frames)
            jobs = expand_jobs(cases=cases,
                               variants=tuple(spec.variants),
                               config=config)
            if not jobs:
                raise ValueError("submission selects no jobs")
            self._seq += 1
            campaign_id = f"c{self._seq:04d}-{uuid.uuid4().hex[:8]}"
            plan = ShardPlan()
            stream = stream_tasks(jobs, group_size=spec.group_size,
                                  cache=self.cache,
                                  schedule=spec.schedule,
                                  model=self.model, plan=plan)
            campaign = Campaign(campaign_id, spec, jobs, stream, plan)
            usage = self.tenants.usage(spec.tenant)
            usage.open_campaigns += 1
            usage.campaigns_total += 1
            # A tenant joining mid-flight starts at the current virtual
            # time frontier, not zero — otherwise it would monopolize
            # the fabric until its vtime caught up with everyone else's.
            floor = min((self.tenants.usage(c.tenant).vtime
                         for c in self._campaigns.values()
                         if not c.settled), default=0.0)
            usage.vtime = max(usage.vtime, floor)
            campaign.seq = self._seq
            self._campaigns[campaign_id] = campaign
            self._order.append(campaign_id)
            if self.journal is not None:
                # Write-ahead: durable before the caller learns the id.
                self.journal.admitted(campaign_id, self._seq, spec.tenant,
                                      campaign.submitted_at, spec.as_dict())
            self._gc_settled()
            METRICS.counter("service.campaigns_submitted").inc()
            METRICS.counter("service.campaigns_submitted",
                            labels={"tenant": spec.tenant}).inc()
            METRICS.gauge("service.campaigns_active").set(
                sum(1 for c in self._campaigns.values() if not c.settled))
            TRACER.instant("campaign_admitted", cat="service",
                           args={"campaign": campaign_id,
                                 "tenant": spec.tenant})
            _LOG.info("campaign admitted", tenant=spec.tenant,
                      campaign=campaign_id, jobs=len(jobs),
                      cases=len(spec.case_ids))
            self._cond.notify_all()
            return campaign

    def cancel(self, campaign_id: str,
               reason: str = "cancelled by client") -> Campaign:
        """Request cancellation; the broker thread applies it."""
        with self._cond:
            campaign = self._campaigns.get(campaign_id)
            if campaign is None:
                raise KeyError(campaign_id)
            if not campaign.settled and not campaign.cancel_requested:
                campaign.cancel_requested = True
                campaign.cancel_reason = reason
                if self.journal is not None:
                    self.journal.cancelled(campaign_id, reason)
                METRICS.counter("service.campaigns_cancelled").inc()
                _LOG.info("campaign cancel requested",
                          tenant=campaign.tenant, campaign=campaign_id,
                          reason=reason)
                self._cond.notify_all()
            return campaign

    # -- queries (HTTP threads) --------------------------------------------
    def get(self, campaign_id: str) -> Campaign:
        with self._cond:
            campaign = self._campaigns.get(campaign_id)
            if campaign is None:
                raise KeyError(campaign_id)
            return campaign

    def list_campaigns(self) -> List[Dict[str, object]]:
        with self._cond:
            return [self._campaigns[cid].summary() for cid in self._order]

    def subscribe(self, campaign_id: str,
                  callback: Callable[[Dict[str, object]], None]
                  ) -> List[Dict[str, object]]:
        """Register a live-event callback; returns the replay backlog.

        The backlog and all later callback invocations together form
        exactly the campaign's feed, gap- and duplicate-free: both
        happen under the broker lock.
        """
        with self._cond:
            campaign = self._campaigns.get(campaign_id)
            if campaign is None:
                raise KeyError(campaign_id)
            replay = list(campaign.feed)
            if not campaign.settled:
                campaign.subscribers.append(callback)
            return replay

    def unsubscribe(self, campaign_id: str, callback) -> None:
        with self._cond:
            campaign = self._campaigns.get(campaign_id)
            if campaign is not None and callback in campaign.subscribers:
                campaign.subscribers.remove(callback)

    def status(self) -> Dict[str, object]:
        """The ``GET /status`` document: fleet, queues, tenants, phases."""
        snapshot = METRICS.snapshot()
        gauges = snapshot.get("gauges", {})
        counters = snapshot.get("counters", {})
        histograms = snapshot.get("histograms", {})
        # The PR 8 durability/resilience signals, readable off a live
        # service: reconnects, retries, requeues, journal append latency.
        append_stats = None
        for name, data in histograms.items():
            if not name.startswith("journal.append_s"):
                continue
            count = int(data.get("count", 0))
            append_stats = {
                "count": count,
                "mean_s": round(float(data.get("sum", 0.0))
                                / count, 6) if count else 0.0,
                "max_s": data.get("max"),
            }
            break
        with self._cond:
            transport = self.transport
            fleet: Dict[str, object] = {"transport": self.transport_kind}
            if transport is not None:
                try:
                    fleet.update({
                        "capacity": transport.capacity(),
                        "in_flight": transport.in_flight(),
                        "free_slots": transport.free_slots(),
                    })
                    stats = transport.worker_stats()
                    if stats:
                        fleet["workers"] = stats
                except Exception:
                    pass
            open_campaigns = [c for c in self._campaigns.values()
                              if not c.settled]
            # Fleet-wide phase view: the settled campaigns' breakdowns
            # folded together — where the service's wall clock went.
            phases: Dict[str, float] = {}
            for campaign in self._campaigns.values():
                for name, value in ((campaign.report_dict or {})
                                    .get("phases") or {}).items():
                    phases[name] = round(phases.get(name, 0.0) + value, 3)
            return {
                "uptime_s": round(time.monotonic() - self._started, 3),
                "accepting": not self._closed,
                "fleet": fleet,
                "queue": {
                    "campaigns_open": len(open_campaigns),
                    "campaigns_total": len(self._campaigns),
                    "queue_depth": gauges.get("scheduler.queue_depth", 0),
                    "in_flight": gauges.get("scheduler.in_flight", 0),
                },
                "retention": {
                    "retain_settled": self.retain_settled,
                    "retain_ttl_s": self.retain_ttl_s,
                    "evicted": self._evicted,
                },
                "fabric": {
                    "reconnects": counters.get("fabric.reconnects", 0),
                    "retries": counters.get("scheduler.retries", 0),
                    "requeues": counters.get("scheduler.requeues", 0),
                    "steals": counters.get("scheduler.steals", 0),
                },
                "durability": {
                    "journal": (str(self.journal.path)
                                if self.journal is not None else None),
                    "fsync": (self.journal.fsync
                              if self.journal is not None else False),
                    "append_latency": append_stats,
                },
                "service": {name: value for name, value in counters.items()
                            if name.startswith("service.")},
                "tenants": self.tenants.report(),
                "phases": phases,
            }

    # -- the broker thread -------------------------------------------------
    def _run(self) -> None:
        try:
            for event in self._scheduler.run():
                tag = event[0]
                if tag == "done":
                    _, _, task, result = event
                    self._on_done(task, result)
                elif tag == "requeue":
                    _, task, worker_id = event
                    self._on_requeue(task, worker_id)
                elif tag == "retry":
                    _, task, attempt, failed = event
                    self._on_retry(task, attempt, failed)
                # "steal" cannot happen (split=None); "notice" never
                # reaches the scheduler — the source converts notices
                # into per-campaign feed events directly.
        except Exception as exc:  # pragma: no cover - defensive
            _LOG.error("broker thread crashed",
                       error=f"{type(exc).__name__}: {exc}")
            with self._cond:
                self._fatal = f"{type(exc).__name__}: {exc}"
                for campaign in self._campaigns.values():
                    if not campaign.settled:
                        campaign.error = self._fatal
                        campaign.status = "cancelled"
                        campaign.cancel_reason = "broker crashed"
                        self._settle(campaign)
            raise

    def _source(self) -> Iterator[object]:
        """The scheduler's job source: fair-share across tenants."""
        while True:
            item = self._next_item()
            if item is StopIteration:
                return
            yield item

    def _next_item(self):
        """One fair-share pick: a task, ``None`` (dry), or StopIteration.

        Runs in the broker thread.  Stream advances (compiles!) happen
        outside the lock; all bookkeeping inside it.
        """
        deadline = time.monotonic() + _SOURCE_POLL_S
        while True:
            with self._cond:
                to_cancel = [c for c in self._campaigns.values()
                             if c.cancel_requested and not c.cancel_applied]
                for campaign in to_cancel:
                    campaign.cancel_applied = True
                    campaign.stream_done = True
            for campaign in to_cancel:
                self._apply_cancel(campaign)
            with self._cond:
                for campaign in to_cancel:
                    self._maybe_settle(campaign)
                if self._closed and all(c.settled for c
                                        in self._campaigns.values()):
                    return StopIteration
                campaign = self._pick()
                if campaign is None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._cond.wait(remaining)
                    continue
            # Advance the chosen campaign's stream OUTSIDE the lock: this
            # is where FT generation + compile happen, and status/submit
            # handlers must not block behind them.
            try:
                item = next(campaign.stream)
            except StopIteration:
                with self._cond:
                    campaign.stream_done = True
                    self._maybe_settle(campaign)
                continue
            except Exception as exc:
                # stream_tasks isolates per-design failures itself; a
                # raise here is a broker bug — fail the one campaign,
                # never the service.
                with self._cond:
                    campaign.stream_done = True
                    campaign.error = f"{type(exc).__name__}: {exc}"
                    self._maybe_settle(campaign)
                continue
            if isinstance(item, SourceNotice):
                with self._cond:
                    self._on_notice(campaign, item)
                continue
            with self._cond:
                usage = self.tenants.usage(campaign.tenant)
                self._owners[id(item)] = campaign
                campaign.live_ids.add(id(item))
                campaign.outstanding += 1
                usage.in_flight += 1
                usage.tasks_total += 1
                quota = self.tenants.quota(campaign.tenant)
                usage.vtime += self.model.task_cost(item) \
                    / max(quota.weight, 1e-9)
                METRICS.counter("service.tasks_issued").inc()
                METRICS.counter("service.tasks_issued",
                                labels={"tenant": campaign.tenant}).inc()
            return item

    def _pick(self) -> Optional[Campaign]:
        """Stride scheduling: min-vtime runnable tenant, oldest campaign.

        Call with the lock held.  A campaign is runnable when its stream
        has more to give and its tenant is under the in-flight cap and
        budget; campaigns of one tenant advance in admission order so a
        tenant's own campaigns are FIFO among themselves.
        """
        best: Optional[Campaign] = None
        best_vtime = 0.0
        for campaign_id in self._order:
            campaign = self._campaigns[campaign_id]
            if campaign.settled or campaign.stream_done \
                    or campaign.cancel_requested:
                continue
            if not self.tenants.may_issue(campaign.tenant):
                continue
            vtime = self.tenants.usage(campaign.tenant).vtime
            if best is None or vtime < best_vtime:
                best = campaign
                best_vtime = vtime
        return best

    def _apply_cancel(self, campaign: Campaign) -> None:
        """Retract a campaign's queued work (broker thread, no lock)."""
        campaign.stream.close()
        live = campaign.live_ids
        self._scheduler.cancel_where(
            lambda job, _live=live: id(job) in _live)
        TRACER.instant("campaign_cancelled", cat="service",
                       args={"campaign": campaign.id,
                             "reason": campaign.cancel_reason})

    def _on_notice(self, campaign: Campaign, notice: SourceNotice) -> None:
        """Compile progress markers become campaign feed events directly.

        The one-shot session converts scheduler-forwarded notices to
        TaskEvents; here notices never enter the scheduler at all (it
        could not attribute them to a campaign), so the broker performs
        the identical conversion itself.
        """
        if notice.kind == "compile_done" and not notice.from_cache:
            campaign.frontend_time_s += notice.wall_time_s
        event = TaskEvent(task_id="", design=notice.design, variant="",
                          status="ok", kind=notice.kind,
                          wall_time_s=notice.wall_time_s,
                          from_cache=notice.from_cache)
        campaign.publish(_serialize_event(event))

    def _on_done(self, task: PropertyTask, result) -> None:
        with self._cond:
            campaign = self._owners.pop(id(task), None)
            if campaign is None:
                return
            campaign.live_ids.discard(id(task))
            campaign.outstanding -= 1
            usage = self.tenants.usage(campaign.tenant)
            usage.in_flight -= 1
            usage.wall_spent_s += result.wall_time_s
            campaign.wall_spent_s += result.wall_time_s
            METRICS.counter("service.tasks_settled").inc()
            METRICS.counter("service.tasks_settled",
                            labels={"tenant": campaign.tenant}).inc()
            event = event_from_result(task, result)
            campaign.events.append(event)
            payload = _serialize_event(event)
            if self.journal is not None:
                # Journal the verdict before any subscriber can see it:
                # a crash after publish but before the append could
                # otherwise double-report the task across a restart.
                self.journal.event(campaign.id, payload)
            campaign.publish(payload)
            # Containment: a tenant that just ran out of wall budget has
            # every open campaign cancelled — enforced, not just
            # reported, veronica-style.
            if self.tenants.over_budget(campaign.tenant):
                for other in self._campaigns.values():
                    if other.tenant == campaign.tenant \
                            and not other.settled \
                            and not other.cancel_requested:
                        other.cancel_requested = True
                        other.cancel_reason = "wall budget exhausted"
                        METRICS.counter(
                            "service.budget_cancellations").inc()
            self._maybe_settle(campaign)

    def _on_requeue(self, task: PropertyTask, worker_id) -> None:
        """A remote worker died holding this task; surface the event."""
        with self._cond:
            campaign = self._owners.get(id(task))
            if campaign is None:
                return
            event = TaskEvent(task_id=task.task_id, design=task.design,
                              variant=task.variant, status="ok",
                              kind="requeue", worker=worker_id)
            campaign.publish(_serialize_event(event))

    def _on_retry(self, task: PropertyTask, attempt: int, failed) -> None:
        """The scheduler re-queued a transiently-failed task; surface it.

        A retry is progress news, not a verdict: the task stays live and
        outstanding, so nothing is journaled — only subscribers see it.
        """
        with self._cond:
            campaign = self._owners.get(id(task))
            if campaign is None:
                return
            event = TaskEvent(task_id=task.task_id, design=task.design,
                              variant=task.variant, status="ok",
                              kind="retry", error=failed.error)
            campaign.publish(_serialize_event(event))

    # -- settle ------------------------------------------------------------
    def _maybe_settle(self, campaign: Campaign) -> None:
        if campaign.settled or not campaign.stream_done \
                or campaign.outstanding:
            return
        self._settle(campaign)

    def _settle(self, campaign: Campaign) -> None:
        """Finalize: merge, report, record, terminal feed event.

        Call with the lock held (broker thread).  The merge and record
        build are pure in-memory folds over this campaign's events —
        fast relative to any verification work, so holding the lock is
        fine.
        """
        campaign.settled = True
        campaign.wall_time_s = time.monotonic() - campaign.started
        usage = self.tenants.usage(campaign.tenant)
        usage.open_campaigns -= 1
        campaign.live_ids.clear()
        was_cancelled = campaign.cancel_requested \
            or campaign.error is not None
        if was_cancelled:
            campaign.status = "cancelled"
        else:
            campaign.status = "completed"
            try:
                self._build_outputs(campaign)
            except Exception as exc:  # pragma: no cover - defensive
                campaign.status = "cancelled"
                campaign.error = (f"report assembly failed: "
                                  f"{type(exc).__name__}: {exc}")
        campaign.settled_at = time.monotonic()
        if self.journal is not None:
            self.journal.settled(
                campaign.id, campaign.status, campaign.error,
                campaign.cancel_reason, round(campaign.wall_time_s, 3),
                campaign.report_dict, campaign.record_dict)
        METRICS.counter("service.campaigns_completed"
                        if campaign.status == "completed"
                        else "service.campaigns_failed").inc()
        METRICS.gauge("service.campaigns_active").set(
            sum(1 for c in self._campaigns.values() if not c.settled))
        # Admission-to-settle per tenant: the end-to-end latency a
        # tenant actually experiences, queueing and fair-share included.
        METRICS.histogram("service.settle_latency_s",
                          bounds=SETTLE_BOUNDS,
                          labels={"tenant": campaign.tenant}).observe(
                              campaign.wall_time_s)
        TRACER.instant("campaign_settled", cat="service",
                       args={"campaign": campaign.id,
                             "status": campaign.status})
        _LOG.info("campaign settled", tenant=campaign.tenant,
                  campaign=campaign.id, status=campaign.status,
                  wall_s=round(campaign.wall_time_s, 3),
                  tasks=sum(1 for e in campaign.events if e.is_result),
                  **({"error": campaign.error} if campaign.error else {}))
        campaign.publish({
            "kind": "campaign_done", "campaign": campaign.id,
            "status": campaign.status,
            "cancel_reason": campaign.cancel_reason,
            "error": campaign.error,
            "wall_time_s": round(campaign.wall_time_s, 3),
        })
        campaign.subscribers = []
        self._gc_settled()
        self._cond.notify_all()

    def _gc_settled(self) -> None:
        """Evict settled campaigns past the retention policy (lock held).

        Oldest-settled first; open campaigns are never touched.  Each
        eviction is journaled so a restart does not resurrect the
        campaign from its admission record.
        """
        settled = [c for c in self._campaigns.values()
                   if c.settled and c.settled_at is not None]
        settled.sort(key=lambda c: c.settled_at)
        evict: List[Campaign] = []
        if self.retain_ttl_s is not None:
            horizon = time.monotonic() - self.retain_ttl_s
            evict.extend(c for c in settled if c.settled_at < horizon)
        if self.retain_settled is not None:
            keep = [c for c in settled if c not in evict]
            if len(keep) > self.retain_settled:
                evict.extend(keep[:len(keep) - self.retain_settled])
        for campaign in evict:
            del self._campaigns[campaign.id]
            self._order.remove(campaign.id)
            if self.journal is not None:
                self.journal.evicted(campaign.id)
            self._evicted += 1
            METRICS.counter("service.campaigns_evicted").inc()

    def _build_outputs(self, campaign: Campaign) -> None:
        """Merged results -> CampaignReport -> validated ExecutionRecord."""
        results = merge_shard_results(campaign.plan, campaign.events)
        campaign.results = results
        report = CampaignReport(
            campaign.plan.jobs, results,
            workers=self.workers,
            wall_time_s=campaign.wall_time_s,
            cache_stats=self.cache.stats() if self.cache else None,
            schedule=campaign.spec.schedule,
            transport=self.transport_kind,
            worker_stats=(self.transport.worker_stats()
                          if self.transport is not None else None),
            frontend_time_s=campaign.frontend_time_s)
        campaign.report_dict = report.as_dict()
        campaign.report_dict["campaign"] = campaign.id
        campaign.report_dict["tenant"] = campaign.tenant
        quota = self.tenants.quota(campaign.tenant)
        usage = self.tenants.usage(campaign.tenant)
        campaign.report_dict["tenant_usage"] = {
            "wall_spent_s": round(usage.wall_spent_s, 3),
            "wall_budget_s": quota.wall_budget_s,
        }
        record = build_record(
            report,
            config={"service": True, "campaign": campaign.id,
                    "tenant": campaign.tenant,
                    "transport": self.transport_kind,
                    "workers": self.workers,
                    **campaign.spec.as_dict()},
            metrics=METRICS.snapshot())
        # The digest-validated contract: the record must survive a JSON
        # round trip and re-validate, or the campaign is not "completed".
        data = json.loads(record.to_json())
        validate_record(data)
        campaign.record_dict = data
        METRICS.counter("service.records_built").inc()

    # -- restart recovery --------------------------------------------------
    def _recover(self) -> None:
        """Replay the journal: restore settled campaigns, re-admit open.

        Runs in ``start()`` before the broker thread exists, so no lock
        is needed.  Re-admitted campaigns re-enter the fair source as
        ordinary work; their already-settled tasks are filtered out of
        the task stream (the events replay from the journal, the task
        *work* replays from the shared :class:`ArtifactCache`), so only
        genuinely unfinished tasks hit the fabric again.
        """
        restored = 0
        for state in self.journal.replay():
            try:
                spec = CampaignSpec.from_json(state.spec)
            except ValueError:
                continue  # journal from an incompatible build: skip
            self._seq = max(self._seq, state.seq)
            if state.settled is not None:
                campaign = self._restore_settled(state, spec)
            else:
                campaign = self._readmit(state, spec)
            if campaign is None:
                continue
            campaign.seq = state.seq
            self._campaigns[campaign.id] = campaign
            self._order.append(campaign.id)
            restored += 1
        if restored:
            METRICS.counter("service.campaigns_recovered").inc(restored)
            METRICS.gauge("service.campaigns_active").set(
                sum(1 for c in self._campaigns.values() if not c.settled))
            TRACER.instant("journal_replayed", cat="service",
                           args={"restored": restored})
            _LOG.info("journal replayed", restored=restored,
                      open=sum(1 for c in self._campaigns.values()
                               if not c.settled),
                      journal=str(self.journal.path))
        self._gc_settled()

    @staticmethod
    def _event_from_payload(payload: Dict[str, object]) -> TaskEvent:
        """A journaled event dict back into a TaskEvent.

        Unknown keys are dropped so journals written by a build with
        extra event fields still replay (missing fields take dataclass
        defaults).
        """
        names = {f.name for f in fields(TaskEvent)}
        return TaskEvent(**{k: v for k, v in payload.items()
                            if k in names})

    def _restore_settled(self, state: JournaledCampaign,
                         spec: CampaignSpec) -> Campaign:
        """A terminal campaign comes back queryable, never re-run."""
        settled = state.settled or {}
        campaign = Campaign(state.campaign_id, spec, jobs=[],
                            stream=iter(()), plan=ShardPlan())
        campaign.submitted_at = state.submitted_at
        campaign.settled = True
        campaign.stream_done = True
        campaign.settled_at = time.monotonic()
        campaign.status = str(settled.get("status", "cancelled"))
        campaign.error = settled.get("error")
        campaign.cancel_reason = settled.get("cancel_reason") \
            or state.cancel_reason
        campaign.wall_time_s = float(settled.get("wall_time_s") or 0.0)
        campaign.report_dict = settled.get("report")
        campaign.record_dict = settled.get("record")
        events = [self._event_from_payload(p) for p in state.events]
        campaign.events = events
        campaign.wall_spent_s = sum(e.wall_time_s for e in events
                                    if e.is_result)
        campaign.feed = list(state.events)
        campaign.feed.append({
            "kind": "campaign_done", "campaign": campaign.id,
            "status": campaign.status,
            "cancel_reason": campaign.cancel_reason,
            "error": campaign.error,
            "wall_time_s": round(campaign.wall_time_s, 3),
        })
        usage = self.tenants.usage(spec.tenant)
        usage.campaigns_total += 1
        usage.wall_spent_s += campaign.wall_spent_s
        return campaign

    def _readmit(self, state: JournaledCampaign,
                 spec: CampaignSpec) -> Optional[Campaign]:
        """An open campaign resumes: stream rebuilt, settled tasks cut."""
        from ..campaign.jobs import expand_jobs
        from ..designs import case_by_id

        try:
            cases = [case_by_id(cid) for cid in spec.case_ids]
            config = EngineConfig(max_bound=spec.depth,
                                  max_frames=spec.frames)
            jobs = expand_jobs(cases=cases, variants=tuple(spec.variants),
                               config=config)
        except Exception:
            return None  # corpus changed under the journal: drop it
        if not jobs:
            return None
        plan = ShardPlan()
        raw = stream_tasks(jobs, group_size=spec.group_size,
                           cache=self.cache, schedule=spec.schedule,
                           model=self.model, plan=plan)
        done_ids = state.settled_task_ids
        stream = self._skip_settled(raw, done_ids) if done_ids else raw
        campaign = Campaign(state.campaign_id, spec, jobs, stream, plan)
        campaign.submitted_at = state.submitted_at
        events = [self._event_from_payload(p) for p in state.events]
        campaign.events = events
        campaign.wall_spent_s = sum(e.wall_time_s for e in events
                                    if e.is_result)
        campaign.feed = list(state.events)
        if state.cancel_reason is not None:
            campaign.cancel_requested = True
            campaign.cancel_reason = state.cancel_reason
        usage = self.tenants.usage(spec.tenant)
        usage.open_campaigns += 1
        usage.campaigns_total += 1
        usage.wall_spent_s += campaign.wall_spent_s
        return campaign

    @staticmethod
    def _skip_settled(stream: Iterator, done_ids: Set[str]) -> Iterator:
        """Filter journaled-as-settled tasks out of a rebuilt stream.

        Notices pass through (compile progress is real again on this
        run); the plan still records every task, so the final merge sees
        the full shard map — replayed events fill the settled slots.
        """
        for item in stream:
            if isinstance(item, SourceNotice):
                yield item
            elif getattr(item, "task_id", None) not in done_ids:
                yield item
