"""``repro.service`` — campaign-as-a-service: the long-lived front door.

Everything below this package was one-shot: ``autosva campaign`` builds
a scheduler, runs to completion, tears the fabric down.  The service
keeps all of it alive — ONE worker fabric (local fork pool or TCP
fleet), one process-global compile cache, one optional artifact cache —
and multiplexes many tenants' concurrent campaigns onto it over HTTP:

* :mod:`~repro.service.tenancy` — per-tenant quotas (wall budget,
  memory ceiling, in-flight cap, open-campaign cap, fair-share weight)
  with structured 403/429 rejections, enforced at admission *and*
  during execution;
* :mod:`~repro.service.broker` — the admission-controlled multiplexer:
  a single long-lived scheduler run over a stride-scheduled fair-share
  source, per-campaign event feeds, ``cancel_where`` retraction, and a
  merged report + digest-validated
  :class:`~repro.obs.record.ExecutionRecord` per settled campaign;
* :mod:`~repro.service.http` — stdlib HTTP/1.1 parsing and SSE/NDJSON
  framing;
* :mod:`~repro.service.server` — the asyncio front door
  (``autosva serve``) with submit/stream/report/status/cancel routes.

Quick start (and ``make service-smoke`` is the scripted version)::

    autosva serve --listen 127.0.0.1:8420 --workers 2
    curl -d '{"tenant":"alice","cases":["A1"]}' \\
        http://127.0.0.1:8420/campaigns
    curl -N http://127.0.0.1:8420/campaigns/<id>/events

Verdicts are bit-identical to the one-shot CLI by construction — the
broker reuses the same streaming frontend, scheduler, and merge — and
the service smoke gate asserts it with
:func:`~repro.campaign.report.verdict_contract` digests.
"""

from .broker import Campaign, CampaignBroker, CampaignSpec
from .server import CampaignServer, serve_main
from .tenancy import (DEFAULT_QUOTA, QuotaError, TenantQuota,
                      TenantRegistry, TenantUsage)

__all__ = [
    "Campaign", "CampaignBroker", "CampaignSpec",
    "CampaignServer", "serve_main",
    "DEFAULT_QUOTA", "QuotaError", "TenantQuota", "TenantRegistry",
    "TenantUsage",
]
