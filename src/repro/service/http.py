"""Minimal HTTP/1.1 plumbing for the campaign service (stdlib only).

The service deliberately avoids web frameworks — the repo's
zero-dependency rule — so this module is the small, boring corner where
wire bytes are parsed and formatted: request parsing off an asyncio
stream, JSON responses, and the two streaming framings (SSE and NDJSON).
Nothing here knows what a campaign is.

Scope is intentionally v1-narrow, matching the fabric's trusted-network
posture (see ``docs/distributed.md``): HTTP/1.1 only, no TLS, no auth,
no chunked request bodies, ``Connection: close`` on every response.
Limits on request-line/header/body sizes keep a confused or hostile
client from ballooning server memory.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = ["BadRequest", "Request", "read_request", "response_bytes",
           "json_response", "sse_frame", "ndjson_frame", "split_path",
           "stream_headers"]

#: Hard caps on what one request may ship (bytes).
MAX_REQUEST_LINE = 8192
MAX_HEADER_BYTES = 32768
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK", 201: "Created", 202: "Accepted", 204: "No Content",
    400: "Bad Request", 403: "Forbidden", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class BadRequest(Exception):
    """The client sent something unparseable; maps to a 400."""


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> object:
        """Parse the body as JSON; :class:`BadRequest` on garbage."""
        if not self.body:
            raise BadRequest("request body is empty; expected JSON")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise BadRequest(f"request body is not valid JSON: {exc}")


def _parse_query(raw: str) -> Dict[str, str]:
    query: Dict[str, str] = {}
    for pair in raw.split("&"):
        if not pair:
            continue
        name, _, value = pair.partition("=")
        query[name] = value
    return query


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Read one request off the stream; None on clean EOF before any byte.

    Raises :class:`BadRequest` on malformed input and
    ``asyncio.LimitOverrunError``-free: all reads are bounded.
    """
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise BadRequest("truncated request line")
    except asyncio.LimitOverrunError:
        raise BadRequest("request line too long")
    if len(line) > MAX_REQUEST_LINE:
        raise BadRequest("request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise BadRequest(f"malformed request line: {line!r}")
    method, target, _version = parts
    path, _, raw_query = target.partition("?")

    headers: Dict[str, str] = {}
    total = 0
    while True:
        try:
            line = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise BadRequest("truncated headers")
        if line in (b"\r\n", b"\n"):
            break
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise BadRequest("headers too large")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise BadRequest(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise BadRequest("malformed Content-Length")
        if length < 0 or length > MAX_BODY_BYTES:
            raise BadRequest(f"body too large ({length} bytes; limit "
                             f"{MAX_BODY_BYTES})")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise BadRequest("truncated body")
    elif headers.get("transfer-encoding"):
        raise BadRequest("chunked request bodies are not supported")

    return Request(method=method.upper(), path=path,
                   query=_parse_query(raw_query), headers=headers,
                   body=body)


def response_bytes(status: int, body: bytes,
                   content_type: str = "application/json") -> bytes:
    """A complete non-streaming HTTP/1.1 response."""
    reason = _REASONS.get(status, "Unknown")
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n")
    return head.encode("latin-1") + body


def json_response(status: int, payload: object) -> bytes:
    body = (json.dumps(payload, indent=2, sort_keys=True) + "\n") \
        .encode("utf-8")
    return response_bytes(status, body)


def stream_headers(content_type: str) -> bytes:
    """Response head for an unbounded stream (no Content-Length)."""
    return (f"HTTP/1.1 200 OK\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Cache-Control: no-store\r\n"
            f"Connection: close\r\n\r\n").encode("latin-1")


def sse_frame(payload: object) -> bytes:
    """One Server-Sent-Events frame: ``data: <json>\\n\\n``."""
    return (f"data: {json.dumps(payload, sort_keys=True)}\n\n") \
        .encode("utf-8")


def ndjson_frame(payload: object) -> bytes:
    """One newline-delimited-JSON line (the SSE fallback framing)."""
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def split_path(path: str) -> Tuple[str, ...]:
    """``/campaigns/c1/events`` -> ``("campaigns", "c1", "events")``."""
    return tuple(part for part in path.split("/") if part)
