"""``autosva top --connect URL``: the live operator dashboard.

A plain-ANSI terminal view over a running ``autosva serve`` — no
curses, no dependencies, just a full-redraw every ``--interval``
seconds from two endpoints:

* ``GET /status`` — fleet capacity, queue depth, per-tenant in-flight
  vs quota, worker utilization and heartbeat RTT, reconnect/retry
  counters;
* ``GET /metrics/history`` — the broker's in-memory snapshot ring,
  differenced into throughput and queue-depth sparklines, so trends
  are visible without Prometheus.

CI drives the same code with ``--once`` (single frame, no clearing) to
prove the dashboard renders against a live service; operators just run
it in a spare terminal.  Exit: ``q``-less — Ctrl-C returns 0.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Sequence

from ..obs.log import fatal

__all__ = ["top_main", "build_top_parser", "render_frame", "sparkline"]

_BLOCKS = " ▁▂▃▄▅▆▇█"
_CLEAR = "\x1b[H\x1b[2J"


def sparkline(values: Sequence[float], width: int = 32) -> str:
    """The last ``width`` values as unicode block characters."""
    tail = list(values)[-width:]
    if not tail:
        return "(no data)"
    top = max(tail)
    if top <= 0:
        return "▁" * len(tail)
    out = []
    for value in tail:
        index = int(round((len(_BLOCKS) - 1) * max(0.0, value) / top))
        out.append(_BLOCKS[max(1, index)])
    return "".join(out)


def _normalize_url(target: str) -> str:
    if not target.startswith(("http://", "https://")):
        target = "http://" + target
    return target.rstrip("/")


def _fetch(base: str, path: str, timeout: float = 5.0) -> Dict:
    with urllib.request.urlopen(base + path, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def _series(history: Dict, name: str, kind: str = "counters"
            ) -> List[float]:
    out: List[float] = []
    for entry in history.get("samples") or []:
        table = entry.get(kind) or {}
        if name in table:
            value = table[name]
            if isinstance(value, dict):
                value = value.get("count", 0)
            out.append(float(value))
    return out


def _deltas(values: List[float]) -> List[float]:
    return [max(0.0, b - a) for a, b in zip(values, values[1:])]


def render_frame(status: Dict, history: Dict, url: str) -> str:
    """One full dashboard frame as a string (testable without a tty)."""
    lines: List[str] = []
    fleet = status.get("fleet") or {}
    queue = status.get("queue") or {}
    fabric = status.get("fabric") or {}
    durability = status.get("durability") or {}
    uptime = float(status.get("uptime_s", 0.0))
    accepting = status.get("accepting", True)
    lines.append(f"autosva top — {url}   uptime {uptime:,.0f}s   "
                 f"{'ACCEPTING' if accepting else 'DRAINING'}")
    lines.append("─" * 72)

    capacity = fleet.get("capacity", "?")
    in_flight = fleet.get("in_flight", "?")
    free = fleet.get("free_slots", "?")
    lines.append(f"fleet     transport={fleet.get('transport', '?')}  "
                 f"capacity={capacity}  in_flight={in_flight}  "
                 f"free={free}")
    lines.append(f"queue     depth={queue.get('queue_depth', 0)}  "
                 f"in_flight={queue.get('in_flight', 0)}  "
                 f"campaigns {queue.get('campaigns_open', 0)} open / "
                 f"{queue.get('campaigns_total', 0)} total")
    lines.append(f"fabric    reconnects={fabric.get('reconnects', 0)}  "
                 f"retries={fabric.get('retries', 0)}  "
                 f"requeues={fabric.get('requeues', 0)}  "
                 f"steals={fabric.get('steals', 0)}")
    append = durability.get("append_latency")
    if append:
        lines.append(f"journal   appends={append.get('count', 0)}  "
                     f"mean={1000.0 * float(append.get('mean_s') or 0):.2f}ms"
                     f"  fsync={'on' if durability.get('fsync') else 'off'}")

    settled = _series(history, "service.tasks_settled")
    if len(settled) >= 2:
        rates = _deltas(settled)
        lines.append(f"settled   {sparkline(rates)}  "
                     f"(last {rates[-1]:.0f}/tick, "
                     f"{settled[-1]:.0f} total)")
    depth = _series(history, "scheduler.queue_depth", kind="gauges")
    if depth:
        lines.append(f"depth     {sparkline(depth)}  (now {depth[-1]:.0f})")

    tenants = status.get("tenants") or {}
    if tenants:
        lines.append("")
        lines.append(f"{'tenant':<14}{'in-flight':>10}{'cap':>7}"
                     f"{'open':>6}{'tasks':>8}{'wall s':>10}")
        for name in sorted(tenants):
            entry = tenants[name]
            quota = entry.get("quota") or {}
            cap = quota.get("max_in_flight")
            lines.append(
                f"{name:<14}{entry.get('in_flight', 0):>10}"
                f"{('∞' if cap is None else cap):>7}"
                f"{entry.get('open_campaigns', 0):>6}"
                f"{entry.get('tasks_total', 0):>8}"
                f"{entry.get('wall_spent_s', 0.0):>10.1f}")

    workers = fleet.get("workers") or []
    if workers:
        lines.append("")
        lines.append(f"{'worker':<22}{'slots':>6}{'tasks':>7}{'util':>7}"
                     f"{'rtt ms':>8}{'reconn':>7}  state")
        for stats in workers:
            rtt = stats.get("heartbeat_rtt_ms") or {}
            mean_rtt = rtt.get("mean")
            lines.append(
                f"{str(stats.get('worker', '?')):<22}"
                f"{stats.get('slots', 0):>6}"
                f"{stats.get('tasks', 0):>7}"
                f"{float(stats.get('utilization') or 0.0):>7.0%}"
                f"{(f'{mean_rtt:.1f}' if mean_rtt is not None else '—'):>8}"
                f"{stats.get('reconnects', 0):>7}  "
                f"{stats.get('departed') or 'up'}")
    return "\n".join(lines)


def build_top_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="autosva top",
        description="Live terminal dashboard for a running campaign "
                    "service: fleet, queues, per-tenant quotas, "
                    "throughput sparklines.  Polls GET /status and "
                    "GET /metrics/history; plain ANSI, no curses.")
    parser.add_argument("--connect", required=True, metavar="URL",
                        help="service address: HOST:PORT or http://URL")
    parser.add_argument("--interval", type=float, default=2.0, metavar="S",
                        help="seconds between redraws (default 2)")
    parser.add_argument("--once", action="store_true",
                        help="render a single frame and exit (CI mode)")
    parser.add_argument("--iterations", type=int, default=0, metavar="N",
                        help="exit after N frames (0 = run until Ctrl-C)")
    parser.add_argument("--no-clear", action="store_true",
                        help="append frames instead of redrawing in place")
    return parser


def top_main(argv: Sequence[str]) -> int:
    try:
        args = build_top_parser().parse_args(list(argv))
    except SystemExit as exc:
        return 0 if exc.code in (0, None) else 1
    url = _normalize_url(args.connect)
    frames = 1 if args.once else args.iterations
    rendered = 0
    try:
        while True:
            try:
                status = _fetch(url, "/status")
                history = _fetch(url, "/metrics/history")
            except (urllib.error.URLError, OSError, ValueError) as exc:
                return fatal("autosva top", "cannot reach service",
                             url=url, detail=str(exc))
            frame = render_frame(status, history, url)
            if not args.no_clear and not args.once:
                sys.stdout.write(_CLEAR)
            sys.stdout.write(frame + "\n")
            sys.stdout.flush()
            rendered += 1
            if frames and rendered >= frames:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
