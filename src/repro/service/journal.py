"""Write-ahead campaign journal: the service's crash-durability layer.

One JSONL file under ``--state-dir`` records everything the broker must
not forget across a crash:

``admitted``
    a campaign passed admission control — its id, sequence number,
    tenant and full :class:`~repro.service.broker.CampaignSpec`;
``event``
    a settled task verdict (the serialized ``TaskEvent``) — journaled
    *before* it is published to subscribers, so anything a client ever
    saw is durable;
``cancel``
    a cancellation request and its reason;
``settled``
    the terminal campaign state, including the finished report and the
    digest-validated ``ExecutionRecord`` wire dicts, so a restarted
    server serves ``/report`` and ``/record`` for completed campaigns
    byte-identically;
``evicted``
    the retention policy garbage-collected a settled campaign — replay
    drops it instead of resurrecting it.

Appends ride :func:`repro.campaign.history.atomic_append` (``O_APPEND``
+ single ``write`` = one untearable line; opt-in fsync).  Replay is
tolerant by construction: a torn trailing line — the crash landed
mid-append — is skipped exactly like
:meth:`~repro.campaign.history.CampaignHistory.entries` does, and the
work it described simply re-runs (cheap: settled tasks replay from the
shared :class:`~repro.campaign.cache.ArtifactCache`).

The ``journal.torn_append`` fault site rehearses precisely that crash:
armed, it writes a half-length record and dies mid-append.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..campaign.history import atomic_append
from ..obs import METRICS
from ..testing.faults import FAULTS

__all__ = ["CampaignJournal", "JournaledCampaign"]

JOURNAL_NAME = "journal.jsonl"

#: Bucket bounds for the append-latency histogram: an in-page-cache
#: append lands in the first bucket; an fsync on spinning metal in the
#: last.  This is the live form of the BENCH_campaign.json "fsync tax".
APPEND_BOUNDS = (0.0001, 0.0005, 0.002, 0.01, 0.05)


@dataclass
class JournaledCampaign:
    """One campaign's state as reconstructed from the journal."""

    campaign_id: str
    seq: int
    tenant: str
    submitted_at: float
    spec: Dict[str, object]
    events: List[Dict[str, object]] = field(default_factory=list)
    cancel_reason: Optional[str] = None
    settled: Optional[Dict[str, object]] = None
    evicted: bool = False

    @property
    def settled_task_ids(self) -> set:
        """Task ids whose verdicts are durable — they must not re-run."""
        return {event["task_id"] for event in self.events
                if event.get("task_id")}


class CampaignJournal:
    """Append-only write-ahead log for one ``--state-dir``."""

    def __init__(self, state_dir, fsync: bool = True) -> None:
        self.state_dir = Path(state_dir)
        self.path = self.state_dir / JOURNAL_NAME
        self.fsync = fsync
        self._repair_tail()

    def _repair_tail(self) -> None:
        """Terminate a torn final line so the next append starts fresh.

        A crash mid-append leaves a partial record with no newline; a
        naive append would glue the next record onto it and lose *both*
        lines to the parser.  Sealing the tear with a bare newline keeps
        the torn record a single skipped line.
        """
        try:
            with self.path.open("rb") as handle:
                handle.seek(-1, 2)
                torn = handle.read(1) != b"\n"
        except (OSError, ValueError):
            return  # missing or empty file: nothing to repair
        if torn:
            atomic_append(self.path, b"\n", fsync=self.fsync)

    def writable(self) -> bool:
        """Can the next append land?  The /readyz journal check."""
        if self.path.exists():
            return os.access(self.path, os.W_OK)
        return os.access(self.state_dir, os.W_OK)

    # -- writing -----------------------------------------------------------
    def append(self, record: Dict[str, object]) -> None:
        data = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        torn = FAULTS.enabled and FAULTS.maybe_fire("journal.torn_append")
        if torn:
            data = data[: max(1, len(data) // 2)]
        started = time.perf_counter()
        atomic_append(self.path, data, fsync=self.fsync)
        METRICS.histogram(
            "journal.append_s", bounds=APPEND_BOUNDS,
            labels={"fsync": "on" if self.fsync else "off"}).observe(
                time.perf_counter() - started)
        if torn:
            FAULTS.die("journal.torn_append")

    def admitted(self, campaign_id: str, seq: int, tenant: str,
                 submitted_at: float, spec: Dict[str, object]) -> None:
        self.append({"kind": "admitted", "campaign": campaign_id,
                     "seq": seq, "tenant": tenant,
                     "submitted_at": submitted_at, "spec": spec})

    def event(self, campaign_id: str, payload: Dict[str, object]) -> None:
        self.append({"kind": "event", "campaign": campaign_id,
                     "event": payload})

    def cancelled(self, campaign_id: str, reason: str) -> None:
        self.append({"kind": "cancel", "campaign": campaign_id,
                     "reason": reason})

    def settled(self, campaign_id: str, status: str,
                error: Optional[str], cancel_reason: Optional[str],
                wall_time_s: float,
                report: Optional[Dict[str, object]],
                record: Optional[Dict[str, object]]) -> None:
        self.append({"kind": "settled", "campaign": campaign_id,
                     "status": status, "error": error,
                     "cancel_reason": cancel_reason,
                     "wall_time_s": wall_time_s,
                     "report": report, "record": record})

    def evicted(self, campaign_id: str) -> None:
        self.append({"kind": "evicted", "campaign": campaign_id})

    # -- replay ------------------------------------------------------------
    def entries(self) -> List[Dict[str, object]]:
        """All parseable journal records, oldest first.

        Blank and unparseable lines (the torn tail of a crash that
        landed mid-append) are skipped — the corresponding work re-runs.
        """
        try:
            lines = self.path.read_text().splitlines()
        except OSError:
            return []
        out = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                out.append(record)
        return out

    def replay(self) -> List[JournaledCampaign]:
        """Reconstruct campaign states in admission order.

        Evicted campaigns are dropped; records for campaigns whose
        admission line was torn away are ignored (nothing to resume —
        the tenant's submission never got its 201 durably recorded).
        """
        campaigns: Dict[str, JournaledCampaign] = {}
        for record in self.entries():
            campaign_id = record.get("campaign")
            kind = record.get("kind")
            if kind == "admitted":
                campaigns[campaign_id] = JournaledCampaign(
                    campaign_id=campaign_id,
                    seq=int(record.get("seq", 0)),
                    tenant=str(record.get("tenant", "anonymous")),
                    submitted_at=float(record.get("submitted_at", 0.0)),
                    spec=record.get("spec") or {})
                continue
            state = campaigns.get(campaign_id)
            if state is None:
                continue
            if kind == "event":
                payload = record.get("event")
                if isinstance(payload, dict):
                    state.events.append(payload)
            elif kind == "cancel":
                state.cancel_reason = str(record.get("reason") or "cancelled")
            elif kind == "settled":
                state.settled = record
            elif kind == "evicted":
                state.evicted = True
        return [state for state in campaigns.values() if not state.evicted]
