"""The campaign service front door: ``autosva serve``.

An asyncio HTTP/1.1 server (stdlib only) over the
:class:`~repro.service.broker.CampaignBroker`.  The event loop owns the
sockets; the broker's single background thread owns the scheduler and
the worker fabric; they meet only in short lock-guarded broker calls, so
a slow compile never blocks an HTTP response and a slow client never
blocks verification.

Routes (see ``docs/service.md`` for the full API reference)::

    POST   /campaigns              submit a campaign        -> 201 + id
    GET    /campaigns              list campaigns
    GET    /campaigns/{id}         one campaign's summary
    GET    /campaigns/{id}/events  live TaskEvent stream (SSE; add
                                   ?format=ndjson for plain JSON lines)
    GET    /campaigns/{id}/report  Table-III report (202 while running)
    GET    /campaigns/{id}/record  digest-validated ExecutionRecord
    DELETE /campaigns/{id}         cancel a campaign
    GET    /status                 fleet + queue + tenant quota gauges

Quota rejections arrive as structured JSON with the
:class:`~repro.service.tenancy.QuotaError` code and a matching 403/429
status, and provably consume no fabric slot.  Event streams replay the
campaign's full backlog first, then follow live — a reconnecting client
misses nothing — and terminate with a ``campaign_done`` marker frame.

Like the TCP worker fabric, v1 of the service trusts its network: no
TLS, no authentication — bind to loopback or a private interface only
(``docs/distributed.md`` states the shared posture).
"""

from __future__ import annotations

import asyncio
import signal
from typing import List, Optional

from ..obs import METRICS
from ..obs.log import (add_log_arguments, configure_from_args, fatal,
                       get_logger)
from ..obs.promexport import PROM_CONTENT_TYPE, render_prometheus
from .broker import CampaignBroker, CampaignSpec
from .http import (BadRequest, Request, json_response, ndjson_frame,
                   read_request, response_bytes, split_path, sse_frame,
                   stream_headers)
from .tenancy import QuotaError, TenantRegistry

__all__ = ["CampaignServer", "serve_main", "build_serve_parser"]

_LOG = get_logger("service.server")


class CampaignServer:
    """Routes HTTP requests onto a running :class:`CampaignBroker`."""

    def __init__(self, broker: CampaignBroker) -> None:
        self.broker = broker
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle ---------------------------------------------------------
    async def start(self, host: str, port: int) -> None:
        self._server = await asyncio.start_server(self._client, host, port)

    @property
    def address(self):
        sock = self._server.sockets[0]
        return sock.getsockname()[:2]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- connection handling ----------------------------------------------
    async def _client(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                request = await read_request(reader)
            except BadRequest as exc:
                writer.write(json_response(
                    400, {"error": "bad_request", "detail": str(exc)}))
                await writer.drain()
                return
            if request is None:
                return
            await self._route(request, writer)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _route(self, request: Request,
                     writer: asyncio.StreamWriter) -> None:
        parts = split_path(request.path)
        try:
            if parts == ("status",) and request.method == "GET":
                writer.write(json_response(200, self.broker.status()))
            elif parts == ("metrics",) and request.method == "GET":
                body = render_prometheus(METRICS.snapshot())
                writer.write(response_bytes(
                    200, body.encode("utf-8"),
                    content_type=PROM_CONTENT_TYPE))
            elif parts == ("metrics", "history") \
                    and request.method == "GET":
                writer.write(json_response(
                    200, self.broker.history.as_dict()))
            elif parts == ("healthz",) and request.method == "GET":
                ok, checks = self.broker.healthy()
                writer.write(json_response(
                    200 if ok else 503,
                    {"status": "ok" if ok else "failing",
                     "checks": checks}))
            elif parts == ("readyz",) and request.method == "GET":
                ok, checks = self.broker.ready()
                writer.write(json_response(
                    200 if ok else 503,
                    {"status": "ready" if ok else "not_ready",
                     "checks": checks}))
            elif parts == ("campaigns",):
                if request.method == "POST":
                    await self._submit(request, writer)
                elif request.method == "GET":
                    writer.write(json_response(
                        200, {"campaigns": self.broker.list_campaigns()}))
                else:
                    writer.write(json_response(
                        405, {"error": "method_not_allowed"}))
            elif len(parts) >= 2 and parts[0] == "campaigns":
                await self._campaign(request, writer, parts[1], parts[2:])
            else:
                writer.write(json_response(
                    404, {"error": "not_found",
                          "detail": f"no route for {request.path}"}))
        except QuotaError as exc:
            writer.write(json_response(exc.http_status, exc.as_dict()))
        except BadRequest as exc:
            writer.write(json_response(
                400, {"error": "bad_request", "detail": str(exc)}))
        except KeyError as exc:
            writer.write(json_response(
                404, {"error": "unknown_campaign",
                      "detail": f"no campaign {exc.args[0]!r}"}))
        except ValueError as exc:
            writer.write(json_response(
                400, {"error": "invalid_submission", "detail": str(exc)}))
        await writer.drain()

    async def _submit(self, request: Request,
                      writer: asyncio.StreamWriter) -> None:
        spec = CampaignSpec.from_json(request.json())
        campaign = self.broker.submit(spec)
        writer.write(json_response(201, {
            "id": campaign.id,
            "tenant": campaign.tenant,
            "status": campaign.status,
            "jobs": len(campaign.jobs),
            "links": {
                "self": f"/campaigns/{campaign.id}",
                "events": f"/campaigns/{campaign.id}/events",
                "report": f"/campaigns/{campaign.id}/report",
                "record": f"/campaigns/{campaign.id}/record",
            },
        }))

    async def _campaign(self, request: Request,
                        writer: asyncio.StreamWriter,
                        campaign_id: str, rest) -> None:
        if not rest:
            if request.method == "GET":
                campaign = self.broker.get(campaign_id)
                writer.write(json_response(200, campaign.summary()))
            elif request.method == "DELETE":
                campaign = self.broker.cancel(campaign_id)
                writer.write(json_response(202, campaign.summary()))
            else:
                writer.write(json_response(
                    405, {"error": "method_not_allowed"}))
            return
        if request.method != "GET":
            writer.write(json_response(405,
                                       {"error": "method_not_allowed"}))
            return
        if rest == ("events",):
            await self._events(request, writer, campaign_id)
        elif rest == ("report",):
            campaign = self.broker.get(campaign_id)
            if not campaign.finished:
                writer.write(json_response(202, {
                    "status": campaign.status,
                    "detail": "campaign still running; stream "
                              f"/campaigns/{campaign_id}/events or poll",
                }))
            elif campaign.report_dict is None:
                writer.write(json_response(409, {
                    "error": "no_report", "status": campaign.status,
                    "cancel_reason": campaign.cancel_reason,
                    "detail": campaign.error
                    or "cancelled campaigns produce no report",
                }))
            else:
                writer.write(json_response(200, campaign.report_dict))
        elif rest == ("record",):
            campaign = self.broker.get(campaign_id)
            if campaign.record_dict is None:
                status = 202 if not campaign.finished else 409
                writer.write(json_response(status, {
                    "error": "no_record", "status": campaign.status,
                }))
            else:
                writer.write(json_response(200, campaign.record_dict))
        else:
            writer.write(json_response(
                404, {"error": "not_found",
                      "detail": f"no route for {request.path}"}))

    async def _events(self, request: Request,
                      writer: asyncio.StreamWriter,
                      campaign_id: str) -> None:
        """Stream a campaign's events: full replay, then live, then EOF.

        The broker invokes subscriber callbacks from its own thread;
        ``call_soon_threadsafe`` hops each payload onto the loop, so the
        stream needs no polling and delivers within one loop tick.
        """
        ndjson = request.query.get("format") == "ndjson"
        frame = ndjson_frame if ndjson else sse_frame
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()

        def deliver(payload) -> None:
            loop.call_soon_threadsafe(queue.put_nowait, payload)

        replay = self.broker.subscribe(campaign_id, deliver)
        writer.write(stream_headers(
            "application/x-ndjson" if ndjson else "text/event-stream"))
        finished = False
        for payload in replay:
            writer.write(frame(payload))
            if payload.get("kind") == "campaign_done":
                finished = True
        await writer.drain()
        try:
            while not finished:
                payload = await queue.get()
                writer.write(frame(payload))
                await writer.drain()
                if payload.get("kind") == "campaign_done":
                    finished = True
        finally:
            self.broker.unsubscribe(campaign_id, deliver)


# -- CLI ------------------------------------------------------------------

def build_serve_parser():
    import argparse
    from pathlib import Path

    parser = argparse.ArgumentParser(
        prog="autosva serve",
        description="Run the long-lived campaign service: accept "
                    "campaign submissions over HTTP, multiplex them onto "
                    "one shared worker fabric with per-tenant fair "
                    "sharing and quotas, and stream TaskEvents back over "
                    "SSE.  v1 trusts its network (no TLS/auth): bind to "
                    "loopback or a private interface only.")
    parser.add_argument("--listen", default="127.0.0.1:8420",
                        metavar="HOST:PORT",
                        help="HTTP listen address (default "
                             "127.0.0.1:8420; port 0 = ephemeral, "
                             "printed at start)")
    parser.add_argument("--workers", default="2", metavar="N|auto",
                        help="local fork-pool size (ignored with "
                             "--transport tcp); 'auto' = CPU count")
    parser.add_argument("--transport", choices=("local", "tcp"),
                        default="local",
                        help="shared fabric backing all campaigns: "
                             "'local' (default) forks on this host; "
                             "'tcp' waits for autosva worker agents")
    parser.add_argument("--fabric-listen", default="127.0.0.1:0",
                        metavar="HOST:PORT",
                        help="coordinator address for --transport tcp")
    parser.add_argument("--min-workers", type=int, default=None, metavar="N",
                        help="hold dispatch until N agents joined "
                             "(--transport tcp; default: --spawn-workers "
                             "count, else 1)")
    parser.add_argument("--spawn-workers", type=int, default=0, metavar="N",
                        help="spawn N loopback worker agents "
                             "(--transport tcp convenience)")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="per-task wall-clock bound, fabric-wide")
    parser.add_argument("--memory-limit", type=int, default=None,
                        metavar="MB",
                        help="per-task address-space bound, fabric-wide "
                             "(tenant memory quotas are admission "
                             "ceilings on top of this)")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="shared artifact cache directory (campaign "
                             "results + shard plans, all tenants); "
                             "defaults to STATE_DIR/cache when "
                             "--state-dir is set")
    parser.add_argument("--quotas", type=Path, default=None, metavar="FILE",
                        help="tenant quota JSON ({'default': {...}, "
                             "'tenants': {name: {...}}}); see "
                             "docs/service.md")
    parser.add_argument("--state-dir", type=Path, default=None,
                        metavar="DIR",
                        help="durable service state: a write-ahead "
                             "campaign journal (fsync'd appends) plus, "
                             "unless --cache-dir overrides it, an fsync'd "
                             "artifact cache.  On restart the journal is "
                             "replayed: settled campaigns stay queryable, "
                             "open ones resume with settled tasks served "
                             "from the journal/cache (docs/service.md, "
                             "Durability)")
    parser.add_argument("--task-retries", type=int, default=2, metavar="N",
                        help="retry a task up to N times when its worker "
                             "died mid-run (transient failures only; "
                             "timeouts and real errors never retry; "
                             "0 disables; default 2)")
    parser.add_argument("--retain-settled", type=int, default=64,
                        metavar="N",
                        help="keep at most N settled campaigns queryable "
                             "before evicting oldest-first (default 64; "
                             "negative = unbounded)")
    parser.add_argument("--retain-ttl", type=float, default=None,
                        metavar="S",
                        help="additionally evict settled campaigns older "
                             "than S seconds (default: no TTL)")
    add_log_arguments(parser)
    return parser


def serve_main(argv: List[str]) -> int:
    """Entry point for ``autosva serve``."""
    from ..campaign import ArtifactCache, resolve_worker_count
    from ..campaign.scheduler import RetryPolicy
    from ..dist import parse_address

    try:
        args = build_serve_parser().parse_args(argv)
    except SystemExit as exc:
        return 0 if exc.code in (0, None) else 1
    configure_from_args(args)
    try:
        host, port = parse_address(args.listen)
        workers = resolve_worker_count(args.workers)
    except ValueError as exc:
        return fatal("autosva serve", str(exc))
    tenants = None
    if args.quotas is not None:
        try:
            tenants = TenantRegistry.from_file(args.quotas)
        except (OSError, ValueError, TypeError) as exc:
            return fatal("autosva serve", "invalid --quotas",
                         detail=str(exc), path=str(args.quotas))
    transport = None
    if args.transport == "tcp":
        from ..dist import TcpTransport
        try:
            fabric = parse_address(args.fabric_listen)
        except ValueError as exc:
            return fatal("autosva serve", "invalid --fabric-listen",
                         detail=str(exc))
        min_workers = args.min_workers or max(1, args.spawn_workers)
        try:
            transport = TcpTransport(listen=fabric,
                                     min_workers=min_workers)
        except OSError as exc:
            return fatal("autosva serve", "cannot listen for workers",
                         address=args.fabric_listen, detail=str(exc))
        fh, fp = transport.address
        _LOG.info("fabric coordinator listening", address=f"{fh}:{fp}",
                  attach=f"autosva worker --connect {fh}:{fp}",
                  min_workers=min_workers)
        if args.spawn_workers:
            # Service-owned agents auto-reconnect: the fabric heals
            # itself after transient connection loss.
            transport.spawn_local(args.spawn_workers, reconnect=True)
            _LOG.info("spawned loopback worker agents",
                      count=args.spawn_workers)

    journal = None
    cache_dir = args.cache_dir
    cache_fsync = False
    if args.state_dir is not None:
        from .journal import CampaignJournal
        # --state-dir implies fsync on both the journal and the cache:
        # durability is the point, and the bench suite records the
        # overhead (BENCH_campaign.json, journal_fsync entries).
        journal = CampaignJournal(args.state_dir, fsync=True)
        if cache_dir is None:
            cache_dir = args.state_dir / "cache"
        cache_fsync = True
    cache = ArtifactCache(cache_dir, fsync=cache_fsync) \
        if cache_dir else None
    retry = RetryPolicy(max_retries=args.task_retries) \
        if args.task_retries > 0 else None
    retain = None if args.retain_settled < 0 else args.retain_settled
    broker = CampaignBroker(workers=workers, transport=transport,
                            cache=cache, tenants=tenants,
                            timeout_s=args.timeout,
                            memory_limit_mb=args.memory_limit,
                            journal=journal, retry=retry,
                            retain_settled=retain,
                            retain_ttl_s=args.retain_ttl)
    try:
        return asyncio.run(_serve(broker, host, port))
    except KeyboardInterrupt:
        return 0


async def _serve(broker: CampaignBroker, host: str, port: int) -> int:
    broker.start()
    server = CampaignServer(broker)
    try:
        await server.start(host, port)
    except OSError as exc:
        broker.close(cancel_pending=True)
        return fatal("autosva serve", "cannot listen",
                     address=f"{host}:{port}", detail=str(exc))
    bound_host, bound_port = server.address
    _LOG.info("campaign service listening",
              url=f"http://{bound_host}:{bound_port}",
              docs="docs/service.md")

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, ValueError):
            pass  # non-main thread / platform without signal support
    await stop.wait()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.remove_signal_handler(signum)
        except (NotImplementedError, ValueError):
            pass  # a second signal now aborts the drain
    _LOG.info("shutting down",
              detail="draining open campaigns; interrupt again to abort")
    broker.drain()                  # /readyz flips 503 before we stop
    await server.close()
    await asyncio.to_thread(broker.close, False, None)
    return 0
