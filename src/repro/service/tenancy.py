"""Multi-tenant admission control: quotas, usage accounting, rejections.

The campaign service multiplexes every tenant onto ONE worker fabric and
one compile/artifact cache, so fairness and containment cannot be left to
politeness.  This module is the resource-accounting half of that story
(the exemplars are veronica-core's ``ExecutionContext`` — limits that are
*enforced*, not just reported — and Vera-AI's ``resources.py`` quota
layer):

* :class:`TenantQuota` — the per-tenant policy: wall-clock budget,
  memory ceiling, max in-flight tasks, max open campaigns, and a fair-
  share ``weight`` that scales the tenant's slice of the fabric;
* :class:`TenantUsage` — the mutable counters the broker charges as work
  actually executes (wall seconds spent, tasks in flight, open
  campaigns) plus the stride-scheduling virtual time that implements
  weighted fair sharing;
* :class:`TenantRegistry` — quota lookup (a default policy plus
  per-tenant overrides, optionally loaded from a JSON file) and the
  admission checks themselves, raising :class:`QuotaError` with an
  HTTP-shaped structured rejection (403 for policy violations, 429 for
  pressure).

Enforcement happens twice, deliberately: at **admission** (a request
that can never fit — over the memory ceiling, budget already exhausted,
too many open campaigns — is rejected before it touches a single fabric
slot) and **during execution** (the broker stops issuing a tenant's
tasks the moment its in-flight cap is reached, and cancels its open
campaigns when the wall budget runs dry mid-run).
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["QuotaError", "TenantQuota", "TenantRegistry", "TenantUsage",
           "DEFAULT_QUOTA"]


class QuotaError(Exception):
    """A structured admission/containment rejection.

    ``code`` is a stable machine-readable identifier, ``http_status`` the
    HTTP status the service front door maps it to (403 = the request can
    *never* be admitted under current policy, 429 = back off and retry),
    and ``detail`` the human-facing explanation.
    """

    def __init__(self, code: str, http_status: int, detail: str) -> None:
        super().__init__(detail)
        self.code = code
        self.http_status = http_status
        self.detail = detail

    def as_dict(self) -> Dict[str, object]:
        return {"error": self.code, "status": self.http_status,
                "detail": self.detail}


@dataclass(frozen=True)
class TenantQuota:
    """Immutable per-tenant policy (None = unbounded on that axis)."""

    #: Total verification wall-clock seconds the tenant may consume
    #: (summed over task wall times, fabric-side).
    wall_budget_s: Optional[float] = None
    #: Largest per-task memory bound a campaign may request, MB.
    memory_limit_mb: Optional[int] = None
    #: Max tasks this tenant may have issued-but-unsettled at once.
    max_in_flight: Optional[int] = None
    #: Max campaigns open (admitted, not yet settled) at once.
    max_open_campaigns: Optional[int] = None
    #: Fair-share weight: a weight-2 tenant gets twice the slice of a
    #: weight-1 tenant under contention (stride scheduling).
    weight: float = 1.0
    #: Kill switch: a disallowed tenant is rejected outright.
    allowed: bool = True

    def as_dict(self) -> Dict[str, object]:
        return {"wall_budget_s": self.wall_budget_s,
                "memory_limit_mb": self.memory_limit_mb,
                "max_in_flight": self.max_in_flight,
                "max_open_campaigns": self.max_open_campaigns,
                "weight": self.weight, "allowed": self.allowed}


#: The policy tenants get unless the registry says otherwise: generous
#: but bounded, so a misbehaving anonymous client cannot wedge the fleet.
DEFAULT_QUOTA = TenantQuota(wall_budget_s=None, memory_limit_mb=None,
                            max_in_flight=None, max_open_campaigns=8)


@dataclass
class TenantUsage:
    """Mutable per-tenant accounting the broker charges as work runs."""

    #: Wall seconds of verification work executed on the tenant's behalf.
    wall_spent_s: float = 0.0
    #: Tasks issued to the scheduler and not yet settled.
    in_flight: int = 0
    #: Campaigns admitted and not yet settled.
    open_campaigns: int = 0
    #: Stride-scheduling virtual time; the broker picks the runnable
    #: tenant with the smallest vtime and charges cost/weight per task.
    vtime: float = 0.0
    #: Lifetime counters (observability, never enforced on).
    campaigns_total: int = 0
    campaigns_rejected: int = 0
    tasks_total: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {"wall_spent_s": round(self.wall_spent_s, 3),
                "in_flight": self.in_flight,
                "open_campaigns": self.open_campaigns,
                "campaigns_total": self.campaigns_total,
                "campaigns_rejected": self.campaigns_rejected,
                "tasks_total": self.tasks_total}


class TenantRegistry:
    """Quota lookup + usage accounting for every tenant the service saw.

    Thread-safe on its own lock for the usage maps; the broker holds its
    own lock across multi-step admission sequences, so the registry's
    methods stay simple and reentrant-free.
    """

    def __init__(self, default: TenantQuota = DEFAULT_QUOTA,
                 overrides: Optional[Dict[str, TenantQuota]] = None) -> None:
        self.default = default
        self.overrides: Dict[str, TenantQuota] = dict(overrides or {})
        self._usage: Dict[str, TenantUsage] = {}
        self._lock = threading.Lock()

    # -- construction ------------------------------------------------------
    @classmethod
    def from_file(cls, path) -> "TenantRegistry":
        """Load quotas from JSON: ``{"default": {...}, "tenants": {...}}``.

        Unknown keys are rejected (a typo'd quota silently defaulting to
        unbounded is exactly the failure mode a quota file exists to
        prevent).
        """
        data = json.loads(open(path, "r", encoding="utf-8").read())
        if not isinstance(data, dict):
            raise ValueError("quota file must be a JSON object")

        def parse(entry, label):
            if not isinstance(entry, dict):
                raise ValueError(f"{label}: quota must be an object")
            known = {"wall_budget_s", "memory_limit_mb", "max_in_flight",
                     "max_open_campaigns", "weight", "allowed"}
            unknown = sorted(set(entry) - known)
            if unknown:
                raise ValueError(f"{label}: unknown quota key(s): "
                                 f"{', '.join(unknown)}")
            return TenantQuota(**entry)

        default = parse(data.get("default", {}), "default") \
            if "default" in data else DEFAULT_QUOTA
        overrides = {name: parse(entry, f"tenants[{name!r}]")
                     for name, entry in (data.get("tenants") or {}).items()}
        return cls(default=default, overrides=overrides)

    # -- lookup ------------------------------------------------------------
    def quota(self, tenant: str) -> TenantQuota:
        return self.overrides.get(tenant, self.default)

    def usage(self, tenant: str) -> TenantUsage:
        with self._lock:
            state = self._usage.get(tenant)
            if state is None:
                state = self._usage[tenant] = TenantUsage()
            return state

    def known_tenants(self):
        with self._lock:
            return sorted(self._usage)

    # -- admission checks --------------------------------------------------
    def admit_campaign(self, tenant: str,
                       memory_limit_mb: Optional[int] = None) -> None:
        """Raise :class:`QuotaError` unless a new campaign may be admitted.

        Pure check — charging (``open_campaigns`` etc.) is the broker's
        job once the campaign object actually exists, so a rejection
        provably consumes nothing.
        """
        quota = self.quota(tenant)
        usage = self.usage(tenant)
        if not quota.allowed:
            usage.campaigns_rejected += 1
            raise QuotaError("tenant_forbidden", 403,
                             f"tenant {tenant!r} is not allowed to submit "
                             f"campaigns")
        if quota.memory_limit_mb is not None and memory_limit_mb is not None \
                and memory_limit_mb > quota.memory_limit_mb:
            usage.campaigns_rejected += 1
            raise QuotaError(
                "memory_quota_exceeded", 403,
                f"requested memory_limit_mb={memory_limit_mb} exceeds the "
                f"tenant ceiling of {quota.memory_limit_mb} MB")
        if quota.wall_budget_s is not None \
                and usage.wall_spent_s >= quota.wall_budget_s:
            usage.campaigns_rejected += 1
            raise QuotaError(
                "wall_budget_exhausted", 403,
                f"tenant {tenant!r} has spent "
                f"{usage.wall_spent_s:.1f}s of its "
                f"{quota.wall_budget_s:.1f}s wall-clock budget")
        if quota.max_open_campaigns is not None \
                and usage.open_campaigns >= quota.max_open_campaigns:
            usage.campaigns_rejected += 1
            raise QuotaError(
                "too_many_campaigns", 429,
                f"tenant {tenant!r} already has {usage.open_campaigns} "
                f"open campaign(s) (limit {quota.max_open_campaigns}); "
                f"retry after one settles")

    # -- execution-time checks (broker-side) -------------------------------
    def may_issue(self, tenant: str) -> bool:
        """May one more task be issued for this tenant right now?"""
        quota = self.quota(tenant)
        usage = self.usage(tenant)
        if quota.max_in_flight is not None \
                and usage.in_flight >= quota.max_in_flight:
            return False
        if quota.wall_budget_s is not None \
                and usage.wall_spent_s >= quota.wall_budget_s:
            return False
        return True

    def over_budget(self, tenant: str) -> bool:
        quota = self.quota(tenant)
        if quota.wall_budget_s is None:
            return False
        return self.usage(tenant).wall_spent_s >= quota.wall_budget_s

    # -- observability -----------------------------------------------------
    def report(self) -> Dict[str, Dict[str, object]]:
        """Per-tenant quota-vs-consumption view for ``GET /status``."""
        view: Dict[str, Dict[str, object]] = {}
        for tenant in self.known_tenants():
            quota = self.quota(tenant)
            usage = self.usage(tenant)
            entry = usage.as_dict()
            entry["quota"] = quota.as_dict()
            if quota.wall_budget_s is not None:
                entry["wall_budget_s"] = quota.wall_budget_s
                entry["wall_remaining_s"] = round(
                    max(0.0, quota.wall_budget_s - usage.wall_spent_s), 3)
            view[tenant] = entry
        return view
