"""Four-state (0/1/X) values for the simulation substrate.

Formal tools are two-valued ("formal tools do not consider X's and instead
assign arbitrary values of 0 or 1", paper Section III-B); X-propagation
assertions are therefore generated under the ``XPROP`` macro and checked in
*simulation*.  This module provides the value domain for that simulator: a
bit-vector with a parallel X mask and conservative X propagation.

Z is collapsed into X — the subset has no tristate logic.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FourState"]


def _mask(width: int) -> int:
    return (1 << width) - 1


@dataclass(frozen=True)
class FourState:
    """A ``width``-bit value; bit i is X when ``xmask`` bit i is set."""

    value: int
    xmask: int
    width: int

    # -- constructors -----------------------------------------------------
    @staticmethod
    def from_int(value: int, width: int) -> "FourState":
        return FourState(value & _mask(width), 0, width)

    @staticmethod
    def all_x(width: int) -> "FourState":
        return FourState(0, _mask(width), width)

    # -- shape ------------------------------------------------------------
    def resize(self, width: int) -> "FourState":
        """Zero-extend or truncate (X bits extend as 0, like packing)."""
        m = _mask(width)
        return FourState(self.value & m, self.xmask & m, width)

    @property
    def has_x(self) -> bool:
        return self.xmask != 0

    @property
    def is_true(self) -> bool:
        """Definitely non-zero: some bit is 1 and not X."""
        return bool(self.value & ~self.xmask)

    @property
    def is_false(self) -> bool:
        """Definitely zero: no 1-bits and no X bits."""
        return self.value == 0 and self.xmask == 0

    def to_int(self) -> int:
        """Concrete value; X bits read as 0 (for traces/debug)."""
        return self.value & ~self.xmask & _mask(self.width)

    # -- boolean coercion ---------------------------------------------------
    def as_bool(self) -> "FourState":
        if self.is_true:
            return FourState.from_int(1, 1)
        if self.is_false:
            return FourState.from_int(0, 1)
        return FourState.all_x(1)

    # -- bitwise ------------------------------------------------------------
    def bit_not(self) -> "FourState":
        m = _mask(self.width)
        return FourState(~self.value & m & ~self.xmask, self.xmask,
                         self.width)

    def bit_and(self, other: "FourState") -> "FourState":
        width = max(self.width, other.width)
        a, b = self.resize(width), other.resize(width)
        # X & 0 = 0; X & 1 = X.
        known_zero = (~a.value & ~a.xmask) | (~b.value & ~b.xmask)
        xm = (a.xmask | b.xmask) & ~known_zero & _mask(width)
        val = a.value & b.value & ~xm & _mask(width)
        return FourState(val, xm, width)

    def bit_or(self, other: "FourState") -> "FourState":
        return self.bit_not().bit_and(other.bit_not()).bit_not()

    def bit_xor(self, other: "FourState") -> "FourState":
        width = max(self.width, other.width)
        a, b = self.resize(width), other.resize(width)
        xm = (a.xmask | b.xmask) & _mask(width)
        return FourState((a.value ^ b.value) & ~xm, xm, width)

    # -- logical --------------------------------------------------------------
    def logic_and(self, other: "FourState") -> "FourState":
        a, b = self.as_bool(), other.as_bool()
        if a.is_false or b.is_false:
            return FourState.from_int(0, 1)
        if a.is_true and b.is_true:
            return FourState.from_int(1, 1)
        return FourState.all_x(1)

    def logic_or(self, other: "FourState") -> "FourState":
        a, b = self.as_bool(), other.as_bool()
        if a.is_true or b.is_true:
            return FourState.from_int(1, 1)
        if a.is_false and b.is_false:
            return FourState.from_int(0, 1)
        return FourState.all_x(1)

    def logic_not(self) -> "FourState":
        b = self.as_bool()
        if b.has_x:
            return b
        return FourState.from_int(0 if b.value else 1, 1)

    # -- arithmetic / comparison (X-poisoning like Verilog) --------------------
    def _arith(self, other: "FourState", op) -> "FourState":
        width = max(self.width, other.width)
        if self.has_x or other.has_x:
            return FourState.all_x(width)
        return FourState.from_int(op(self.value, other.value), width)

    def add(self, other: "FourState") -> "FourState":
        return self._arith(other, lambda a, b: a + b)

    def sub(self, other: "FourState") -> "FourState":
        return self._arith(other, lambda a, b: a - b)

    def _compare(self, other: "FourState", op) -> "FourState":
        if self.has_x or other.has_x:
            return FourState.all_x(1)
        width = max(self.width, other.width)
        a, b = self.resize(width), other.resize(width)
        return FourState.from_int(1 if op(a.value, b.value) else 0, 1)

    def eq(self, other: "FourState") -> "FourState":
        return self._compare(other, lambda a, b: a == b)

    def ne(self, other: "FourState") -> "FourState":
        return self._compare(other, lambda a, b: a != b)

    def lt(self, other: "FourState") -> "FourState":
        return self._compare(other, lambda a, b: a < b)

    def le(self, other: "FourState") -> "FourState":
        return self._compare(other, lambda a, b: a <= b)

    # -- structure ---------------------------------------------------------
    def concat(self, low: "FourState") -> "FourState":
        """``{self, low}`` — self becomes the high bits."""
        width = self.width + low.width
        return FourState((self.value << low.width) | low.value,
                         (self.xmask << low.width) | low.xmask, width)

    def select(self, index: int) -> "FourState":
        if index < 0 or index >= self.width:
            return FourState.all_x(1)
        return FourState((self.value >> index) & 1,
                         (self.xmask >> index) & 1, 1)

    def slice(self, msb: int, lsb: int) -> "FourState":
        width = msb - lsb + 1
        return FourState((self.value >> lsb) & _mask(width),
                         (self.xmask >> lsb) & _mask(width), width)

    def shift_left(self, amount: int) -> "FourState":
        m = _mask(self.width)
        return FourState((self.value << amount) & m,
                         (self.xmask << amount) & m, self.width)

    def shift_right(self, amount: int) -> "FourState":
        return FourState(self.value >> amount, self.xmask >> amount,
                         self.width)

    def __repr__(self) -> str:
        if not self.has_x:
            return f"{self.width}'d{self.value}"
        bits = []
        for i in reversed(range(self.width)):
            if (self.xmask >> i) & 1:
                bits.append("x")
            else:
                bits.append(str((self.value >> i) & 1))
        return f"{self.width}'b{''.join(bits)}"
