"""Cycle-based 4-state simulator for property reuse (paper Section III-B).

"In addition to FV, AutoSVA property files can be utilized in a simulation
testbench to ensure that assumptions hold during system-level testing.
Although many RTL simulation tools do not support liveness properties, all
control-safety properties and X-propagation assertions can be checked during
simulation."

This simulator is the offline stand-in for that VCS-MX flow: it elaborates
the DUT together with its bound property module (parsed with ``XPROP``
defined so the X-propagation assertions are live), drives random or directed
stimulus, and checks every *safety* assertion and assumption each cycle.
Liveness properties (``s_eventually``) are skipped, exactly as the paper
describes for simulators.  Registers come up as X until the reset branch
assigns them, giving the X-propagation assertions something real to catch.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..rtl import ast
from ..rtl.elaborate import ElabError, const_eval, range_width, array_size
from ..rtl.parser import parse_design
from ..rtl.preprocess import strip_ifdefs

__all__ = ["SimError", "Violation", "Simulator", "simulate_random"]

from .fourstate import FourState


class SimError(ValueError):
    """Design construct the simulator cannot handle."""


@dataclass
class Violation:
    """One failed assertion/assumption at one cycle."""

    cycle: int
    label: str
    directive: str
    xprop: bool = False

    def __str__(self) -> str:
        tag = " [XPROP]" if self.xprop else ""
        return f"cycle {self.cycle}: {self.directive} {self.label}{tag}"


@dataclass
class _SimScope:
    module: ast.Module
    prefix: str
    params: Dict[str, int]
    widths: Dict[str, int] = field(default_factory=dict)
    arrays: Dict[str, int] = field(default_factory=dict)      # name -> size
    regs: Set[str] = field(default_factory=set)
    values: Dict[str, FourState] = field(default_factory=dict)
    array_values: Dict[str, List[FourState]] = field(default_factory=dict)
    drivers: Dict[str, Tuple] = field(default_factory=dict)
    comb_blocks: List[ast.AlwaysComb] = field(default_factory=list)
    ff_blocks: List[ast.AlwaysFF] = field(default_factory=list)
    children: List["_SimScope"] = field(default_factory=list)
    assertions: List[ast.AssertionItem] = field(default_factory=list)


class Simulator:
    """Interprets the RTL subset with 4-state semantics, cycle by cycle."""

    def __init__(self, source: str, top: str,
                 extra_sources: Tuple[str, ...] = (),
                 defines: Tuple[str, ...] = ("XPROP",),
                 param_overrides: Optional[Dict[str, int]] = None,
                 seed: int = 0) -> None:
        design = parse_design(strip_ifdefs(source, defines))
        for extra in extra_sources:
            design = design.merge(parse_design(strip_ifdefs(extra, defines)))
        self.design = design
        self.rng = random.Random(seed)
        self.cycle = 0
        self.violations: List[Violation] = []
        self._past: Dict[str, FourState] = {}
        self._ante_past: Dict[str, FourState] = {}
        self._clock_name: Optional[str] = None
        self._reset_name: Optional[str] = None
        self._reset_active_low = True
        self.top = self._elaborate(design.module(top), "",
                                   dict(param_overrides or {}))
        self._all_scopes: List[_SimScope] = []
        self._collect(self.top)
        self._in_reset = True

    # -- elaboration ---------------------------------------------------------
    def _elaborate(self, module: ast.Module, prefix: str,
                   overrides: Dict[str, int]) -> _SimScope:
        params: Dict[str, int] = {}
        for decl in module.params:
            if not decl.is_local and decl.name in overrides:
                params[decl.name] = overrides[decl.name]
            else:
                params[decl.name] = const_eval(decl.default, params)
        scope = _SimScope(module=module, prefix=prefix, params=params)
        for port in module.ports:
            scope.widths[port.name] = range_width(port.packed, params)
        for net in module.nets:
            scope.widths[net.name] = range_width(net.packed, params)
            size = array_size(net.unpacked, params)
            if size:
                scope.arrays[net.name] = size
                scope.array_values[net.name] = [
                    FourState.all_x(scope.widths[net.name])
                    for _ in range(size)]
            if net.init is not None:
                scope.drivers[net.name] = ("assign", net.init, scope)
        for assign in module.assigns:
            if isinstance(assign.target, ast.Id):
                scope.drivers[assign.target.name] = ("assign", assign.value,
                                                     scope)
            else:
                raise SimError("assign targets must be whole signals")
        scope.comb_blocks = list(module.always_combs)
        scope.ff_blocks = list(module.always_ffs)
        for block in scope.ff_blocks:
            if block.reset_name and self._reset_name is None:
                self._reset_name = block.reset_name
                self._reset_active_low = block.reset_active_low
            if self._clock_name is None:
                self._clock_name = block.clock
            for name in _targets_of(block.body):
                scope.regs.add(name)
                if name not in scope.arrays:
                    scope.values[name] = FourState.all_x(scope.widths[name])
        scope.assertions = list(module.assertions)
        for inst in module.instances:
            self._elaborate_instance(scope, inst)
        for bind in self.design.binds:
            if bind.target_module == module.name:
                inst = ast.Instance(module_name=bind.checker_module,
                                    instance_name=bind.instance_name,
                                    param_overrides=bind.param_overrides,
                                    connections=bind.connections)
                self._elaborate_instance(scope, inst)
        return scope

    def _elaborate_instance(self, scope: _SimScope,
                            inst: ast.Instance) -> None:
        child_module = self.design.module(inst.module_name)
        overrides = {name: const_eval(expr, scope.params)
                     for name, expr in inst.param_overrides}
        child = self._elaborate(child_module,
                                f"{scope.prefix}{inst.instance_name}.",
                                overrides)
        scope.children.append(child)
        explicit = {name for name, _ in inst.connections if name != "*"}
        connections = [(n, e) for n, e in inst.connections if n != "*"]
        if any(n == "*" for n, _ in inst.connections):
            for port in child_module.ports:
                if port.name not in explicit:
                    connections.append((port.name, ast.Id(name=port.name)))
        for port_name, expr in connections:
            port = child_module.port(port_name)
            if expr is None:
                continue
            if port.direction == "input":
                child.drivers[port_name] = ("conn", expr, scope)
            else:
                if not isinstance(expr, ast.Id):
                    raise SimError("output connections must be plain ids")
                scope.drivers[expr.name] = ("child", child, port_name)

    def _collect(self, scope: _SimScope) -> None:
        self._all_scopes.append(scope)
        for child in scope.children:
            self._collect(child)

    # -- per-cycle evaluation ----------------------------------------------
    def step(self, inputs: Optional[Dict[str, int]] = None,
             randomize: bool = True) -> List[Violation]:
        """Advance one clock cycle; returns violations found this cycle."""
        self._drive_top_inputs(inputs or {}, randomize)
        self._comb_cache: Dict[Tuple[int, str], FourState] = {}
        self._comb_running: Set[Tuple[int, str]] = set()
        self._comb_block_done: Set[int] = set()
        violations = self._check_assertions()
        self._advance_registers()
        self._record_pasts()
        self.cycle += 1
        self._in_reset = False
        return violations

    def run(self, cycles: int) -> List[Violation]:
        out = []
        for _ in range(cycles):
            out.extend(self.step())
        return out

    def _drive_top_inputs(self, given: Dict[str, int],
                          randomize: bool) -> None:
        for port in self.top.module.ports:
            if port.direction != "input":
                continue
            width = self.top.widths[port.name]
            if port.name == self._reset_name:
                active = 0 if self._reset_active_low else 1
                inactive = 1 - active
                value = active if self._in_reset else inactive
                self.top.values[port.name] = FourState.from_int(value, width)
                continue
            if port.name == self._clock_name:
                self.top.values[port.name] = FourState.from_int(0, width)
                continue
            if port.name in given:
                self.top.values[port.name] = FourState.from_int(
                    given[port.name], width)
            elif randomize:
                self.top.values[port.name] = FourState.from_int(
                    self.rng.getrandbits(width), width)
            elif port.name not in self.top.values:
                self.top.values[port.name] = FourState.from_int(0, width)

    # -- signal resolution -----------------------------------------------------
    def _signal(self, scope: _SimScope, name: str) -> FourState:
        if name in scope.params:
            return FourState.from_int(scope.params[name], 32)
        if name in scope.regs or name in scope.arrays:
            value = scope.values.get(name)
            if value is None:
                raise SimError(f"{scope.prefix}{name}: array used as vector")
            return value
        key = (id(scope), name)
        cached = self._comb_cache.get(key)
        if cached is not None:
            return cached
        if name in scope.values and name not in scope.drivers and \
                not self._drives_comb(scope, name):
            return scope.values[name]
        if key in self._comb_running:
            raise SimError(f"{scope.prefix}{name}: combinational loop")
        self._comb_running.add(key)
        try:
            value = self._resolve(scope, name)
        finally:
            self._comb_running.discard(key)
        self._comb_cache[key] = value
        return value

    def _drives_comb(self, scope: _SimScope, name: str) -> bool:
        for comb in scope.comb_blocks:
            if name in _targets_of(comb.body):
                return True
        return False

    def _resolve(self, scope: _SimScope, name: str) -> FourState:
        driver = scope.drivers.get(name)
        width = scope.widths.get(name)
        if width is None:
            raise SimError(f"{scope.prefix}{name}: undeclared")
        if driver is None:
            for comb in scope.comb_blocks:
                if name in _targets_of(comb.body):
                    self._run_comb(scope, comb)
                    return scope.values[name].resize(width)
            # Undriven (symbolic in formal): random 2-state each cycle.
            value = FourState.from_int(self.rng.getrandbits(width), width)
            scope.values[name] = value
            return value
        kind = driver[0]
        if kind == "assign":
            return self._eval(driver[2], driver[1]).resize(width)
        if kind == "conn":
            return self._eval(driver[2], driver[1]).resize(width)
        if kind == "child":
            return self._signal(driver[1], driver[2]).resize(width)
        raise SimError(f"{scope.prefix}{name}: bad driver {kind}")

    def _run_comb(self, scope: _SimScope, comb: ast.AlwaysComb) -> None:
        if id(comb) in self._comb_block_done:
            return
        self._comb_block_done.add(id(comb))
        env: Dict[str, FourState] = {}
        self._exec(scope, comb.body, env, is_ff=False)
        for name, value in env.items():
            scope.values[name] = value.resize(scope.widths[name])

    # -- statement execution ----------------------------------------------------
    def _exec(self, scope: _SimScope, stmt: ast.Stmt,
              env: Dict[str, object], is_ff: bool) -> None:
        if isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                self._exec(scope, child, env, is_ff)
            return
        if isinstance(stmt, ast.If):
            cond = self._eval(scope, stmt.cond, env if not is_ff else None)
            branch = cond.as_bool()
            if branch.has_x:
                # X condition: Verilog would take neither branch cleanly;
                # model the common simulator behaviour (else branch) but
                # poison the targets written under the condition.
                taken = stmt.else_stmt
            elif branch.value:
                taken = stmt.then_stmt
            else:
                taken = stmt.else_stmt
            if taken is not None:
                self._exec(scope, taken, env, is_ff)
            return
        if isinstance(stmt, ast.Case):
            subject = self._eval(scope, stmt.subject,
                                 env if not is_ff else None)
            default = None
            for item in stmt.items:
                if not item.labels:
                    default = item.stmt
                    continue
                for label in item.labels:
                    lab = self._eval(scope, label, env if not is_ff else None)
                    hit = subject.eq(lab)
                    if hit.is_true:
                        self._exec(scope, item.stmt, env, is_ff)
                        return
            if default is not None:
                self._exec(scope, default, env, is_ff)
            return
        if isinstance(stmt, (ast.NonBlocking, ast.Blocking)):
            value = self._eval(scope, stmt.value, env if not is_ff else None)
            self._assign_target(scope, stmt.target, value, env, is_ff)
            return
        raise SimError("unsupported statement")

    def _assign_target(self, scope: _SimScope, target: ast.Expr,
                       value: FourState, env: Dict[str, object],
                       is_ff: bool) -> None:
        if isinstance(target, ast.Id):
            env[target.name] = value.resize(scope.widths[target.name])
            return
        if isinstance(target, ast.Index) and isinstance(target.base, ast.Id):
            name = target.base.name
            index = self._eval(scope, target.index,
                               env if not is_ff else None)
            if name in scope.arrays:
                current = env.get(name)
                if current is None:
                    current = list(scope.array_values[name])
                if index.has_x:
                    current = [FourState.all_x(scope.widths[name])
                               for _ in current]
                elif index.value < len(current):
                    current = list(current)
                    current[index.value] = value.resize(scope.widths[name])
                env[name] = current
                return
            width = scope.widths[name]
            base = env.get(name)
            if base is None:
                base = scope.values.get(name, FourState.all_x(width))
            if index.has_x:
                env[name] = FourState.all_x(width)
                return
            bit = value.resize(1)
            idx = index.value
            mask = 1 << idx
            new_val = (base.value & ~mask) | (bit.value << idx)
            new_xm = (base.xmask & ~mask) | (bit.xmask << idx)
            env[name] = FourState(new_val & ((1 << width) - 1),
                                  new_xm & ((1 << width) - 1), width)
            return
        raise SimError("unsupported assignment target")

    # -- register update -----------------------------------------------------
    def _advance_registers(self) -> None:
        updates: List[Tuple[_SimScope, Dict[str, object]]] = []
        for scope in self._all_scopes:
            for block in scope.ff_blocks:
                env: Dict[str, object] = {}
                body = block.body
                if isinstance(body, ast.Block) and len(body.stmts) == 1:
                    body = body.stmts[0]
                reset_active = self._reset_is_active()
                if isinstance(body, ast.If) and _is_reset_cond(body.cond):
                    if reset_active:
                        self._exec(scope, body.then_stmt, env, is_ff=True)
                    elif body.else_stmt is not None:
                        self._exec(scope, body.else_stmt, env, is_ff=True)
                else:
                    if not reset_active:
                        self._exec(scope, body, env, is_ff=True)
                updates.append((scope, env))
        for scope, env in updates:
            for name, value in env.items():
                if name in scope.arrays:
                    scope.array_values[name] = list(value)
                else:
                    scope.values[name] = value.resize(scope.widths[name])

    def _reset_is_active(self) -> bool:
        return self._in_reset

    # -- assertions -----------------------------------------------------------
    def _check_assertions(self) -> List[Violation]:
        found: List[Violation] = []
        if self._in_reset:
            return found
        for scope in self._all_scopes:
            for item in scope.assertions:
                if item.directive == "cover":
                    continue
                result = self._eval_property(scope, item)
                if result is False:
                    violation = Violation(
                        cycle=self.cycle,
                        label=f"{scope.prefix}{item.label}",
                        directive=item.directive,
                        xprop="xprop" in item.label)
                    found.append(violation)
                    self.violations.append(violation)
        return found

    def _eval_property(self, scope: _SimScope,
                       item: ast.AssertionItem) -> Optional[bool]:
        """True/False, or None when not checkable (liveness / first cycle)."""
        prop = item.prop
        if item.disable_iff is not None:
            disable = self._eval(scope, item.disable_iff)
            if disable.is_true:
                return None
        if isinstance(prop, ast.Delay):
            if self.cycle < prop.cycles:
                return None
            prop = prop.expr
        if isinstance(prop, ast.Implication):
            if isinstance(prop.consequent, ast.SEventually):
                return None  # liveness: not checkable in simulation
            if prop.op == "|=>":
                key = f"{scope.prefix}{item.label}"
                ante_prev = self._ante_past.get(key)
                ante_now = self._eval(scope, prop.antecedent).as_bool()
                self._ante_past[key] = ante_now
                if ante_prev is None or not ante_prev.is_true:
                    return None
            else:
                ante = self._eval(scope, prop.antecedent).as_bool()
                if not ante.is_true:
                    return None
            consequent = self._eval(scope, prop.consequent).as_bool()
            if consequent.has_x:
                return False  # an undetermined check is a failure
            return bool(consequent.value)
        if isinstance(prop, ast.SEventually):
            return None
        result = self._eval(scope, prop).as_bool()
        if result.has_x:
            return False
        return bool(result.value)

    def _record_pasts(self) -> None:
        for scope in self._all_scopes:
            for item in scope.assertions:
                self._record_past_exprs(scope, item.prop)

    def _record_past_exprs(self, scope: _SimScope, expr: ast.Expr) -> None:
        if isinstance(expr, ast.SysCall) and expr.name in ("$past", "$stable",
                                                           "$rose", "$fell"):
            from ..rtl.synth import expr_key
            key = f"{scope.prefix}{expr_key(expr.args[0])}"
            self._past[key] = self._eval(scope, expr.args[0])
        for child in _children_of(expr):
            self._record_past_exprs(scope, child)

    # -- expression evaluation -----------------------------------------------
    def _eval(self, scope: _SimScope, expr: ast.Expr,
              env: Optional[Dict[str, object]] = None) -> FourState:
        if isinstance(expr, ast.Num):
            width = expr.width or 32
            return FourState.from_int(expr.value, width)
        if isinstance(expr, ast.Id):
            if env is not None and expr.name in env and \
                    not isinstance(env[expr.name], list):
                return env[expr.name]
            return self._signal(scope, expr.name)
        if isinstance(expr, ast.Unary):
            return self._eval_unary(scope, expr, env)
        if isinstance(expr, ast.Binary):
            return self._eval_binary(scope, expr, env)
        if isinstance(expr, ast.Ternary):
            cond = self._eval(scope, expr.cond, env).as_bool()
            if cond.has_x:
                then_v = self._eval(scope, expr.then_expr, env)
                else_v = self._eval(scope, expr.else_expr, env)
                return FourState.all_x(max(then_v.width, else_v.width))
            branch = expr.then_expr if cond.value else expr.else_expr
            return self._eval(scope, branch, env)
        if isinstance(expr, ast.Concat):
            out = None
            for part in expr.parts:
                val = self._eval(scope, part, env)
                out = val if out is None else out.concat(val)
            return out
        if isinstance(expr, ast.Repl):
            count = const_eval(expr.count, scope.params)
            unit = self._eval(scope, expr.value, env)
            out = unit
            for _ in range(count - 1):
                out = out.concat(unit)
            return out
        if isinstance(expr, ast.Index):
            return self._eval_index(scope, expr, env)
        if isinstance(expr, ast.RangeSelect):
            base = self._eval(scope, expr.base, env)
            msb = const_eval(expr.msb, scope.params)
            lsb = const_eval(expr.lsb, scope.params)
            return base.slice(msb, lsb)
        if isinstance(expr, ast.SysCall):
            return self._eval_syscall(scope, expr, env)
        raise SimError(f"cannot evaluate {type(expr).__name__}")

    def _eval_index(self, scope: _SimScope, expr: ast.Index,
                    env) -> FourState:
        if isinstance(expr.base, ast.Id) and expr.base.name in scope.arrays:
            name = expr.base.name
            index = self._eval(scope, expr.index, env)
            elems = scope.array_values[name]
            if env is not None and name in env and \
                    isinstance(env[name], list):
                elems = env[name]
            if index.has_x or index.value >= len(elems):
                return FourState.all_x(scope.widths[name])
            return elems[index.value]
        base = self._eval(scope, expr.base, env)
        index = self._eval(scope, expr.index, env)
        if index.has_x:
            return FourState.all_x(1)
        return base.select(index.value)

    def _eval_unary(self, scope: _SimScope, expr: ast.Unary,
                    env) -> FourState:
        val = self._eval(scope, expr.operand, env)
        if expr.op == "!":
            return val.logic_not()
        if expr.op == "~":
            return val.bit_not()
        if expr.op == "&":
            out = val.select(0)
            for i in range(1, val.width):
                out = out.bit_and(val.select(i))
            return out
        if expr.op == "|":
            out = val.select(0)
            for i in range(1, val.width):
                out = out.bit_or(val.select(i))
            return out
        if expr.op == "^":
            out = val.select(0)
            for i in range(1, val.width):
                out = out.bit_xor(val.select(i))
            return out
        if expr.op == "+":
            return val
        if expr.op == "-":
            return FourState.from_int(0, val.width).sub(val)
        raise SimError(f"unary {expr.op} unsupported")

    def _eval_binary(self, scope: _SimScope, expr: ast.Binary,
                     env) -> FourState:
        op = expr.op
        lhs = self._eval(scope, expr.lhs, env)
        if op == "&&":
            return lhs.logic_and(self._eval(scope, expr.rhs, env))
        if op == "||":
            return lhs.logic_or(self._eval(scope, expr.rhs, env))
        rhs = self._eval(scope, expr.rhs, env)
        if op in ("==", "==="):
            return lhs.eq(rhs)
        if op in ("!=", "!=="):
            return lhs.ne(rhs)
        if op == "<":
            return lhs.lt(rhs)
        if op == "<=":
            return lhs.le(rhs)
        if op == ">":
            return rhs.lt(lhs)
        if op == ">=":
            return rhs.le(lhs)
        if op == "&":
            return lhs.bit_and(rhs)
        if op == "|":
            return lhs.bit_or(rhs)
        if op == "^":
            return lhs.bit_xor(rhs)
        if op == "+":
            return lhs.add(rhs)
        if op == "-":
            return lhs.sub(rhs)
        if op in ("<<", ">>"):
            if rhs.has_x:
                return FourState.all_x(lhs.width)
            if op == "<<":
                return lhs.shift_left(rhs.value)
            return lhs.shift_right(rhs.value)
        raise SimError(f"binary {op} unsupported in simulation")

    def _eval_syscall(self, scope: _SimScope, expr: ast.SysCall,
                      env) -> FourState:
        from ..rtl.synth import expr_key
        name = expr.name
        if name == "$isunknown":
            val = self._eval(scope, expr.args[0], env)
            return FourState.from_int(1 if val.has_x else 0, 1)
        if name in ("$past", "$stable", "$rose", "$fell"):
            key = f"{scope.prefix}{expr_key(expr.args[0])}"
            now = self._eval(scope, expr.args[0], env)
            past = self._past.get(key, FourState.all_x(now.width))
            if name == "$past":
                return past
            if name == "$stable":
                return now.eq(past)
            if name == "$rose":
                return now.select(0).bit_and(past.select(0).bit_not())
            return past.select(0).bit_and(now.select(0).bit_not())
        if name == "$clog2":
            return FourState.from_int(const_eval(expr, scope.params), 32)
        if name == "$countones":
            val = self._eval(scope, expr.args[0], env)
            if val.has_x:
                return FourState.all_x(32)
            return FourState.from_int(bin(val.value).count("1"), 32)
        if name in ("$signed", "$unsigned"):
            return self._eval(scope, expr.args[0], env)
        raise SimError(f"{name} unsupported in simulation")


def _targets_of(stmt: ast.Stmt) -> Set[str]:
    targets: Set[str] = set()

    def visit(node: ast.Stmt) -> None:
        if isinstance(node, ast.Block):
            for child in node.stmts:
                visit(child)
        elif isinstance(node, ast.If):
            visit(node.then_stmt)
            if node.else_stmt is not None:
                visit(node.else_stmt)
        elif isinstance(node, ast.Case):
            for item in node.items:
                visit(item.stmt)
        elif isinstance(node, (ast.NonBlocking, ast.Blocking)):
            target = node.target
            while isinstance(target, (ast.Index, ast.RangeSelect)):
                target = target.base
            targets.add(target.name)

    visit(stmt)
    return targets


def _is_reset_cond(cond: ast.Expr) -> bool:
    if isinstance(cond, ast.Unary) and cond.op in ("!", "~") and \
            isinstance(cond.operand, ast.Id):
        name = cond.operand.name.lower()
        return name.startswith("rst") or name.startswith("reset") or \
            name.endswith("_n") or name.endswith("_ni")
    if isinstance(cond, ast.Id):
        name = cond.name.lower()
        return name.startswith("rst") or name.startswith("reset")
    return False


def _children_of(expr: ast.Expr):
    for attr in ("operand", "lhs", "rhs", "cond", "then_expr", "else_expr",
                 "base", "index", "msb", "lsb", "count", "value",
                 "antecedent", "consequent", "expr"):
        child = getattr(expr, attr, None)
        if isinstance(child, ast.Expr):
            yield child
    for attr in ("parts", "args"):
        children = getattr(expr, attr, None)
        if children:
            for child in children:
                if isinstance(child, ast.Expr):
                    yield child


def simulate_random(dut_source: str, top: str, testbench_sources=(),
                    cycles: int = 200, seed: int = 0,
                    defines: Tuple[str, ...] = ("XPROP",)) -> List[Violation]:
    """Convenience wrapper: bind the generated property files to the DUT and
    run random stimulus, returning all violations (paper's Property Reuse)."""
    sim = Simulator(dut_source, top,
                    extra_sources=tuple(testbench_sources),
                    defines=defines, seed=seed)
    sim.step()  # reset cycle
    return sim.run(cycles)
