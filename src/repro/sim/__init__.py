"""Four-state simulation substrate for property reuse (Section III-B).

The paper binds generated property files into a VCS simulation testbench to
check assumptions and X-propagation assertions during system-level testing.
:class:`repro.sim.Simulator` is the offline equivalent: a 0/1/X cycle
simulator that elaborates the DUT plus its bound property module and checks
every safety property under random or directed stimulus.
"""

from .fourstate import FourState
from .simulator import SimError, Simulator, Violation, simulate_random

__all__ = ["FourState", "SimError", "Simulator", "Violation",
           "simulate_random"]
