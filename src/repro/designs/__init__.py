"""Reduced, annotated models of the paper's evaluated RTL corpus.

See :mod:`repro.designs.corpus` for the Table III case registry; the RTL
itself lives under ``repro/designs/verilog/``.
"""

from .corpus import (CORPUS, CorpusError, CorpusIssue, DesignCase,
                     case_by_id, load, validate, verilog_path)

__all__ = ["CORPUS", "CorpusError", "CorpusIssue", "DesignCase",
           "case_by_id", "load", "validate", "verilog_path"]
