"""Reduced, annotated models of the paper's evaluated RTL corpus.

See :mod:`repro.designs.corpus` for the Table III case registry; the RTL
itself lives under ``repro/designs/verilog/``.
"""

from .corpus import CORPUS, DesignCase, case_by_id, load, verilog_path

__all__ = ["CORPUS", "DesignCase", "case_by_id", "load", "verilog_path"]
