// Ariane MMU shared-walker front end (reduced model) -- starving variant.
//
// The ITLB and DTLB share one page-table walker.  Each side has a 1-deep
// pending slot; the walker serves a pending DTLB fill with static
// priority and takes one cycle per walk.  Because the DTLB slot can be
// refilled in the same cycle it drains, a DTLB that misses every cycle
// keeps the walker busy forever and the pending ITLB fill starves: the
// paper's pre-Bug1 fairness CEX (<4-cycle trace).
module mmu_shared (
  input  wire clk_i,
  input  wire rst_ni,
  /*AUTOSVA
  itlb_fill: itlb_req -in> itlb_res
  dtlb_fill: dtlb_req -in> dtlb_res
  */
  input  wire itlb_req_val,
  output wire itlb_req_ack,
  output wire itlb_res_val,
  input  wire dtlb_req_val,
  output wire dtlb_req_ack,
  output wire dtlb_res_val
);
  reg itlb_pend_q;
  reg dtlb_pend_q;
  reg itlb_res_q;
  reg dtlb_res_q;

  // Static priority: a pending DTLB fill always wins the walker.
  wire serve_dtlb = dtlb_pend_q;
  wire serve_itlb = !dtlb_pend_q && itlb_pend_q;

  // A slot accepts a new miss when empty or in the cycle it drains.
  assign dtlb_req_ack = !dtlb_pend_q || serve_dtlb;
  assign itlb_req_ack = !itlb_pend_q || serve_itlb;
  assign dtlb_res_val = dtlb_res_q;
  assign itlb_res_val = itlb_res_q;

  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      itlb_pend_q <= 1'b0;
      dtlb_pend_q <= 1'b0;
      itlb_res_q  <= 1'b0;
      dtlb_res_q  <= 1'b0;
    end else begin
      dtlb_pend_q <= (dtlb_pend_q && !serve_dtlb) ||
                     (dtlb_req_val && dtlb_req_ack);
      itlb_pend_q <= (itlb_pend_q && !serve_itlb) ||
                     (itlb_req_val && itlb_req_ack);
      dtlb_res_q  <= serve_dtlb;
      itlb_res_q  <= serve_itlb;
    end
  end
endmodule
