// Ariane Translation Lookaside Buffer (reduced model).
//
// A single-cycle lookup pipeline: a lookup accepted in cycle t answers in
// cycle t+1, echoing the looked-up vaddr alongside the hit flag.  The
// vaddr echo carries the transaction's data attribute, so the generated
// data-integrity properties check the response belongs to the request.
// One entry of tag state stands in for the TLB array; the update port
// fills it and flush invalidates it.
module tlb (
  input  wire clk_i,
  input  wire rst_ni,
  /*AUTOSVA
  tlb_lookup: lu_req -in> lu_res
  [1:0] lu_req_data = lu_vaddr_i
  [1:0] lu_res_data = lu_vaddr_echo_o
  */
  input  wire       lu_req_val,
  output wire       lu_req_ack,
  input  wire [1:0] lu_vaddr_i,
  output wire       lu_res_val,
  output wire [1:0] lu_vaddr_echo_o,
  output wire       lu_hit_o,
  input  wire       update_i,
  input  wire [1:0] update_vpn_i,
  input  wire       flush_i
);
  reg       busy_q;
  reg [1:0] vaddr_q;
  reg       entry_valid_q;
  reg [1:0] entry_vpn_q;

  assign lu_req_ack      = !busy_q;
  assign lu_res_val      = busy_q;
  assign lu_vaddr_echo_o = vaddr_q;
  assign lu_hit_o        = entry_valid_q && entry_vpn_q == vaddr_q;

  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      busy_q        <= 1'b0;
      vaddr_q       <= 2'd0;
      entry_valid_q <= 1'b0;
      entry_vpn_q   <= 2'd0;
    end else begin
      busy_q <= lu_req_val && lu_req_ack;
      if (lu_req_val && lu_req_ack)
        vaddr_q <= lu_vaddr_i;
      if (flush_i)
        entry_valid_q <= 1'b0;
      else if (update_i) begin
        entry_valid_q <= 1'b1;
        entry_vpn_q   <= update_vpn_i;
      end
    end
  end
endmodule
