// Ariane Memory Management Unit (reduced model) -- fixed variant.
//
// Translates LSU requests.  A misaligned access is answered immediately
// with an exception; an aligned access starts a page-table walk on the
// embedded PTW, whose D$ port is exported through req_port_data_*.  The
// paper's Bug1 was a "ghost response": the misaligned fast path answered
// the LSU but *also* started a walk, whose completion produced a second
// response nobody asked for.  The fix (this file) masks the walk start
// with !lsu_misaligned_i.
module mmu (
  input  wire clk_i,
  input  wire rst_ni,
  /*AUTOSVA
  mmu_lsu: lsu_req -in> lsu_res
  lsu_req_val = lsu_req_i
  lsu_req_rdy = lsu_ready_o
  lsu_res_val = lsu_valid_o
  mmu_ptw: dreq -out> dres
  dreq_val = req_port_data_req_o
  dreq_rdy = req_port_data_gnt_i
  dres_val = req_port_data_rvalid_i
  */
  input  wire lsu_req_i,
  input  wire lsu_misaligned_i,
  output wire lsu_ready_o,
  output wire lsu_valid_o,
  output wire lsu_exception_o,
  output wire req_port_data_req_o,
  input  wire req_port_data_gnt_i,
  input  wire req_port_data_rvalid_i,
  input  wire data_err_i
);
  reg busy_q;
  reg err_q;

  wire lsu_hsk    = lsu_req_i && lsu_ready_o;
  wire misaligned = lsu_hsk && lsu_misaligned_i;
  // FIX (Bug1): a misaligned request is fully handled by the fast path --
  // it must not also activate the walker.
  wire ptw_start  = lsu_hsk && !lsu_misaligned_i;
  wire walk_done;

  assign lsu_ready_o     = !busy_q;
  assign lsu_valid_o     = misaligned || walk_done;
  assign lsu_exception_o = misaligned || (walk_done && err_q);

  ptw u_ptw (
    .clk_i          (clk_i),
    .rst_ni         (rst_ni),
    .dtlb_req_val   (ptw_start),
    .dtlb_req_ack   (),
    .dtlb_res_val   (walk_done),
    .dcache_req_val (req_port_data_req_o),
    .dcache_req_ack (req_port_data_gnt_i),
    .dcache_res_val (req_port_data_rvalid_i)
  );

  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      busy_q <= 1'b0;
      err_q  <= 1'b0;
    end else begin
      if (ptw_start) busy_q <= 1'b1;
      else if (walk_done) busy_q <= 1'b0;
      if (req_port_data_rvalid_i) err_q <= data_err_i;
    end
  end
endmodule
