// Ariane Page Table Walker (reduced model).
//
// Two transactions (paper Fig. 7): the incoming DTLB-miss walk request
// (dtlb_ptw) and the outgoing D$ access the walker issues to fetch the
// PTE (ptw_dcache).  One walk in flight at a time; the D$ response may
// arrive in the same cycle the request is granted.
module ptw (
  input  wire clk_i,
  input  wire rst_ni,
  /*AUTOSVA
  dtlb_ptw: dtlb_req -in> dtlb_res
  ptw_dcache: dcache_req -out> dcache_res
  */
  input  wire dtlb_req_val,
  output wire dtlb_req_ack,
  output wire dtlb_res_val,
  output wire dcache_req_val,
  input  wire dcache_req_ack,
  input  wire dcache_res_val
);
  localparam IDLE = 2'd0;
  localparam REQ  = 2'd1;
  localparam WAIT = 2'd2;
  localparam RESP = 2'd3;

  reg [1:0] state_q;

  assign dtlb_req_ack   = state_q == IDLE;
  assign dcache_req_val = state_q == REQ;
  assign dtlb_res_val   = state_q == RESP;

  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      state_q <= IDLE;
    end else begin
      case (state_q)
        IDLE: if (dtlb_req_val) state_q <= REQ;
        REQ: begin
          // The PTE may come back the same cycle the request is granted.
          if (dcache_req_ack && dcache_res_val) state_q <= RESP;
          else if (dcache_req_ack) state_q <= WAIT;
        end
        WAIT: if (dcache_res_val) state_q <= RESP;
        RESP: state_q <= IDLE;
      endcase
    end
  end
endmodule
