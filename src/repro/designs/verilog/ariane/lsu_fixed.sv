// Ariane Load Store Unit (reduced model) -- fixed variant.
//
// A two-slot load scoreboard: each accepted load is sent to the D$ over a
// one-outstanding val/ack request port (dreq_*) and returns, in order,
// when the D$ answers (mem_rvalid_i), echoing its transaction id.  The
// known bug (Ariane issue #538) is modelled through flush_i: an exception
// raised by a *later* instruction flushes the pipeline while earlier
// loads are still outstanding.  In this fixed variant a flush only stops
// new loads from being accepted that cycle -- already-issued loads still
// complete.
module lsu (
  input  wire clk_i,
  input  wire rst_ni,
  /*AUTOSVA
  lsu_load: lsu_req -in> lsu_res
  lsu_req_val = lsu_valid_i
  lsu_req_rdy = lsu_ready_o
  [1:0] lsu_req_transid_unique = lsu_trans_id_i
  lsu_res_val = load_valid_o
  [1:0] lsu_res_transid = load_trans_id_o
  lsu_dcache: dreq -out> dres
  dreq_val = dreq_val_o
  dreq_rdy = mem_gnt_i
  dres_val = mem_rvalid_i
  */
  input  wire       lsu_valid_i,
  output wire       lsu_ready_o,
  input  wire [1:0] lsu_trans_id_i,
  input  wire       flush_i,
  output wire       load_valid_o,
  output wire [1:0] load_trans_id_o,
  output wire       dreq_val_o,
  input  wire       mem_gnt_i,
  input  wire       mem_rvalid_i
);
  reg       s0_occ, s0_live;
  reg [1:0] s0_id;
  reg       s1_occ, s1_live;
  reg [1:0] s1_id;
  reg       inflight_q;

  // Pipeline flushes are single events, not a permanent state.
  am__flush_finite: assume property (@(posedge clk_i) disable iff (!rst_ni)
      flush_i |-> s_eventually (!flush_i));

  assign lsu_ready_o = !s1_occ && !flush_i;

  wire alloc    = lsu_valid_i && lsu_ready_o;
  wire complete = mem_rvalid_i && s0_occ;

  // One memory access in flight: the oldest slot owns the request port.
  assign dreq_val_o = s0_occ && !inflight_q;

  assign load_valid_o    = complete && s0_live;
  assign load_trans_id_o = s0_id;

  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      s0_occ <= 1'b0; s0_live <= 1'b0; s0_id <= 2'd0;
      s1_occ <= 1'b0; s1_live <= 1'b0; s1_id <= 2'd0;
      inflight_q <= 1'b0;
    end else begin
      // A grant answered in the same cycle is already complete.
      if (dreq_val_o && mem_gnt_i && !mem_rvalid_i) inflight_q <= 1'b1;
      else if (mem_rvalid_i) inflight_q <= 1'b0;
      if (complete) begin
        s0_occ <= s1_occ; s0_live <= s1_live; s0_id <= s1_id;
        s1_occ <= 1'b0; s1_live <= 1'b0;
        if (alloc) begin
          if (s1_occ) begin
            s1_occ <= 1'b1; s1_live <= 1'b1; s1_id <= lsu_trans_id_i;
          end else begin
            s0_occ <= 1'b1; s0_live <= 1'b1; s0_id <= lsu_trans_id_i;
          end
        end
      end else if (alloc) begin
        if (s0_occ) begin
          s1_occ <= 1'b1; s1_live <= 1'b1; s1_id <= lsu_trans_id_i;
        end else begin
          s0_occ <= 1'b1; s0_live <= 1'b1; s0_id <= lsu_trans_id_i;
        end
      end
      // FIX (#538): a flush must not touch already-issued loads; it only
      // gates lsu_ready_o above.
    end
  end
endmodule
