// Ariane L1 instruction cache (reduced model) -- buggy variant (issue #474).
//
// One line of cache state: a fetch that hits (line valid) answers next
// cycle; a miss refills the line over the mem_req/mem_res port first.
// flush_i invalidates the line.  The known bug (Ariane issue #474) is a
// flush arriving during a miss refill: the original cache dropped the
// pending fetch on the floor.  This variant keeps the original behaviour: the
// refill is discarded and the fetch never responds.
module icache (
  input  wire clk_i,
  input  wire rst_ni,
  /*AUTOSVA
  icache_fetch: fetch_req -in> fetch_res
  icache_refill: mem_req -out> mem_res
  */
  input  wire fetch_req_val,
  output wire fetch_req_ack,
  output wire fetch_res_val,
  input  wire flush_i,
  output wire mem_req_val,
  input  wire mem_req_ack,
  input  wire mem_res_val
);
  localparam IDLE = 2'd0;
  localparam REQ  = 2'd1;
  localparam WAIT = 2'd2;
  localparam RESP = 2'd3;

  reg [1:0] state_q;
  reg       cached_q;
  reg       drop_q;

  assign fetch_req_ack = state_q == IDLE;
  assign fetch_res_val = state_q == RESP;
  assign mem_req_val   = state_q == REQ;

  wire fetch_hsk = fetch_req_val && fetch_req_ack;

  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      state_q  <= IDLE;
      cached_q <= 1'b0;
      drop_q   <= 1'b0;
    end else begin
      case (state_q)
        IDLE: begin
          if (fetch_hsk) begin
            if (cached_q && !flush_i) state_q <= RESP;  // hit
            else state_q <= REQ;                        // miss: refill
          end
        end
        REQ: begin
          // BUG (#474): a flush during the miss drops the pending fetch.
          if (mem_req_ack && mem_res_val)
            state_q <= flush_i ? IDLE : RESP;
          else if (mem_req_ack) begin
            state_q <= WAIT;
            if (flush_i) drop_q <= 1'b1;
          end else if (flush_i)
            state_q <= IDLE;
        end
        WAIT: begin
          if (mem_res_val) begin
            state_q <= (drop_q || flush_i) ? IDLE : RESP;
            drop_q  <= 1'b0;
          end else if (flush_i)
            drop_q <= 1'b1;
        end
        RESP: state_q <= IDLE;
      endcase
      if (flush_i) cached_q <= 1'b0;
      else if (mem_res_val && (state_q == REQ || state_q == WAIT))
        cached_q <= 1'b1;
    end
  end
endmodule
