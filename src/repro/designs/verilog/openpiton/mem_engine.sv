// OpenPiton Mem Engine (reduced model): the system context of Bug2.
//
// On go_i it issues a 4-beat burst of NoC1 requests, trusting
// noc1buffer_req_ack to pace it.  Against the buggy buffer (whose ack
// ignores fullness) the burst overflows the 2-entry FIFO exactly the way
// the unconstrained formal environment does in the AutoSVA FT.  Encoder
// responses are always accepted.
module mem_engine (
  input  wire       clk_i,
  input  wire       rst_ni,
  input  wire       go_i,
  output wire       busy_o,
  output wire       noc1buffer_req_val,
  input  wire       noc1buffer_req_ack,
  output wire [1:0] noc1buffer_req_mshrid,
  input  wire       noc1buffer_enc_val,
  output wire       noc1buffer_enc_ack,
  input  wire [1:0] noc1buffer_enc_mshrid
);
  reg [2:0] beats_q;
  reg [1:0] mshrid_q;

  assign busy_o = beats_q != 3'd0;
  assign noc1buffer_req_val = busy_o;
  assign noc1buffer_req_mshrid = mshrid_q;
  assign noc1buffer_enc_ack = 1'b1;

  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      beats_q  <= 3'd0;
      mshrid_q <= 2'd0;
    end else begin
      if (!busy_o && go_i) begin
        beats_q <= 3'd4;
      end else if (busy_o && noc1buffer_req_ack) begin
        beats_q  <= beats_q - 3'd1;
        mshrid_q <= mshrid_q + 2'd1;
      end
    end
  end
endmodule
