// OpenPiton NoC1 buffer (reduced model) -- buggy variant (paper Bug2).
//
// Written for the L1.5$, whose MSHR logic never issues more requests than
// the buffer has entries, the ack ignores fullness.  Reused under the Mem
// Engine that implicit contract breaks: a burst overflows the FIFO, the
// write pointer wraps onto a live entry and silently overwrites it, and
// the overwritten request never reaches the NoC -- deadlock.
module noc_buffer (
  input  wire clk_i,
  input  wire rst_ni,
  /*AUTOSVA
  nocbuf: noc1buffer_req -in> noc1buffer_enc
  [1:0] noc1buffer_req_transid = noc1buffer_req_mshrid
  [1:0] noc1buffer_enc_transid = noc1buffer_enc_mshrid
  */
  input  wire       noc1buffer_req_val,
  output wire       noc1buffer_req_ack,
  input  wire [1:0] noc1buffer_req_mshrid,
  output wire       noc1buffer_enc_val,
  input  wire       noc1buffer_enc_ack,
  output wire [1:0] noc1buffer_enc_mshrid
);
  reg [1:0] mem0;
  reg [1:0] mem1;
  reg       wr_ptr;
  reg       rd_ptr;
  reg [1:0] count;

  wire full = count == 2'd2;

  // BUG (Bug2): unconditional ack -- the fullness condition is missing.
  assign noc1buffer_req_ack = 1'b1;
  assign noc1buffer_enc_val = count != 2'd0;
  assign noc1buffer_enc_mshrid = rd_ptr ? mem1 : mem0;

  wire push = noc1buffer_req_val && noc1buffer_req_ack;
  wire pop  = noc1buffer_enc_val && noc1buffer_enc_ack;

  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      mem0   <= 2'd0;
      mem1   <= 2'd0;
      wr_ptr <= 1'b0;
      rd_ptr <= 1'b0;
      count  <= 2'd0;
    end else begin
      if (push) begin
        // When full this wraps onto the oldest live entry and overwrites
        // it -- the silent drop behind the deadlock.
        if (wr_ptr) mem1 <= noc1buffer_req_mshrid;
        else        mem0 <= noc1buffer_req_mshrid;
        wr_ptr <= !wr_ptr;
      end
      if (pop) rd_ptr <= !rd_ptr;
      if (push && !pop) count <= full ? 2'd2 : count + 2'd1;
      else if (pop && !push) count <= count - 2'd1;
    end
  end
endmodule
