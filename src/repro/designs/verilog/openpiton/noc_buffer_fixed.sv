// OpenPiton NoC1 buffer (reduced model) -- fixed variant.
//
// A 2-entry FIFO between the request side (L1.5 / Mem Engine) and the NoC
// encoder.  The paper's Bug2 lived in the ack: the original buffer ack'd
// unconditionally because the L1.5's MSHR logic could never overflow it.
// The fix (this file) adds the not-full condition to the ack.
module noc_buffer (
  input  wire clk_i,
  input  wire rst_ni,
  /*AUTOSVA
  nocbuf: noc1buffer_req -in> noc1buffer_enc
  [1:0] noc1buffer_req_transid = noc1buffer_req_mshrid
  [1:0] noc1buffer_enc_transid = noc1buffer_enc_mshrid
  */
  input  wire       noc1buffer_req_val,
  output wire       noc1buffer_req_ack,
  input  wire [1:0] noc1buffer_req_mshrid,
  output wire       noc1buffer_enc_val,
  input  wire       noc1buffer_enc_ack,
  output wire [1:0] noc1buffer_enc_mshrid
);
  reg [1:0] mem0;
  reg [1:0] mem1;
  reg       wr_ptr;
  reg       rd_ptr;
  reg [1:0] count;

  wire full = count == 2'd2;

  // FIX (Bug2): the ack carries the not-full condition.
  assign noc1buffer_req_ack = !full;
  assign noc1buffer_enc_val = count != 2'd0;
  assign noc1buffer_enc_mshrid = rd_ptr ? mem1 : mem0;

  wire push = noc1buffer_req_val && noc1buffer_req_ack;
  wire pop  = noc1buffer_enc_val && noc1buffer_enc_ack;

  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      mem0   <= 2'd0;
      mem1   <= 2'd0;
      wr_ptr <= 1'b0;
      rd_ptr <= 1'b0;
      count  <= 2'd0;
    end else begin
      if (push) begin
        if (wr_ptr) mem1 <= noc1buffer_req_mshrid;
        else        mem0 <= noc1buffer_req_mshrid;
        wr_ptr <= !wr_ptr;
      end
      if (pop) rd_ptr <= !rd_ptr;
      if (push && !pop) count <= count + 2'd1;
      else if (pop && !push) count <= count - 2'd1;
    end
  end
endmodule
