// OpenPiton L1.5 private cache (reduced model).
//
// Two faces: the NoC1 buffer instance (noc1buffer_req in, noc1buffer_enc
// out) it embeds, and the core-side miss path (l15_req in, l15_res out)
// that is filled by a NoC2 message.  The paper's Table III outcome is
// mixed: the buffer-path properties prove, while the miss-fill
// transaction has CEXs because the NoC2 message types are
// under-constrained -- the formal environment may answer with a message
// type that is not a fill (noc2_type_i != NOC2_FILL), or with none at
// all, so the fill never completes.
module l15 (
  input  wire clk_i,
  input  wire rst_ni,
  /*AUTOSVA
  l15_miss: l15_req -in> l15_res
  nocbuf: noc1buffer_req -in> noc1buffer_enc
  [1:0] noc1buffer_req_transid = noc1buffer_req_mshrid
  [1:0] noc1buffer_enc_transid = noc1buffer_enc_mshrid
  */
  input  wire       l15_req_val,
  output wire       l15_req_ack,
  output wire       l15_res_val,
  input  wire       noc2_val_i,
  input  wire [1:0] noc2_type_i,
  input  wire       noc1buffer_req_val,
  output wire       noc1buffer_req_ack,
  input  wire [1:0] noc1buffer_req_mshrid,
  output wire       noc1buffer_enc_val,
  input  wire       noc1buffer_enc_ack,
  output wire [1:0] noc1buffer_enc_mshrid
);
  localparam NOC2_FILL = 2'd1;

  localparam IDLE = 2'd0;
  localparam WAIT = 2'd1;
  localparam RESP = 2'd2;

  reg [1:0] miss_q;

  assign l15_req_ack = miss_q == IDLE;
  assign l15_res_val = miss_q == RESP;

  wire fill = noc2_val_i && noc2_type_i == NOC2_FILL;

  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      miss_q <= IDLE;
    end else begin
      case (miss_q)
        IDLE: if (l15_req_val) miss_q <= WAIT;
        WAIT: if (fill) miss_q <= RESP;
        RESP: miss_q <= IDLE;
        default: miss_q <= IDLE;
      endcase
    end
  end

  noc_buffer u_buf (
    .clk_i                 (clk_i),
    .rst_ni                (rst_ni),
    .noc1buffer_req_val    (noc1buffer_req_val),
    .noc1buffer_req_ack    (noc1buffer_req_ack),
    .noc1buffer_req_mshrid (noc1buffer_req_mshrid),
    .noc1buffer_enc_val    (noc1buffer_enc_val),
    .noc1buffer_enc_ack    (noc1buffer_enc_ack),
    .noc1buffer_enc_mshrid (noc1buffer_enc_mshrid)
  );
endmodule
