"""The evaluated RTL corpus: programmatic access to Table III's modules.

Each :class:`DesignCase` maps one row of the paper's Table III (plus the
in-text experiments) to concrete annotated RTL sources, with buggy/fixed
variants where the paper reports a bug, and the paper's expected outcome so
the benchmark harness can check reproduction fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

__all__ = ["DesignCase", "CORPUS", "CorpusError", "CorpusIssue",
           "case_by_id", "verilog_path", "load", "validate"]

_VERILOG_ROOT = Path(__file__).parent / "verilog"


class CorpusError(RuntimeError):
    """A corpus RTL file is missing or unusable.

    Raised with the case context instead of letting a bare
    ``FileNotFoundError`` escape from deep inside :mod:`pathlib`.
    """


def verilog_path(relative: str) -> Path:
    """Absolute path of a corpus RTL file (e.g. ``ariane/ptw.sv``)."""
    return _VERILOG_ROOT / relative


def load(relative: str) -> str:
    """Source text of a corpus RTL file."""
    path = verilog_path(relative)
    try:
        return path.read_text()
    except FileNotFoundError:
        raise CorpusError(
            f"corpus RTL file {relative!r} is missing (expected at {path}); "
            f"run repro.designs.validate() for a full health report") from None


@dataclass
class DesignCase:
    """One evaluated module.

    ``dut_file`` is the annotated DUT (fixed variant when both exist);
    ``buggy_file`` the variant with the paper's bug; ``extra_files`` are
    submodule sources needed for elaboration; ``paper_result`` quotes the
    Table III outcome this case must reproduce.
    """

    case_id: str                 # A1..A5, O1, O2, E10
    name: str
    dut_module: str
    dut_file: str
    paper_result: str
    buggy_file: Optional[str] = None
    extra_files: List[str] = field(default_factory=list)
    # Reproduction expectations, checked by tests and the Table III bench:
    expect_fixed_proof: bool = True          # fixed/default variant: 100%?
    expect_buggy_cex: Optional[str] = None   # label fragment of failing prop
    notes: str = ""

    def dut_source(self) -> str:
        return load(self.dut_file)

    def buggy_source(self) -> Optional[str]:
        return load(self.buggy_file) if self.buggy_file else None

    def extra_sources(self) -> List[str]:
        return [load(name) for name in self.extra_files]


CORPUS: Tuple[DesignCase, ...] = (
    DesignCase(
        case_id="A1", name="Page Table Walker (PTW)",
        dut_module="ptw", dut_file="ariane/ptw.sv",
        paper_result="100% liveness/safety properties proof",
        notes="Two transactions: incoming DTLB-miss walk (Fig. 7 "
              "dtlb_ptw) and outgoing D$ access (Fig. 7 ptw_dcache)."),
    DesignCase(
        case_id="A2", name="Trans. Look. Buffer (TLB)",
        dut_module="tlb", dut_file="ariane/tlb.sv",
        paper_result="100% liveness/safety properties proof",
        notes="Single-cycle lookup pipeline; data integrity through the "
              "vaddr echo."),
    DesignCase(
        case_id="A3", name="Memory Mgmt. Unit (MMU)",
        dut_module="mmu", dut_file="ariane/mmu_fixed.sv",
        buggy_file="ariane/mmu_buggy.sv",
        extra_files=["ariane/ptw.sv"],
        paper_result="Bug found and fixed -> 100% proof",
        expect_buggy_cex="had_a_request",
        notes="Bug1: ghost response after a misaligned request also "
              "started a page walk; fix masks the PTW request."),
    DesignCase(
        case_id="A4", name="Load Store Unit (LSU)",
        dut_module="lsu", dut_file="ariane/lsu_fixed.sv",
        buggy_file="ariane/lsu_buggy.sv",
        paper_result="Hit known bug (issue #538)",
        expect_buggy_cex="eventual_response",
        notes="Known bug: an exception from a later load flushes earlier "
              "outstanding loads."),
    DesignCase(
        case_id="A5", name="L1-I$ (write-back)",
        dut_module="icache", dut_file="ariane/icache_fixed.sv",
        buggy_file="ariane/icache_buggy.sv",
        paper_result="Hit known bug (issue #474)",
        expect_buggy_cex="eventual_response",
        notes="Known bug: a flush during a miss refill drops the pending "
              "fetch."),
    DesignCase(
        case_id="O1", name="NoC Buffer",
        dut_module="noc_buffer", dut_file="openpiton/noc_buffer_fixed.sv",
        buggy_file="openpiton/noc_buffer_buggy.sv",
        paper_result="Bug found and fixed -> 100% proof",
        expect_buggy_cex="eventual_response",
        notes="Bug2: overflow overwrites a live entry (deadlock); fix adds "
              "the not-full condition to ack.  3 annotation lines."),
    DesignCase(
        case_id="O2", name="L1.5$ (private) ",
        dut_module="l15", dut_file="openpiton/l15.sv",
        extra_files=["openpiton/noc_buffer_fixed.sv"],
        paper_result="NoC Buffer proof, other CEXs",
        expect_fixed_proof=False,
        expect_buggy_cex=None,
        notes="Buffer-instance properties prove; the miss-fill transaction "
              "has CEXs from under-constrained NoC2 message types."),
    DesignCase(
        case_id="E10", name="MMU shared-walker fairness",
        dut_module="mmu_shared", dut_file="ariane/mmu_shared_fair.sv",
        buggy_file="ariane/mmu_shared.sv",
        paper_result="fairness CEX (<4-cycle trace), removed by assumption",
        expect_buggy_cex="eventual_response",
        notes="The pre-Bug1 fairness CEX: static DTLB priority starves "
              "ITLB fills; an added assumption removes it."),
)


def case_by_id(case_id: str) -> DesignCase:
    for case in CORPUS:
        if case.case_id == case_id:
            return case
    raise KeyError(f"no corpus case {case_id!r}")


@dataclass
class CorpusIssue:
    """One problem found by :func:`validate`."""

    case_id: str
    file: str
    kind: str      # "missing" | "unparsable" | "wrong-module"
    detail: str

    def __str__(self) -> str:
        return f"[{self.case_id}] {self.file}: {self.kind} — {self.detail}"


def validate(cases: Tuple[DesignCase, ...] = CORPUS,
             parse: bool = True,
             raise_on_issue: bool = False) -> List[CorpusIssue]:
    """Health-check the registered corpus against the files on disk.

    For every registered case this checks that the DUT, buggy and extra
    RTL files exist, and (with ``parse=True``) that each DUT source parses
    in the supported subset and actually contains the registered
    ``dut_module``.  Returns the list of issues found (empty when the
    corpus is healthy); with ``raise_on_issue=True`` raises a single
    :class:`CorpusError` summarizing all of them instead — the clear
    error the campaign layer shows before scheduling any work.
    """
    issues: List[CorpusIssue] = []
    for case in cases:
        dut_like = [(case.dut_file, True)]
        if case.buggy_file:
            dut_like.append((case.buggy_file, True))
        for extra in case.extra_files:
            dut_like.append((extra, False))
        for relative, is_dut in dut_like:
            path = verilog_path(relative)
            if not path.exists():
                issues.append(CorpusIssue(
                    case_id=case.case_id, file=relative, kind="missing",
                    detail=f"expected at {path}"))
                continue
            if not parse:
                continue
            # Imported lazily: the registry must stay importable even when
            # the frontend is not.
            from ..rtl.parser import ParseError, parse_design
            from ..rtl.preprocess import strip_ifdefs
            try:
                design = parse_design(strip_ifdefs(path.read_text()))
            except ParseError as exc:
                issues.append(CorpusIssue(
                    case_id=case.case_id, file=relative, kind="unparsable",
                    detail=str(exc)))
                continue
            if is_dut and all(m.name != case.dut_module
                              for m in design.modules):
                issues.append(CorpusIssue(
                    case_id=case.case_id, file=relative, kind="wrong-module",
                    detail=f"module {case.dut_module!r} not found "
                           f"(has: {', '.join(m.name for m in design.modules)})"))
    if issues and raise_on_issue:
        summary = "\n  ".join(str(issue) for issue in issues)
        raise CorpusError(
            f"corpus health check failed with {len(issues)} issue(s):\n"
            f"  {summary}")
    return issues
