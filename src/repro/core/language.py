"""The AutoSVA annotation language (Table I of the paper).

Grammar, reproduced from the paper::

    TRANSACTION ::= TNAME: RELATION ATTRIB
    RELATION    ::= P -in> Q | P -out> Q
    ATTRIB      ::= ATTRIB, ATTRIB | SIG = ASSIGN | input SIG | output SIG
    SIG         ::= [STR:0] FIELD | STR FIELD
    FIELD       ::= P SUFFIX | Q SUFFIX
    SUFFIX      ::= val | ack | transid | transid_unique | active | stable | data
    TNAME, P, Q ::= STR

Annotations are Verilog comments in the interface-declaration section of the
DUT, inside a region marked with the ``AUTOSVA`` macro.  ``P`` and ``Q`` name
the request and response interface of a transaction; each attribute line maps
an RTL expression to a transaction attribute.

The paper's own examples (Fig. 3) use ``rdy`` where Table I says ``ack``
(``lsu_req_rdy = lsu_ready_o``); the released tool accepts both, so this
implementation treats ``rdy`` as an alias of ``ack`` and normalizes it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

__all__ = [
    "AutoSVAError", "Direction", "SUFFIXES", "SUFFIX_ALIASES", "MACRO",
    "RelationSpec", "AttributeDef", "AnnotationBlock", "split_field",
]

MACRO = "AUTOSVA"

#: Legal transaction-attribute suffixes (Table I).
SUFFIXES = ("val", "ack", "transid", "transid_unique", "active", "stable",
            "data")

#: Accepted aliases, normalized before semantic processing.
SUFFIX_ALIASES = {"rdy": "ack", "ready": "ack", "valid": "val"}


class AutoSVAError(ValueError):
    """User-facing error in annotations or the RTL interface section."""


class Direction(Enum):
    """Transaction direction from the DUT's perspective (Section III-A)."""

    IN = "in"     # DUT receives P and must produce Q
    OUT = "out"   # DUT issues P and the environment must produce Q

    @property
    def arrow(self) -> str:
        return f"-{self.value}>"


@dataclass
class RelationSpec:
    """``TNAME: P -in> Q`` — one transaction declaration line."""

    name: str
    p: str
    q: str
    direction: Direction
    line: int = 0


@dataclass
class AttributeDef:
    """One attribute definition.

    ``field`` is the annotated signal name (``lsu_req_val``); ``interface``
    and ``suffix`` its split form; ``width_text`` the declared width
    expression (None for 1-bit); ``rhs`` the Verilog expression it maps to
    (None for implicit port definitions, where the RTL port itself is the
    signal); ``implicit`` marks convention-matched ports.
    """

    field: str
    interface: str
    suffix: str
    width_text: Optional[str] = None
    rhs: Optional[str] = None
    implicit: bool = False
    line: int = 0

    @property
    def is_scalar(self) -> bool:
        return self.width_text is None


@dataclass
class AnnotationBlock:
    """All annotation content extracted from one RTL file."""

    relations: List[RelationSpec] = field(default_factory=list)
    attributes: List[AttributeDef] = field(default_factory=list)


_RELATION_RE = re.compile(
    r"^\s*(?P<name>[A-Za-z_][\w\-]*)\s*:\s*"
    r"(?P<p>[A-Za-z_]\w*)\s*-\s*(?P<dir>in|out)\s*>\s*"
    r"(?P<q>[A-Za-z_]\w*)\s*$")

_ATTRIB_RE = re.compile(
    r"^\s*(?:(?P<io>input|output)\s+)?"
    r"(?:\[\s*(?P<width>[^\]]+?)\s*:\s*0\s*\]\s*)?"
    r"(?P<field>[A-Za-z_][\w.]*)\s*"
    r"(?:=\s*(?P<rhs>.+?)\s*)?$")


def split_field(name: str, interfaces: Tuple[str, ...]) -> Optional[Tuple[str, str]]:
    """Split ``lsu_req_transid_unique`` into (interface, suffix).

    Matches the *longest* declared interface prefix, then requires the
    remainder to be a legal suffix (or alias).  Returns None when the name
    does not belong to any annotated interface — the parser must ignore such
    declarations (Section III-A: "AutoSVA's parser ignores signal
    declarations that do not match P or Q prefixes and the language's legal
    suffixes").
    """
    for iface in sorted(interfaces, key=len, reverse=True):
        prefix = iface + "_"
        if name.startswith(prefix):
            suffix = name[len(prefix):]
            normalized = SUFFIX_ALIASES.get(suffix, suffix)
            if normalized in SUFFIXES:
                return iface, normalized
    return None


def parse_relation_line(text: str, line: int) -> Optional[RelationSpec]:
    """Parse a ``TNAME: P -in> Q`` line; None if it is not a relation."""
    match = _RELATION_RE.match(text)
    if not match:
        return None
    return RelationSpec(name=match.group("name"), p=match.group("p"),
                        q=match.group("q"),
                        direction=Direction(match.group("dir")), line=line)


def parse_attribute_line(text: str, interfaces: Tuple[str, ...],
                         line: int) -> Optional[AttributeDef]:
    """Parse an attribute-definition annotation line.

    Returns None for lines that do not define an attribute of a declared
    interface (ignored, per the paper).  Raises :class:`AutoSVAError` for
    lines that *look* like attribute definitions of a declared interface but
    are malformed.
    """
    stripped = text.strip()
    if not stripped:
        return None
    match = _ATTRIB_RE.match(stripped)
    if not match:
        return None
    name = match.group("field")
    split = split_field(name, interfaces)
    if split is None:
        return None
    interface, suffix = split
    rhs = match.group("rhs")
    io = match.group("io")
    if rhs is None and io is None:
        raise AutoSVAError(
            f"line {line}: attribute {name!r} needs '= expr' or an "
            f"input/output declaration")
    return AttributeDef(field=name, interface=interface, suffix=suffix,
                        width_text=match.group("width"), rhs=rhs,
                        implicit=rhs is None, line=line)
