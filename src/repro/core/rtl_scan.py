"""Step 1a: scan the annotated RTL file (paper Fig. 5, "Parser" input side).

Extracts from the DUT source:

* the module name, parameter declarations and port declarations (direction,
  width expression text, name) — via the full RTL parser, so the scan is
  robust to formatting;
* the AutoSVA annotation lines — via comment scanning on the *raw text*,
  exactly as the paper's tool does ("language annotations are written as
  Verilog comments on the interface declaration section").

Annotation regions are either multi-line comments whose body starts with the
``AUTOSVA`` macro::

    /*AUTOSVA
    lsu_load: lsu_req -in> lsu_res
    lsu_req_val = lsu_valid_i
    */

or single-line comments carrying the macro: ``//AUTOSVA tname: p -in> q``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..rtl import ast as rtl_ast
from ..rtl.parser import parse_design
from ..rtl.preprocess import strip_ifdefs
from ..rtl.render import render_expr
from .language import MACRO, AutoSVAError

__all__ = ["PortInfo", "ParamInfo", "InterfaceScan", "scan_rtl",
           "find_clock_reset"]


@dataclass
class PortInfo:
    direction: str
    name: str
    width_text: Optional[str]   # e.g. "TRANS_ID_BITS-1" (msb text), None = 1b
    line: int = 0

    @property
    def decl_text(self) -> str:
        width = f"[{self.width_text}:0] " if self.width_text else ""
        return f"{self.direction} wire {width}{self.name}"


@dataclass
class ParamInfo:
    name: str
    default_text: str
    is_local: bool = False


@dataclass
class InterfaceScan:
    """Everything the generator needs to know about the DUT."""

    module_name: str
    params: List[ParamInfo] = field(default_factory=list)
    ports: List[PortInfo] = field(default_factory=list)
    annotation_lines: List[Tuple[int, str]] = field(default_factory=list)
    source: str = ""

    def port(self, name: str) -> Optional[PortInfo]:
        for port in self.ports:
            if port.name == name:
                return port
        return None

    @property
    def annotation_loc(self) -> int:
        """Lines of annotation (the paper's effort metric: "110 LoC of
        annotations" across the corpus)."""
        return sum(1 for _, text in self.annotation_lines if text.strip())


_BLOCK_COMMENT_RE = re.compile(r"/\*(.*?)\*/", re.DOTALL)
_LINE_COMMENT_RE = re.compile(r"//([^\n]*)")


def _extract_annotations(source: str) -> List[Tuple[int, str]]:
    lines: List[Tuple[int, str]] = []
    for match in _BLOCK_COMMENT_RE.finditer(source):
        body = match.group(1)
        if not body.lstrip().startswith(MACRO):
            continue
        start_line = source.count("\n", 0, match.start()) + 1
        body = body.lstrip()
        body = body[len(MACRO):]
        for offset, text in enumerate(body.split("\n")):
            text = text.strip()
            if text:
                lines.append((start_line + offset, text))
    for match in _LINE_COMMENT_RE.finditer(source):
        body = match.group(1).strip()
        if not body.startswith(MACRO):
            continue
        text = body[len(MACRO):].strip()
        if text:
            line = source.count("\n", 0, match.start()) + 1
            lines.append((line, text))
    lines.sort(key=lambda item: item[0])
    return lines


def scan_rtl(source: str, module_name: Optional[str] = None) -> InterfaceScan:
    """Scan DUT source text; picks the sole module unless a name is given."""
    design = parse_design(strip_ifdefs(source))
    if not design.modules:
        raise AutoSVAError("no module found in RTL source")
    if module_name is None:
        if len(design.modules) > 1:
            names = ", ".join(m.name for m in design.modules)
            raise AutoSVAError(
                f"multiple modules in source ({names}); pass module_name")
        module = design.modules[0]
    else:
        try:
            module = design.module(module_name)
        except KeyError as exc:
            raise AutoSVAError(str(exc)) from exc

    scan = InterfaceScan(module_name=module.name, source=source)
    for param in module.params:
        scan.params.append(ParamInfo(name=param.name,
                                     default_text=render_expr(param.default),
                                     is_local=param.is_local))
    for port in module.ports:
        width_text = None
        if port.packed is not None:
            lsb = render_expr(port.packed.lsb)
            if lsb != "0":
                raise AutoSVAError(
                    f"port {port.name}: only [msb:0] ranges supported")
            width_text = render_expr(port.packed.msb)
        scan.ports.append(PortInfo(direction=port.direction, name=port.name,
                                   width_text=width_text, line=port.line))
    scan.annotation_lines = _extract_annotations(source)
    return scan


_CLOCK_NAMES = ("clk_i", "clk", "clock", "clk_in")
_RESET_NAMES = ("rst_ni", "rst_n", "resetn", "rst_ni_i", "rst", "reset",
                "rst_i", "reset_i")


def find_clock_reset(scan: InterfaceScan) -> Tuple[str, str, bool]:
    """Identify the clock and reset ports; returns (clk, rst, active_low).

    The generated properties are clocked on the DUT clock and disabled during
    reset, mirroring the Fig. 2 template (``posedge clk_i`` /
    ``negedge rst_ni``).
    """
    names = {port.name for port in scan.ports}
    clock = next((n for n in _CLOCK_NAMES if n in names), None)
    if clock is None:
        raise AutoSVAError(
            f"{scan.module_name}: no clock port found (tried "
            f"{', '.join(_CLOCK_NAMES)})")
    reset = next((n for n in _RESET_NAMES if n in names), None)
    if reset is None:
        raise AutoSVAError(
            f"{scan.module_name}: no reset port found (tried "
            f"{', '.join(_RESET_NAMES)})")
    active_low = reset.endswith("n") or reset.endswith("ni") or \
        reset.endswith("n_i") or "_n" in reset
    return clock, reset, active_low
