"""Command-line interface: the ``autosva`` tool.

Mirrors the published tool's invocation style: point it at an annotated RTL
file, pick a target tool, get a formal testbench directory — and optionally
run the built-in engine immediately.

Examples::

    autosva lsu.sv --out ft_lsu            # generate property/bind/tool files
    autosva lsu.sv --tool native --run     # generate and model-check offline
    autosva mmu.sv --submodule ptw.sv:as   # link a submodule FT, -AS mode

The ``campaign`` subcommand runs the whole evaluation corpus (the paper's
Table III) through :mod:`repro.campaign`::

    autosva campaign                       # full corpus on 1 worker
    autosva campaign --cases A1,A2 --workers 2
    autosva campaign --workers 4 --cache-dir .repro-cache --json t3.json
    autosva campaign --granularity property --workers 4
                                           # shard property sets, one
                                           # compile per design (repro.api)
    autosva campaign --granularity property --schedule cost
                                           # LPT cost-balanced groups +
                                           # work stealing (the default)
    autosva campaign --sweep proof_engine=pdr,kind --json sweep.json
    autosva campaign --history runs.jsonl  # regression check vs last run
                                           # + cost-model calibration

Distributed campaigns (see ``docs/distributed.md``) run the same jobs on
remote worker agents over TCP, verdict-identical to the local pool::

    autosva campaign --transport tcp --listen 127.0.0.1:0 --min-workers 2
    autosva worker --connect 127.0.0.1:PORT --slots auto   # on each host
    autosva campaign --transport tcp --spawn-workers 2     # loopback demo

The ``serve`` subcommand runs the long-lived campaign service — an HTTP
front door multiplexing many tenants' campaigns onto one shared worker
fabric with per-tenant quotas and fair sharing (see ``docs/service.md``)::

    autosva serve --listen 127.0.0.1:8420 --workers 2
    autosva serve --transport tcp --spawn-workers 2 --quotas quotas.json

The ``top`` subcommand is the matching operator dashboard — a live
ANSI view over a running service's /status and /metrics/history::

    autosva top --connect 127.0.0.1:8420
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List

from ..formal.engine import EngineConfig
from .flow import SubmoduleLink, generate_ft, run_fv
from .language import AutoSVAError
from .toolcfg import ToolConfig

__all__ = ["main", "build_arg_parser", "build_campaign_parser",
           "campaign_main"]


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="autosva",
        description="Generate formal verification testbenches from "
                    "transaction annotations in RTL interfaces (AutoSVA, "
                    "DAC'21 reproduction).")
    parser.add_argument("rtl", type=Path,
                        help="annotated RTL file containing the DUT")
    parser.add_argument("--module", default=None,
                        help="DUT module name (default: sole module in file)")
    parser.add_argument("--out", type=Path, default=None,
                        help="output directory (default: ft_<module>)")
    parser.add_argument("--tool", choices=("native", "sby", "jasper"),
                        default="native",
                        help="FV tool to target (native = built-in engine)")
    parser.add_argument("--depth", type=int, default=20,
                        help="proof/bug-hunt depth bound")
    parser.add_argument("--assert-inputs", action="store_true",
                        help="render flippable assumptions as assertions "
                             "(the paper's ASSERT_INPUTS parameter)")
    parser.add_argument("--submodule", action="append", default=[],
                        metavar="FILE[:MODE]",
                        help="link a previously annotated submodule FT; "
                             "MODE is am (default) or as (-AM/-AS flags)")
    parser.add_argument("--run", action="store_true",
                        help="run the built-in formal engine after "
                             "generation and print the report")
    parser.add_argument("--sources", nargs="*", type=Path, default=[],
                        help="extra RTL files needed to elaborate the DUT")
    return parser


def build_campaign_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="autosva campaign",
        description="Run a verification campaign over the evaluation "
                    "corpus: every selected design x variant is generated, "
                    "model-checked on a worker pool, and aggregated into a "
                    "Table-III-style report.  The default selection is the "
                    "whole registry, i.e. the seven Table III rows plus "
                    "the in-text E10 experiment (examples/"
                    "table3_outcomes.py reproduces the table proper, "
                    "without E10).")
    parser.add_argument("--cases", default=None,
                        help="comma-separated case ids (default: whole "
                             "corpus), e.g. A1,A3,O1")
    parser.add_argument("--variants", default="fixed,buggy",
                        help="comma-separated subset of fixed,buggy")
    parser.add_argument("--workers", default="auto", metavar="N|auto",
                        help="worker processes; 'auto' (the default) "
                             "resolves to the host's CPU count")
    parser.add_argument("--granularity", choices=("design", "property"),
                        default="design",
                        help="scheduling unit: one job per design (default) "
                             "or shard each design's property set across "
                             "the worker pool (one compile per design, "
                             "per-property check tasks)")
    parser.add_argument("--group-size", type=int, default=1, metavar="N",
                        help="properties per task at property granularity "
                             "(default 1)")
    parser.add_argument("--schedule", choices=("inventory", "cost"),
                        default="cost",
                        help="property-granularity scheduling policy: "
                             "'cost' (default) prices properties by kind/"
                             "COI/bounds, packs them into LPT-balanced "
                             "groups issued costliest-first and lets the "
                             "scheduler steal (re-split) pending groups "
                             "when workers idle; 'inventory' keeps "
                             "declaration-order chunks (the equivalence "
                             "baseline).  Verdicts are identical either "
                             "way")
    parser.add_argument("--sweep", action="append", default=[],
                        metavar="FIELD=V1,V2",
                        help="sweep an EngineConfig field over several "
                             "values (e.g. --sweep proof_engine=pdr,kind "
                             "or --sweep max_bound=4,8); repeatable, "
                             "repeated flags form the cartesian product; "
                             "the report gains a per-config comparison")
    parser.add_argument("--history", type=Path, default=None, metavar="FILE",
                        help="append this run to a JSONL history file and "
                             "report regressions against the previous run")
    parser.add_argument("--transport", choices=("local", "tcp"),
                        default="local",
                        help="where jobs execute: 'local' (default) forks "
                             "worker processes on this host; 'tcp' "
                             "dispatches to remote worker agents "
                             "(autosva worker) over the wire — verdicts "
                             "are identical by contract")
    parser.add_argument("--listen", default="127.0.0.1:0",
                        metavar="HOST:PORT",
                        help="coordinator listen address for --transport "
                             "tcp (port 0 = ephemeral, printed at start; "
                             "default 127.0.0.1:0).  Trusted networks "
                             "only — the v1 protocol has no auth")
    parser.add_argument("--min-workers", type=int, default=None,
                        metavar="N",
                        help="hold dispatch until N worker agents joined "
                             "(default: --spawn-workers count, else 1)")
    parser.add_argument("--spawn-workers", type=int, default=0,
                        metavar="N",
                        help="convenience for loopback runs: spawn N "
                             "local worker agents connected to --listen")
    parser.add_argument("--worker-timeout", type=float, default=None,
                        metavar="S",
                        help="fail if no worker agent connects within S "
                             "seconds (default: 120 with --spawn-workers, "
                             "else wait forever)")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="per-job wall-clock bound in seconds")
    parser.add_argument("--memory-limit", type=int, default=None,
                        metavar="MB", help="per-job address-space bound")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="artifact cache directory (reruns become "
                             "incremental)")
    parser.add_argument("--depth", type=int, default=8,
                        help="engine BMC bound (default 8)")
    parser.add_argument("--frames", type=int, default=30,
                        help="engine PDR frame bound (default 30)")
    parser.add_argument("--json", type=Path, default=None, metavar="FILE",
                        help="write the full report as JSON")
    parser.add_argument("--markdown", type=Path, default=None,
                        metavar="FILE", help="write the report as markdown")
    parser.add_argument("--trace", type=Path, default=None, metavar="FILE",
                        help="record execution spans and write a Chrome "
                             "trace-event JSON file (open in Perfetto / "
                             "chrome://tracing; see docs/observability.md)")
    parser.add_argument("--trace-jsonl", type=Path, default=None,
                        metavar="FILE",
                        help="also write the recorded spans as a flat "
                             "JSONL event log (implies tracing)")
    parser.add_argument("--metrics", action="store_true",
                        help="print the campaign's metric counters "
                             "(solver, scheduler, fabric) after the "
                             "summary")
    parser.add_argument("--execution-record", type=Path, default=None,
                        metavar="FILE",
                        help="write the auditable per-campaign "
                             "ExecutionRecord JSON (job inventory + "
                             "digest, per-task outcomes, phase breakdown, "
                             "solver counters, fabric stats)")
    return parser


def _expand_sweep(specs: List[str], base: EngineConfig) -> List[EngineConfig]:
    """Turn ``--sweep FIELD=V1,V2`` flags into an EngineConfig list.

    Each flag sweeps one field; repeated flags form the cartesian product.
    Values are coerced to the field's type (int/bool/str); unknown fields
    or unsweepable ones (tuples — their values would need the ','
    separator) raise :class:`AutoSVAError`.
    """
    import dataclasses
    from itertools import product

    axes = []
    for spec in specs:
        name, sep, values_text = spec.partition("=")
        name = name.strip()
        if not sep or not values_text.strip():
            raise AutoSVAError(
                f"--sweep expects FIELD=V1,V2,..., got {spec!r}")
        if name not in {f.name for f in dataclasses.fields(EngineConfig)}:
            raise AutoSVAError(
                f"--sweep: unknown EngineConfig field {name!r}")
        if any(axis_name == name for axis_name, _ in axes):
            raise AutoSVAError(
                f"--sweep: field {name!r} given twice; put all its values "
                f"in one flag (--sweep {name}=V1,V2)")
        current = getattr(base, name)
        if isinstance(current, tuple):
            raise AutoSVAError(f"--sweep: field {name!r} is not sweepable")
        values = []
        for raw in values_text.split(","):
            raw = raw.strip()
            if not raw:
                continue
            if isinstance(current, bool):
                if raw.lower() not in ("0", "1", "true", "false"):
                    raise AutoSVAError(
                        f"--sweep: {name} expects true/false, got {raw!r}")
                values.append(raw.lower() in ("1", "true"))
            elif isinstance(current, int):
                try:
                    values.append(int(raw))
                except ValueError:
                    raise AutoSVAError(
                        f"--sweep: {name} expects an integer, got {raw!r}")
            else:
                values.append(raw)
        if not values:
            raise AutoSVAError(f"--sweep: no values in {spec!r}")
        axes.append((name, values))

    configs = []
    for combo in product(*(values for _, values in axes)):
        overrides = {name: value
                     for (name, _), value in zip(axes, combo)}
        # dataclasses.replace re-runs validation, so a bad engine name in
        # a sweep value fails here, before any job is scheduled.
        configs.append(dataclasses.replace(base, **overrides))
    return configs


def _kind_counts(results: List[dict]) -> dict:
    """Property-kind histogram of one task's verdicts (timing samples)."""
    counts: dict = {}
    for item in results:
        kind = item.get("kind", "assert")
        counts[kind] = counts.get(kind, 0) + 1
    return counts


def campaign_main(argv: List[str]) -> int:
    import time

    from ..campaign import (ArtifactCache, CampaignHistory, CampaignReport,
                            expand_jobs, resolve_worker_count,
                            run_campaign, run_property_campaign)
    from ..designs import CorpusError, validate

    try:
        args = build_campaign_parser().parse_args(argv)
    except SystemExit as exc:
        # Keep the documented contract: 1 = bad usage, 2 = failed jobs.
        # argparse would exit 2 on usage errors (and 0 on --help).
        return 0 if exc.code in (0, None) else 1
    try:
        args.workers = resolve_worker_count(args.workers)
    except ValueError as exc:
        print(f"autosva campaign: error: {exc}", file=sys.stderr)
        return 1
    if args.spawn_workers < 0:
        print("autosva campaign: error: --spawn-workers must be >= 0",
              file=sys.stderr)
        return 1
    if args.min_workers is not None and args.min_workers < 1:
        print("autosva campaign: error: --min-workers must be >= 1",
              file=sys.stderr)
        return 1
    if args.timeout is not None and args.timeout <= 0:
        print("autosva campaign: error: --timeout must be positive",
              file=sys.stderr)
        return 1
    if args.memory_limit is not None and args.memory_limit <= 0:
        print("autosva campaign: error: --memory-limit must be positive",
              file=sys.stderr)
        return 1
    if args.group_size < 1:
        print("autosva campaign: error: --group-size must be >= 1",
              file=sys.stderr)
        return 1
    case_ids = ([cid.strip() for cid in args.cases.split(",") if cid.strip()]
                if args.cases else None)
    variants = tuple(v.strip() for v in args.variants.split(",") if v.strip())
    try:
        if case_ids is not None:
            from ..designs import case_by_id
            cases = [case_by_id(cid) for cid in case_ids]
        else:
            from ..designs import CORPUS
            cases = list(CORPUS)
        validate(tuple(cases), raise_on_issue=True)
        base_config = EngineConfig(max_bound=args.depth,
                                   max_frames=args.frames)
        configs = _expand_sweep(args.sweep, base_config) if args.sweep \
            else None
        jobs = expand_jobs(cases=cases, variants=variants,
                           config=base_config, configs=configs)
    except (CorpusError, KeyError, ValueError) as exc:
        print(f"autosva campaign: error: {exc}", file=sys.stderr)
        return 1
    if not jobs:
        print("autosva campaign: error: no jobs selected", file=sys.stderr)
        return 1

    from ..obs import METRICS, TRACER

    # One registry/tracer view per campaign run: whatever a previous
    # in-process run (tests drive campaign_main repeatedly) left behind
    # must not leak into this run's --metrics/--trace output.
    METRICS.reset()
    TRACER.reset()
    if args.trace or args.trace_jsonl:
        TRACER.enable()
    cache = ArtifactCache(args.cache_dir) if args.cache_dir else None
    history = CampaignHistory(args.history) if args.history else None
    unit = ("property tasks" if args.granularity == "property"
            else "design jobs")
    transport = None
    if args.transport == "tcp":
        from ..dist import TcpTransport, parse_address

        try:
            listen = parse_address(args.listen)
        except ValueError as exc:
            print(f"autosva campaign: error: --listen: {exc}",
                  file=sys.stderr)
            return 1
        min_workers = args.min_workers or max(1, args.spawn_workers)
        worker_timeout = args.worker_timeout
        if worker_timeout is None and args.spawn_workers:
            worker_timeout = 120.0
        try:
            transport = TcpTransport(listen=listen,
                                     min_workers=min_workers,
                                     worker_timeout_s=worker_timeout)
        except OSError as exc:
            # Privileged/occupied port and friends: the documented
            # clean-error contract, not a traceback.
            print(f"autosva campaign: error: cannot listen on "
                  f"{args.listen}: {exc}", file=sys.stderr)
            return 1
        host, port = transport.address
        print(f"Coordinator listening on {host}:{port} — attach workers "
              f"with: autosva worker --connect {host}:{port}", flush=True)
        if args.spawn_workers:
            transport.spawn_local(args.spawn_workers)
            print(f"Spawned {args.spawn_workers} loopback worker "
                  f"agent(s)", flush=True)
        print(f"Running {len(jobs)} jobs ({unit}) on the TCP fabric "
              f"(>= {min_workers} worker agent(s))...", flush=True)
    else:
        print(f"Running {len(jobs)} jobs ({unit}) on {args.workers} "
              f"worker(s)...", flush=True)
    begin = time.monotonic()
    try:
        return _campaign_run(args, jobs, cache, history, transport, begin)
    except AutoSVAError as exc:
        # e.g. the fabric's worker-starvation timeout, or a future-schema
        # cache entry: deliberately user-facing messages, exit code 1.
        print(f"autosva campaign: error: {exc}", file=sys.stderr)
        return 1
    finally:
        if transport is not None:
            transport.close()   # idempotent; reaps spawned worker agents
        if args.trace or args.trace_jsonl:
            from ..obs import TRACER
            TRACER.disable()    # don't leak tracing into later runs


def _campaign_run(args, jobs, cache, history, transport, begin) -> int:
    import time

    from ..campaign import CampaignReport, run_campaign, \
        run_property_campaign

    if args.granularity == "property":
        from ..campaign import CostModel

        model = CostModel()
        if history is not None and args.schedule == "cost":
            # Fold measured per-task wall times from previous runs back
            # into the kind weights (no-op on an empty history).
            model = model.calibrated(history.timing_samples())
        events = []

        def on_event(event):
            events.append(event)
            if event.kind == "compile_started":
                print(f"  [compile] {event.design} ...", flush=True)
            elif event.kind == "compile_done":
                note = (" (plan cached)" if event.from_cache
                        else f" {event.wall_time_s:.1f}s")
                print(f"  [compile] {event.design} done{note}", flush=True)
            elif event.kind == "steal":
                print(f"  [  steal] {event.task_id} re-split for idle "
                      f"workers", flush=True)
            elif event.kind == "requeue":
                print(f"  [requeue] {event.task_id} — worker "
                      f"{event.worker} died; reassigned", flush=True)
            else:
                note = (f" (cached, originally "
                        f"{event.original_wall_time_s:.1f}s)"
                        if event.from_cache
                        and event.original_wall_time_s is not None
                        else " (cached)" if event.from_cache
                        else f" {event.wall_time_s:.1f}s")
                print(f"  [{event.status:>7}] {event.task_id}{note}",
                      flush=True)

        results = run_property_campaign(
            jobs, workers=args.workers, group_size=args.group_size,
            cache=cache, timeout_s=args.timeout,
            memory_limit_mb=args.memory_limit,
            schedule=args.schedule, model=model, progress=on_event,
            transport=transport)
        schedule = args.schedule
        steals = sum(r.steals for r in results)
        # Frontend phase = the scheduler-side compiles (plan generation +
        # parse/elaborate); cached plans cost ~0 and report ~0.
        frontend = sum(event.wall_time_s for event in events
                       if event.kind == "compile_done"
                       and not event.from_cache)
        timing_samples = [
            {"kinds": _kind_counts(event.results),
             "wall_time_s": event.wall_time_s,
             "worker": event.worker}
            for event in events
            if event.kind == "result" and event.ok
            and not event.from_cache and event.results
        ]
    else:
        results = run_campaign(
            jobs, workers=args.workers, cache=cache, timeout_s=args.timeout,
            memory_limit_mb=args.memory_limit,
            progress=lambda r: print(
                f"  [{r.status:>7}] {r.job_id}"
                + (" (cached)" if r.from_cache
                   else f" {r.wall_time_s:.1f}s"),
                flush=True),
            transport=transport)
        schedule = None
        steals = 0
        timing_samples = []
        # Design granularity compiles inside the worker task; the compile
        # span is still traced, but there is no scheduler-side frontend
        # phase to attribute separately.
        frontend = 0.0
    worker_stats = transport.worker_stats() if transport is not None \
        else None
    # On the TCP fabric "workers" means agents that survived to the end
    # (still connected, or released by the final shutdown) — dead agents
    # and their replacements must not inflate the count.
    workers = (len([s for s in worker_stats
                    if s.get("slots")
                    and s.get("departed") in (None, "shutdown")])
               if worker_stats is not None else args.workers)
    report = CampaignReport(jobs, results, workers=workers,
                            wall_time_s=time.monotonic() - begin,
                            cache_stats=cache.stats() if cache else None,
                            schedule=schedule, steals=steals,
                            transport=args.transport,
                            worker_stats=worker_stats,
                            frontend_time_s=frontend)

    print()
    print(report.summary())
    if history is not None:
        regressions = history.regressions(report)
        history.append(report)
        if timing_samples:
            history.append_timings(timing_samples)
        print()
        if regressions:
            print(f"Regressions vs previous run ({len(regressions)}):")
            for finding in regressions:
                print(f"  !! {finding}")
        else:
            print("No regressions vs previous run.")
        print(f"History appended -> {args.history}")
    if args.json:
        args.json.write_text(report.to_json())
        print(f"\nJSON report -> {args.json}")
    if args.markdown:
        args.markdown.write_text(report.to_markdown())
        print(f"Markdown report -> {args.markdown}")

    from ..obs import METRICS, TRACER
    if args.metrics:
        print()
        print(METRICS.format_table())
    spans = TRACER.drain() if (args.trace or args.trace_jsonl) else []
    if args.trace:
        import os

        from ..obs.export import write_chrome_trace
        write_chrome_trace(args.trace, spans,
                           process_names={os.getpid(): "scheduler"})
        print(f"Chrome trace ({len(spans)} spans) -> {args.trace}")
    if args.trace_jsonl:
        from ..obs.export import write_jsonl
        write_jsonl(args.trace_jsonl, spans)
        print(f"Span JSONL -> {args.trace_jsonl}")
    if args.execution_record:
        from ..obs.record import build_record
        record = build_record(
            report,
            config={"transport": args.transport, "workers": report.workers,
                    "granularity": args.granularity,
                    "schedule": schedule, "group_size": args.group_size,
                    "depth": args.depth, "frames": args.frames,
                    "variants": args.variants, "cases": args.cases},
            metrics=METRICS.snapshot(), span_count=len(spans))
        record.write(args.execution_record)
        print(f"Execution record -> {args.execution_record}")
    return 0 if report.num_failed == 0 else 2


def main(argv: List[str] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "campaign":
        return campaign_main(argv[1:])
    if argv and argv[0] == "worker":
        from ..dist.worker import worker_main
        return worker_main(argv[1:])
    if argv and argv[0] == "serve":
        from ..service.server import serve_main
        return serve_main(argv[1:])
    if argv and argv[0] == "top":
        from ..service.top import top_main
        return top_main(argv[1:])
    args = build_arg_parser().parse_args(argv)
    try:
        source = args.rtl.read_text()
        links = []
        for spec in args.submodule:
            path_text, _, mode = spec.partition(":")
            sub_source = Path(path_text).read_text()
            sub_ft = generate_ft(sub_source)
            links.append(SubmoduleLink(ft=sub_ft, mode=mode or "am"))
        tool_config = ToolConfig(depth=args.depth)
        ft = generate_ft(source, module_name=args.module,
                         assert_inputs=args.assert_inputs,
                         submodules=links, tool_config=tool_config)
    except (AutoSVAError, OSError) as exc:
        print(f"autosva: error: {exc}", file=sys.stderr)
        return 1

    out_dir = args.out or Path(f"ft_{ft.dut_name}")
    out_dir.mkdir(parents=True, exist_ok=True)
    for name, text in ft.files().items():
        (out_dir / name).write_text(text)
    print(f"Generated FT for {ft.dut_name}: {ft.property_count} properties "
          f"from {ft.annotation_loc} annotation lines "
          f"in {ft.generation_time_s * 1000:.1f} ms -> {out_dir}/")

    if args.run:
        extra = [p.read_text() for p in args.sources]
        config = EngineConfig(max_bound=args.depth, max_k=args.depth)
        report = run_fv(ft, [source] + extra, config)
        print(report.summary())
        for result in report.cex_results:
            print()
            print(result.trace.render())
        return 0 if report.proof_rate == 1.0 else 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
