"""Command-line interface: the ``autosva`` tool.

Mirrors the published tool's invocation style: point it at an annotated RTL
file, pick a target tool, get a formal testbench directory — and optionally
run the built-in engine immediately.

Examples::

    autosva lsu.sv --out ft_lsu            # generate property/bind/tool files
    autosva lsu.sv --tool native --run     # generate and model-check offline
    autosva mmu.sv --submodule ptw.sv:as   # link a submodule FT, -AS mode
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List

from ..formal.engine import EngineConfig
from .flow import SubmoduleLink, generate_ft, run_fv
from .language import AutoSVAError
from .toolcfg import ToolConfig

__all__ = ["main", "build_arg_parser"]


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="autosva",
        description="Generate formal verification testbenches from "
                    "transaction annotations in RTL interfaces (AutoSVA, "
                    "DAC'21 reproduction).")
    parser.add_argument("rtl", type=Path,
                        help="annotated RTL file containing the DUT")
    parser.add_argument("--module", default=None,
                        help="DUT module name (default: sole module in file)")
    parser.add_argument("--out", type=Path, default=None,
                        help="output directory (default: ft_<module>)")
    parser.add_argument("--tool", choices=("native", "sby", "jasper"),
                        default="native",
                        help="FV tool to target (native = built-in engine)")
    parser.add_argument("--depth", type=int, default=20,
                        help="proof/bug-hunt depth bound")
    parser.add_argument("--assert-inputs", action="store_true",
                        help="render flippable assumptions as assertions "
                             "(the paper's ASSERT_INPUTS parameter)")
    parser.add_argument("--submodule", action="append", default=[],
                        metavar="FILE[:MODE]",
                        help="link a previously annotated submodule FT; "
                             "MODE is am (default) or as (-AM/-AS flags)")
    parser.add_argument("--run", action="store_true",
                        help="run the built-in formal engine after "
                             "generation and print the report")
    parser.add_argument("--sources", nargs="*", type=Path, default=[],
                        help="extra RTL files needed to elaborate the DUT")
    return parser


def main(argv: List[str] = None) -> int:
    args = build_arg_parser().parse_args(argv)
    try:
        source = args.rtl.read_text()
        links = []
        for spec in args.submodule:
            path_text, _, mode = spec.partition(":")
            sub_source = Path(path_text).read_text()
            sub_ft = generate_ft(sub_source)
            links.append(SubmoduleLink(ft=sub_ft, mode=mode or "am"))
        tool_config = ToolConfig(depth=args.depth)
        ft = generate_ft(source, module_name=args.module,
                         assert_inputs=args.assert_inputs,
                         submodules=links, tool_config=tool_config)
    except (AutoSVAError, OSError) as exc:
        print(f"autosva: error: {exc}", file=sys.stderr)
        return 1

    out_dir = args.out or Path(f"ft_{ft.dut_name}")
    out_dir.mkdir(parents=True, exist_ok=True)
    for name, text in ft.files().items():
        (out_dir / name).write_text(text)
    print(f"Generated FT for {ft.dut_name}: {ft.property_count} properties "
          f"from {ft.annotation_loc} annotation lines "
          f"in {ft.generation_time_s * 1000:.1f} ms -> {out_dir}/")

    if args.run:
        extra = [p.read_text() for p in args.sources]
        config = EngineConfig(max_bound=args.depth, max_k=args.depth)
        report = run_fv(ft, [source] + extra, config)
        print(report.summary())
        for result in report.cex_results:
            print()
            print(result.trace.render())
        return 0 if report.proof_rate == 1.0 else 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
