"""Step 1 (paper Fig. 5): the AutoSVA parser.

Combines the RTL interface scan with the annotation language parse:

1. relation lines (``TNAME: P -in> Q``) declare transactions and their
   interfaces;
2. explicit attribute lines (``P_suffix = expr``) map RTL expressions to
   transaction attributes;
3. implicit definitions: native input/output ports whose names follow the
   ``{interface}_{suffix}`` convention are picked up automatically without
   annotations ("especially useful for early-stage RTL verification").

The output is a mapping from interface pairs to attribute definitions, ready
for the Transaction Builder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .language import (AttributeDef, AutoSVAError, AnnotationBlock,
                       RelationSpec, parse_attribute_line,
                       parse_relation_line, split_field)
from .rtl_scan import InterfaceScan

__all__ = ["ParsedInterface", "parse_annotations"]


@dataclass
class ParsedInterface:
    """Parser output: relations plus per-interface attribute definitions."""

    scan: InterfaceScan
    relations: List[RelationSpec] = field(default_factory=list)
    attributes: Dict[str, List[AttributeDef]] = field(default_factory=dict)

    def attributes_of(self, interface: str) -> List[AttributeDef]:
        return self.attributes.get(interface, [])


def parse_annotations(scan: InterfaceScan) -> ParsedInterface:
    """Run the annotation parser over a scanned RTL interface."""
    relations: List[RelationSpec] = []
    pending: List[Tuple[int, str]] = []
    for line, text in scan.annotation_lines:
        relation = parse_relation_line(text, line)
        if relation is not None:
            relations.append(relation)
        else:
            pending.append((line, text))

    if not relations:
        raise AutoSVAError(
            f"{scan.module_name}: no transaction relations found in "
            f"annotations (expected 'name: p -in> q' or 'name: p -out> q')")

    names = [relation.name for relation in relations]
    duplicates = {name for name in names if names.count(name) > 1}
    if duplicates:
        raise AutoSVAError(
            f"duplicate transaction names: {', '.join(sorted(duplicates))}")

    interfaces: Tuple[str, ...] = tuple(
        {iface for rel in relations for iface in (rel.p, rel.q)})

    parsed = ParsedInterface(scan=scan, relations=relations)

    def add(attr: AttributeDef) -> None:
        bucket = parsed.attributes.setdefault(attr.interface, [])
        for existing in bucket:
            if existing.suffix == attr.suffix:
                if attr.implicit:
                    return  # explicit annotation wins over convention match
                if existing.implicit:
                    bucket.remove(existing)
                    break
                raise AutoSVAError(
                    f"line {attr.line}: attribute "
                    f"{attr.interface}_{attr.suffix} defined twice")
        bucket.append(attr)

    # Explicit attribute definitions from annotation lines.
    for line, text in pending:
        attr = parse_attribute_line(text, interfaces, line)
        if attr is not None:
            add(attr)

    # Implicit definitions: convention-named ports.
    for port in scan.ports:
        split = split_field(port.name, interfaces)
        if split is None:
            continue
        interface, suffix = split
        add(AttributeDef(field=port.name, interface=interface, suffix=suffix,
                         width_text=port.width_text, rhs=None, implicit=True,
                         line=port.line))
    return parsed
