"""Structured model of a generated property file.

AutoSVA writes its properties explicitly ("does not use SVA macros or
checkers to provide better readability", Section III-C step 4).  To keep the
generator honest and the output testable, the property file is first built as
a structured item list, then rendered to SystemVerilog text by
:mod:`repro.core.render`.  The structure is also what lets the flow flip
assumptions into assertions for the ``ASSERT_INPUTS`` / ``-AS`` submodule
modes without string surgery, and what the property-count metrics (paper:
"236 unique properties") are computed from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .rtl_scan import ParamInfo, PortInfo

__all__ = ["Comment", "WireDecl", "RegDecl", "FFBlock", "Assertion",
           "PropFile", "DIRECTIVE_PREFIX"]

DIRECTIVE_PREFIX = {"assert": "as", "assume": "am", "cover": "co"}


@dataclass
class Comment:
    """A full-line ``//`` comment in the generated file."""

    text: str


@dataclass
class WireDecl:
    """``wire [msb:0] name = expr;`` — expr None leaves the wire undriven,
    which is how symbolic variables are introduced (free for the FV tool)."""

    name: str
    width_text: Optional[str] = None    # msb expression text; None = 1 bit
    expr_text: Optional[str] = None

    @property
    def is_symbolic(self) -> bool:
        return self.expr_text is None


@dataclass
class RegDecl:
    """``reg [msb:0] name;`` — modeling state (sampled counters etc.)."""

    name: str
    width_text: Optional[str] = None


@dataclass
class FFBlock:
    """An ``always_ff`` modeling block with reset and update sections.

    ``reset_assigns`` are (lhs, rhs) pairs for the reset branch;
    ``body_lines`` are raw statement lines for the else branch.
    """

    reset_assigns: List[Tuple[str, str]] = field(default_factory=list)
    body_lines: List[str] = field(default_factory=list)


@dataclass
class Assertion:
    """One property statement.

    ``directive`` is the directive *when the module is the DUT*; rendering
    with ``assert_inputs=True`` flips flippable assumptions into assertions
    (the paper's ``ASSERT_INPUTS`` parameter / ``-AS`` submodule mode).
    ``liveness`` marks ``s_eventually`` properties (classification for the
    engine and for reporting); ``xprop`` guards the property behind
    ``\\`ifdef XPROP`` (simulation-only X-propagation checks).
    """

    directive: str              # assert | assume | cover
    label: str                  # base label without as__/am__/co__ prefix
    body: str                   # property expression text
    liveness: bool = False
    xprop: bool = False
    flippable: bool = False

    def directive_for(self, assert_inputs: bool) -> str:
        if assert_inputs and self.flippable and self.directive == "assume":
            return "assert"
        return self.directive

    def full_label(self, assert_inputs: bool = False) -> str:
        prefix = DIRECTIVE_PREFIX[self.directive_for(assert_inputs)]
        return f"{prefix}__{self.label}"


@dataclass
class PropFile:
    """The complete generated property module."""

    module_name: str
    dut_name: str
    clock: str
    reset: str
    reset_active_low: bool
    params: List[ParamInfo] = field(default_factory=list)
    ports: List[PortInfo] = field(default_factory=list)
    items: List[object] = field(default_factory=list)

    @property
    def assertions(self) -> List[Assertion]:
        return [item for item in self.items if isinstance(item, Assertion)]

    @property
    def property_count(self) -> int:
        """Unique properties, excluding simulation-only XPROP ones (matching
        how the paper counts the 236 generated properties for FV)."""
        return sum(1 for a in self.assertions if not a.xprop)

    @property
    def reset_guard(self) -> str:
        """The ``disable iff`` expression text."""
        return f"!{self.reset}" if self.reset_active_low else self.reset

    def find(self, label_fragment: str) -> List[Assertion]:
        return [a for a in self.assertions if label_fragment in a.label]
