"""End-to-end AutoSVA flow: annotated RTL in, runnable formal testbench out.

This is the public API most users touch:

* :func:`generate_ft` — the five generator steps (scan/parse → transactions
  → signals → properties → tool setup), returning a
  :class:`FormalTestbench` with every generated file;
* :func:`run_fv` — hand the FT to the built-in formal engine and get a
  :class:`~repro.formal.engine.CheckReport` (proofs / CEX traces), the
  offline equivalent of "AutoSVA invokes the FV tool";
* submodule linking (``-AM``/``-AS`` script parameters in the paper): merge
  previously generated FTs of submodules into a parent run, optionally
  flipping their assumptions into assertions.

:func:`run_fv` is a compatibility shim since the :mod:`repro.api` redesign:
the public verification surface is now per-property
(:func:`repro.api.expand_tasks` + :class:`repro.api.VerificationSession`,
streaming :class:`~repro.api.task.TaskEvent` results), with whole-design
``run_fv`` kept — unchanged in signature and output — for scripts that want
one blocking call and trace-bearing reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..formal.engine import CheckReport, EngineConfig, FormalEngine
from .bindfile import render_bindfile
from .language import AutoSVAError
from .parser import parse_annotations
from .properties import generate_properties
from .render import render_propfile
from .rtl_scan import find_clock_reset, scan_rtl
from .signals import generate_signals
from .sva import PropFile
from .toolcfg import ToolConfig, render_jg_tcl, render_sby
from .transactions import Transaction, build_transactions

__all__ = ["FormalTestbench", "SubmoduleLink", "generate_ft", "run_fv"]


@dataclass
class SubmoduleLink:
    """A previously generated FT linked into a parent run.

    ``mode`` follows the paper's script parameters: ``"am"`` includes the
    submodule's properties as generated (its environment assumptions stay
    assumptions), ``"as"`` converts all its assumptions into assertions so
    the parent logic is checked against them.
    """

    ft: "FormalTestbench"
    mode: str = "am"

    def __post_init__(self) -> None:
        if self.mode not in ("am", "as"):
            raise AutoSVAError(f"submodule link mode must be 'am' or 'as', "
                               f"got {self.mode!r}")


@dataclass
class FormalTestbench:
    """Everything AutoSVA generates for one DUT."""

    dut_name: str
    prop: PropFile
    transactions: List[Transaction]
    prop_sv: str
    bind_sv: str
    sby: str
    jg_tcl: str
    annotation_loc: int
    generation_time_s: float
    submodules: List[SubmoduleLink] = field(default_factory=list)

    @property
    def property_count(self) -> int:
        """Properties in this FT only (excludes linked submodules)."""
        return self.prop.property_count

    @property
    def total_property_count(self) -> int:
        return self.property_count + sum(
            link.ft.total_property_count for link in self.submodules)

    def files(self) -> Dict[str, str]:
        """All generated files, named as they would land on disk."""
        out = {
            f"{self.dut_name}_prop.sv": self.prop_sv,
            f"{self.dut_name}_bind.sv": self.bind_sv,
            f"{self.dut_name}.sby": self.sby,
            f"{self.dut_name}.tcl": self.jg_tcl,
        }
        for link in self.submodules:
            for name, text in link.ft.files().items():
                if name.endswith("_prop.sv") or name.endswith("_bind.sv"):
                    out.setdefault(name, text)
        return out

    def testbench_sources(self) -> List[str]:
        """Property + bind sources for this FT and linked submodule FTs."""
        sources = [self.prop_sv, self.bind_sv]
        for link in self.submodules:
            sources.extend(link.ft.testbench_sources())
        return sources


def generate_ft(source: str, module_name: Optional[str] = None,
                assert_inputs: bool = False,
                submodules: Sequence[SubmoduleLink] = (),
                tool_config: ToolConfig = ToolConfig(),
                rtl_files: Optional[List[str]] = None) -> FormalTestbench:
    """Run the full generator (paper Fig. 5, steps 1-5) on annotated RTL.

    ``assert_inputs`` renders this FT's own flippable assumptions as
    assertions (the ``ASSERT_INPUTS`` parameter of the paper); submodule
    links carry their own mode.
    """
    begin = time.perf_counter()
    scan = scan_rtl(source, module_name)
    clock, reset, active_low = find_clock_reset(scan)
    parsed = parse_annotations(scan)
    transactions = build_transactions(parsed)

    prop = PropFile(module_name=f"{scan.module_name}_prop",
                    dut_name=scan.module_name,
                    clock=clock, reset=reset, reset_active_low=active_low,
                    params=list(scan.params), ports=list(scan.ports))
    handles = generate_signals(prop, transactions)
    generate_properties(prop, handles)

    prop_sv = render_propfile(prop, assert_inputs=assert_inputs)
    bind_sv = render_bindfile(prop)
    files = rtl_files if rtl_files is not None else [f"{scan.module_name}.sv"]
    sby = render_sby(prop, files, tool_config)
    jg_tcl = render_jg_tcl(prop, files, tool_config)
    elapsed = time.perf_counter() - begin
    ft = FormalTestbench(
        dut_name=scan.module_name, prop=prop, transactions=transactions,
        prop_sv=prop_sv, bind_sv=bind_sv, sby=sby, jg_tcl=jg_tcl,
        annotation_loc=scan.annotation_loc, generation_time_s=elapsed,
        submodules=list(submodules))
    # Submodule property files honour their link mode at render time.
    for link in ft.submodules:
        if link.mode == "as":
            link.ft.prop_sv = render_propfile(link.ft.prop,
                                              assert_inputs=True)
    return ft


def run_fv(ft: FormalTestbench, rtl_sources: Sequence[str],
           config: Optional[EngineConfig] = None,
           defines: Tuple[str, ...] = ()) -> CheckReport:
    """Compile the DUT with the generated testbench and run all properties.

    ``rtl_sources`` must contain the DUT module and any submodules it
    instantiates.  Returns the engine's per-property report; this is the
    offline stand-in for launching JasperGold/SymbiYosys.

    Compatibility shim over :mod:`repro.api`: compilation goes through the
    shared :data:`~repro.api.compile.COMPILE_CACHE` (re-running the same
    FT is check-only) and the check step is
    :meth:`~repro.formal.engine.FormalEngine.check_all` on the compiled
    design.  New code that wants streaming results or property-level
    scheduling should use :func:`repro.api.expand_tasks` +
    :class:`repro.api.VerificationSession` instead; this signature stays
    for whole-design, trace-bearing reports.
    """
    from ..api.compile import compile_design

    sources = list(rtl_sources) + ft.testbench_sources()
    merged = "\n".join(sources)
    compiled = compile_design([merged], ft.dut_name, defines=defines)
    # Persistent per-config engine: re-running the same FT in one process
    # (sweep configs, notebooks, tests) reuses the warm solver state.
    engine = compiled.engine_for(config or EngineConfig())
    return engine.check_all()
