"""Step 2 (paper Fig. 5): the Transaction Builder.

Builds :class:`Transaction` objects from the parsed relations and attribute
definitions, and performs the semantic checks the paper calls out: "AutoSVA
can detect syntax errors in annotations, e.g. when transid or data fields are
defined in only one of the interfaces of a transaction, or with mismatched
data widths."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..rtl.elaborate import ElabError, const_eval
from ..rtl.parser import ParseError, parse_expr_text
from .language import AttributeDef, AutoSVAError, Direction, RelationSpec
from .parser import ParsedInterface

__all__ = ["SideAttrs", "Transaction", "build_transactions"]


@dataclass
class SideAttrs:
    """Attributes attached to one interface (P or Q) of a transaction."""

    prefix: str
    val: Optional[AttributeDef] = None
    ack: Optional[AttributeDef] = None
    transid: Optional[AttributeDef] = None
    transid_unique: bool = False
    data: Optional[AttributeDef] = None
    stable: Optional[AttributeDef] = None
    active: Optional[AttributeDef] = None

    def signal(self, suffix: str) -> str:
        """Name of the wire/port carrying an attribute of this side."""
        attr: Optional[AttributeDef] = getattr(self, suffix)
        if attr is None:
            raise KeyError(f"{self.prefix} has no {suffix!r} attribute")
        return attr.field

    @property
    def defined(self) -> List[str]:
        out = []
        for name in ("val", "ack", "transid", "data", "stable", "active"):
            if getattr(self, name) is not None:
                out.append(name)
        return out


@dataclass
class Transaction:
    """A request/response pair with its attribute map (Section III-A)."""

    name: str
    direction: Direction
    p: SideAttrs
    q: SideAttrs
    line: int = 0

    @property
    def incoming(self) -> bool:
        return self.direction is Direction.IN

    @property
    def has_transid(self) -> bool:
        return self.p.transid is not None

    @property
    def has_data(self) -> bool:
        return self.p.data is not None and self.q.data is not None

    @property
    def transid_width_text(self) -> Optional[str]:
        if self.p.transid is None:
            return None
        return self.p.transid.width_text


def _width_value(width_text: Optional[str],
                 params: Dict[str, int]) -> Optional[int]:
    """Numeric msb value when the width expression is evaluable."""
    if width_text is None:
        return 0
    try:
        expr = parse_expr_text(width_text)
        return const_eval(expr, params)
    except (ParseError, ElabError):
        return None


def _check_width_match(kind: str, name: str, p_attr: AttributeDef,
                       q_attr: AttributeDef, params: Dict[str, int]) -> None:
    p_width = _width_value(p_attr.width_text, params)
    q_width = _width_value(q_attr.width_text, params)
    if p_width is not None and q_width is not None:
        if p_width != q_width:
            raise AutoSVAError(
                f"transaction {name}: {kind} width mismatch "
                f"([{p_attr.width_text}:0] vs [{q_attr.width_text}:0])")
        return
    normalize = lambda text: "".join((text or "0").split())
    if normalize(p_attr.width_text) != normalize(q_attr.width_text):
        raise AutoSVAError(
            f"transaction {name}: {kind} width mismatch "
            f"([{p_attr.width_text}:0] vs [{q_attr.width_text}:0])")


def build_transactions(parsed: ParsedInterface) -> List[Transaction]:
    """Build and validate all transactions declared in the annotations."""
    params: Dict[str, int] = {}
    for info in parsed.scan.params:
        value = _width_value(info.default_text, params)
        if value is not None:
            params[info.name] = value

    transactions: List[Transaction] = []
    for relation in parsed.relations:
        p_side = _collect_side(parsed, relation, relation.p)
        q_side = _collect_side(parsed, relation, relation.q)
        transaction = Transaction(name=relation.name,
                                  direction=relation.direction,
                                  p=p_side, q=q_side, line=relation.line)
        _validate(transaction, params)
        transactions.append(transaction)
    return transactions


def _collect_side(parsed: ParsedInterface, relation: RelationSpec,
                  prefix: str) -> SideAttrs:
    side = SideAttrs(prefix=prefix)
    for attr in parsed.attributes_of(prefix):
        if attr.suffix == "transid_unique":
            if side.transid is not None and not side.transid_unique:
                raise AutoSVAError(
                    f"transaction {relation.name}: {prefix} defines both "
                    f"transid and transid_unique")
            side.transid = attr
            side.transid_unique = True
            continue
        if attr.suffix == "transid" and side.transid_unique:
            raise AutoSVAError(
                f"transaction {relation.name}: {prefix} defines both "
                f"transid and transid_unique")
        setattr(side, attr.suffix, attr)
    return side


def _validate(transaction: Transaction, params: Dict[str, int]) -> None:
    name = transaction.name
    p, q = transaction.p, transaction.q
    if p.val is None:
        raise AutoSVAError(
            f"transaction {name}: request interface {p.prefix!r} has no "
            f"val attribute")
    if q.val is None:
        raise AutoSVAError(
            f"transaction {name}: response interface {q.prefix!r} has no "
            f"val attribute")
    # transid / data must be two-sided with matching widths.
    if (p.transid is None) != (q.transid is None):
        only = p.prefix if p.transid is not None else q.prefix
        raise AutoSVAError(
            f"transaction {name}: transid defined only on {only!r}")
    if p.transid is not None:
        _check_width_match("transid", name, p.transid, q.transid, params)
    if (p.data is None) != (q.data is None):
        only = p.prefix if p.data is not None else q.prefix
        raise AutoSVAError(
            f"transaction {name}: data defined only on {only!r}")
    if p.data is not None:
        _check_width_match("data", name, p.data, q.data, params)
    # stable needs an ack to define "until acknowledged".
    if p.stable is not None and p.ack is None:
        raise AutoSVAError(
            f"transaction {name}: {p.prefix}_stable requires "
            f"{p.prefix}_ack (stability holds until acknowledged)")
    if q.stable is not None and q.ack is None:
        raise AutoSVAError(
            f"transaction {name}: {q.prefix}_stable requires "
            f"{q.prefix}_ack (stability holds until acknowledged)")
    # Uniqueness is about request IDs; it needs a transid.
    if q.transid_unique:
        raise AutoSVAError(
            f"transaction {name}: transid_unique belongs on the request "
            f"interface {p.prefix!r}")
    # Explicit definitions must be parseable Verilog expressions.
    for side in (p, q):
        for attr_name in side.defined:
            attr: AttributeDef = getattr(side, attr_name)
            if attr.rhs is not None:
                try:
                    parse_expr_text(attr.rhs)
                except ParseError as exc:
                    raise AutoSVAError(
                        f"transaction {name}: bad expression for "
                        f"{attr.field}: {exc}") from exc
