"""AutoSVA core: the paper's contribution.

Annotated RTL interface in, formal testbench out (paper Fig. 5):

1. :mod:`repro.core.rtl_scan` + :mod:`repro.core.parser` — Parser;
2. :mod:`repro.core.transactions` — Transaction Builder;
3. :mod:`repro.core.signals` — Signal Generator;
4. :mod:`repro.core.properties` + :mod:`repro.core.render` — Property
   Generator;
5. :mod:`repro.core.toolcfg` + :mod:`repro.core.bindfile` — FV Tool Setup.

Use :func:`repro.core.generate_ft` / :func:`repro.core.run_fv` for the
end-to-end flow, or the ``autosva`` CLI.
"""

from .bindfile import render_bindfile
from .flow import FormalTestbench, SubmoduleLink, generate_ft, run_fv
from .language import (AttributeDef, AutoSVAError, Direction, RelationSpec,
                       SUFFIXES, split_field)
from .parser import ParsedInterface, parse_annotations
from .properties import generate_properties
from .render import render_propfile
from .rtl_scan import InterfaceScan, ParamInfo, PortInfo, find_clock_reset, scan_rtl
from .signals import TransactionSignals, generate_signals
from .sva import Assertion, Comment, FFBlock, PropFile, RegDecl, WireDecl
from .toolcfg import ToolConfig, render_jg_tcl, render_sby
from .transactions import SideAttrs, Transaction, build_transactions

__all__ = [
    "render_bindfile",
    "FormalTestbench", "SubmoduleLink", "generate_ft", "run_fv",
    "AttributeDef", "AutoSVAError", "Direction", "RelationSpec", "SUFFIXES",
    "split_field",
    "ParsedInterface", "parse_annotations",
    "generate_properties",
    "render_propfile",
    "InterfaceScan", "ParamInfo", "PortInfo", "find_clock_reset", "scan_rtl",
    "TransactionSignals", "generate_signals",
    "Assertion", "Comment", "FFBlock", "PropFile", "RegDecl", "WireDecl",
    "ToolConfig", "render_jg_tcl", "render_sby",
    "SideAttrs", "Transaction", "build_transactions",
]
