"""Step 3 (paper Fig. 5): the Signal Generator.

Before properties can be expressed, AutoSVA generates auxiliary modeling
signals (Section III-C):

* wires that materialize explicit attribute definitions
  (``wire lsu_req_val = lsu_valid_i && ...``);
* handshake wires (conjunction of ``val`` and ``ack``);
* *symbolic* variables — undriven wires the FV tool treats as free, made
  rigid by a stability assumption, so one assertion tracks every transaction
  ID at once;
* the outstanding-transaction counter (``X_sampled``) and the data-integrity
  sampling register.

The result is a :class:`TransactionSignals` handle per transaction carrying
the names the Property Generator builds assertions from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from .language import AttributeDef
from .sva import Assertion, Comment, FFBlock, PropFile, RegDecl, WireDecl
from .transactions import SideAttrs, Transaction

__all__ = ["TransactionSignals", "SAMPLED_MSB", "generate_signals"]

#: msb of the outstanding counter: 4 bits = up to 15 in flight, matching the
#: released tool's default tracking depth.
SAMPLED_MSB = "3"
SAMPLED_MAX = "4'd15"
SAMPLED_ZERO = "4'd0"


@dataclass
class TransactionSignals:
    """Signal names backing one transaction's properties."""

    tx: Transaction
    p_val: str
    q_val: str
    p_ack: Optional[str]
    q_ack: Optional[str]
    p_hsk: str               # request handshake (val when no ack)
    q_hsk: str               # response handshake
    set_name: str            # request event, symbolic-filtered
    response_name: str       # response event, symbolic-filtered
    sampled: str             # outstanding counter register
    symb: Optional[str]      # symbolic transid wire
    data_sampled: Optional[str]

    @property
    def name(self) -> str:
        return self.tx.name


def _attr_wire(attr: AttributeDef) -> Optional[WireDecl]:
    """Materialize an explicit definition; implicit ports need no wire."""
    if attr.implicit or attr.rhs is None:
        return None
    return WireDecl(name=attr.field, width_text=attr.width_text,
                    expr_text=attr.rhs)


def _emit_side_wires(prop: PropFile, side: SideAttrs,
                     emitted: Set[str]) -> None:
    for suffix in ("val", "ack", "transid", "data", "stable", "active"):
        attr: Optional[AttributeDef] = getattr(side, suffix)
        if attr is None:
            continue
        wire = _attr_wire(attr)
        if wire is not None and wire.name not in emitted:
            emitted.add(wire.name)
            prop.items.append(wire)


def generate_signals(prop: PropFile, transactions: List[Transaction]
                     ) -> List[TransactionSignals]:
    """Append modeling items for every transaction; return their handles."""
    emitted: Set[str] = set()
    handles: List[TransactionSignals] = []
    for tx in transactions:
        prop.items.append(Comment(
            f"Modeling for transaction {tx.name}: "
            f"{tx.p.prefix} {tx.direction.arrow} {tx.q.prefix}"))
        _emit_side_wires(prop, tx.p, emitted)
        _emit_side_wires(prop, tx.q, emitted)
        handles.append(_generate_one(prop, tx, emitted))
    return handles


def _hsk_wire(prop: PropFile, side: SideAttrs, emitted: Set[str]) -> str:
    """Handshake wire: val && ack, or just val when always accepted."""
    val = side.signal("val")
    if side.ack is None:
        return val
    name = f"{side.prefix}_hsk"
    if name not in emitted:
        emitted.add(name)
        prop.items.append(WireDecl(
            name=name, expr_text=f"{val} && {side.signal('ack')}"))
    return name


def _generate_one(prop: PropFile, tx: Transaction,
                  emitted: Set[str]) -> TransactionSignals:
    p_hsk = _hsk_wire(prop, tx.p, emitted)
    q_hsk = _hsk_wire(prop, tx.q, emitted)

    symb = None
    set_expr = p_hsk
    response_expr = q_hsk
    if tx.has_transid:
        symb = f"symb_{tx.name}_transid"
        prop.items.append(WireDecl(name=symb,
                                   width_text=tx.transid_width_text,
                                   expr_text=None))
        prop.items.append(Assertion(
            directive="assume", label=f"{symb}_stable",
            body=f"##1 $stable({symb})", flippable=False))
        set_expr = f"{p_hsk} && {tx.p.signal('transid')} == {symb}"
        response_expr = f"{q_hsk} && {tx.q.signal('transid')} == {symb}"

    set_name = f"{tx.name}_set"
    response_name = f"{tx.name}_response"
    sampled = f"{tx.name}_sampled"
    prop.items.append(WireDecl(name=set_name, expr_text=set_expr))
    prop.items.append(WireDecl(name=response_name, expr_text=response_expr))
    prop.items.append(RegDecl(name=sampled, width_text=SAMPLED_MSB))
    prop.items.append(FFBlock(
        reset_assigns=[(sampled, "'0")],
        body_lines=[
            f"if ({set_name} || {response_name})",
            f"  {sampled} <= {sampled} + {set_name} - {response_name};",
        ]))

    data_sampled = None
    if tx.has_data:
        data_sampled = f"{tx.name}_data_sampled"
        prop.items.append(RegDecl(name=data_sampled,
                                  width_text=tx.p.data.width_text))
        prop.items.append(FFBlock(
            reset_assigns=[(data_sampled, "'0")],
            body_lines=[
                f"if ({set_name} && {sampled} == {SAMPLED_ZERO})",
                f"  {data_sampled} <= {tx.p.signal('data')};",
            ]))

    return TransactionSignals(
        tx=tx,
        p_val=tx.p.signal("val"), q_val=tx.q.signal("val"),
        p_ack=tx.p.signal("ack") if tx.p.ack else None,
        q_ack=tx.q.signal("ack") if tx.q.ack else None,
        p_hsk=p_hsk, q_hsk=q_hsk,
        set_name=set_name, response_name=response_name,
        sampled=sampled, symb=symb, data_sampled=data_sampled)
