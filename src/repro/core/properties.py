"""Step 4 (paper Fig. 5): the Property Generator.

Implements the Table II property matrix.  The directive of each property
depends on the transaction direction (Section III-B):

* attributes marked ``*`` in Table II (val, ack, transid, data) describe the
  *responder's* obligations — asserted when the transaction is **incoming**
  (the DUT must respond) and assumed when **outgoing** (fairness of the
  environment);
* ``stable`` and ``transid_unique`` describe the *requester's* behaviour —
  the opposite polarity: assumed on incoming requests (legal stimulus),
  asserted on outgoing ones (the DUT's own requests must be well formed);
* ``active`` is always asserted; covers are always covers.

X-propagation assertions are generated under ``\\`ifdef XPROP`` for
simulation reuse (Section III-B "Property Reuse").
"""

from __future__ import annotations

from typing import List, Optional

from .signals import (SAMPLED_MAX, SAMPLED_ZERO, TransactionSignals)
from .sva import Assertion, Comment, PropFile
from .transactions import SideAttrs, Transaction

__all__ = ["generate_properties"]


def _responder_directive(tx: Transaction) -> str:
    """Directive for DUT-must-respond (``*``) properties."""
    return "assert" if tx.incoming else "assume"


def _requester_directive(tx: Transaction) -> str:
    """Directive for request-well-formedness properties."""
    return "assume" if tx.incoming else "assert"


def generate_properties(prop: PropFile,
                        handles: List[TransactionSignals]) -> None:
    """Append the Table II properties for every transaction."""
    for sig in handles:
        tx = sig.tx
        prop.items.append(Comment(
            f"Properties for transaction {tx.name} "
            f"({'incoming' if tx.incoming else 'outgoing'})"))
        _gen_cover(prop, sig)
        _gen_request_side(prop, sig)
        _gen_response_side(prop, sig)
        _gen_val_properties(prop, sig)
        _gen_transid_unique(prop, sig)
        _gen_data_integrity(prop, sig)
        _gen_active(prop, sig)
        _gen_xprop(prop, sig)


def _gen_cover(prop: PropFile, sig: TransactionSignals) -> None:
    """Sanity cover: the transaction can actually happen (anti-vacuity)."""
    prop.items.append(Assertion(
        directive="cover", label=f"{sig.name}_happens",
        body=f"{sig.sampled} > 0"))


def _gen_request_side(prop: PropFile, sig: TransactionSignals) -> None:
    """ack (hsk-or-drop liveness) and stable properties of the P side."""
    tx = sig.tx
    p = tx.p
    if p.ack is not None:
        if p.stable is not None:
            # A stable request cannot be dropped: it must be accepted.
            body = f"{sig.p_val} |-> s_eventually {sig.p_ack}"
        else:
            body = (f"{sig.p_val} |-> s_eventually "
                    f"(!{sig.p_val} || {sig.p_ack})")
        prop.items.append(Assertion(
            directive=_responder_directive(tx),
            label=f"{sig.name}_hsk_or_drop", body=body, liveness=True,
            flippable=True))
    if p.stable is not None:
        prop.items.append(Assertion(
            directive=_requester_directive(tx),
            label=f"{sig.name}_stability",
            body=(f"{sig.p_val} && !{sig.p_ack} |=> "
                  f"$stable({p.signal('stable')})"),
            flippable=True))


def _gen_response_side(prop: PropFile, sig: TransactionSignals) -> None:
    """Mirror properties of the Q side: the response handshake must also
    complete, and a held response can be required to stay stable."""
    tx = sig.tx
    q = tx.q
    if q.ack is not None:
        if q.stable is not None:
            body = f"{sig.q_val} |-> s_eventually {sig.q_ack}"
        else:
            body = (f"{sig.q_val} |-> s_eventually "
                    f"(!{sig.q_val} || {sig.q_ack})")
        # The *environment* accepts the DUT's responses on incoming
        # transactions, so the polarity mirrors the request side.
        prop.items.append(Assertion(
            directive=_requester_directive(tx),
            label=f"{sig.name}_res_hsk_or_drop", body=body, liveness=True,
            flippable=True))
    if q.stable is not None:
        prop.items.append(Assertion(
            directive=_responder_directive(tx),
            label=f"{sig.name}_res_stability",
            body=(f"{sig.q_val} && !{sig.q_ack} |=> "
                  f"$stable({q.signal('stable')})"),
            flippable=True))


def _gen_val_properties(prop: PropFile, sig: TransactionSignals) -> None:
    """The heart of the framework: liveness (every request eventually gets a
    response) and safety (every response had a request), Fig. 2."""
    tx = sig.tx
    directive = _responder_directive(tx)
    prop.items.append(Assertion(
        directive=directive, label=f"{sig.name}_eventual_response",
        body=f"{sig.set_name} |-> s_eventually {sig.response_name}",
        liveness=True, flippable=True))
    prop.items.append(Assertion(
        directive=directive, label=f"{sig.name}_had_a_request",
        body=(f"{sig.response_name} |-> "
              f"{sig.set_name} || {sig.sampled} > 0"),
        flippable=True))
    # Counter saturation guard: the requester must not exceed the tracking
    # depth (would wrap the outstanding counter and break the model).
    prop.items.append(Assertion(
        directive=_requester_directive(tx),
        label=f"{sig.name}_no_pending_overflow",
        body=f"{sig.sampled} == {SAMPLED_MAX} |-> !{sig.set_name}",
        flippable=True))


def _gen_transid_unique(prop: PropFile, sig: TransactionSignals) -> None:
    tx = sig.tx
    if not tx.p.transid_unique:
        return
    prop.items.append(Assertion(
        directive=_requester_directive(tx),
        label=f"{sig.name}_transid_unique",
        body=f"{sig.set_name} |-> {sig.sampled} == {SAMPLED_ZERO}",
        flippable=True))


def _gen_data_integrity(prop: PropFile, sig: TransactionSignals) -> None:
    tx = sig.tx
    if not tx.has_data:
        return
    directive = _responder_directive(tx)
    q_data = tx.q.signal("data")
    p_data = tx.p.signal("data")
    prop.items.append(Assertion(
        directive=directive, label=f"{sig.name}_data_integrity",
        body=(f"{sig.response_name} && {sig.sampled} > 0 |-> "
              f"{q_data} == {sig.data_sampled}"),
        flippable=True))
    prop.items.append(Assertion(
        directive=directive, label=f"{sig.name}_data_integrity_same_cycle",
        body=(f"{sig.response_name} && {sig.set_name} && "
              f"{sig.sampled} == {SAMPLED_ZERO} |-> {q_data} == {p_data}"),
        flippable=True))


def _gen_active(prop: PropFile, sig: TransactionSignals) -> None:
    """``active`` is asserted while the transaction is ongoing — always an
    assertion regardless of direction (Table II)."""
    tx = sig.tx
    for side, tag in ((tx.p, ""), (tx.q, "_res")):
        if side.active is None:
            continue
        prop.items.append(Assertion(
            directive="assert", label=f"{sig.name}{tag}_active",
            body=f"{sig.sampled} > 0 |-> {side.signal('active')}"))


def _gen_xprop(prop: PropFile, sig: TransactionSignals) -> None:
    """X-propagation checks: when val is asserted no other attribute of the
    interface may be X.  Only meaningful in simulation (formal assigns 0/1),
    hence the XPROP guard."""
    existing = {a.label for a in prop.assertions}
    for side in (sig.tx.p, sig.tx.q):
        label = f"{side.prefix}_xprop"
        if label in existing:
            continue  # interface shared by several transactions
        others = [side.signal(suffix) for suffix in
                  ("ack", "transid", "data", "stable", "active")
                  if getattr(side, suffix) is not None]
        if not others:
            continue
        concat = ", ".join(dict.fromkeys(others))
        prop.items.append(Assertion(
            directive="assert", label=label,
            body=f"{side.signal('val')} |-> !$isunknown({{{concat}}})",
            xprop=True))
