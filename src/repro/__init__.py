"""repro — a full reproduction of AutoSVA (DAC 2021).

AutoSVA generates formal-verification testbenches (liveness + safety SVA)
from transaction annotations on RTL module interfaces.  This package contains
the generator (:mod:`repro.core`) plus every substrate the paper's evaluation
depends on, built from scratch:

* :mod:`repro.rtl` — SystemVerilog-subset frontend (lexer → synthesis);
* :mod:`repro.formal` — SAT-based model checker (BMC, k-induction,
  liveness-to-safety) standing in for JasperGold/SymbiYosys;
* :mod:`repro.sim` — 4-state simulator for X-propagation property reuse;
* :mod:`repro.designs` — reduced models of the 7 evaluated Ariane/OpenPiton
  modules, with the paper's bugs and bug-fixes.

Quickstart::

    from repro.core import generate_ft, run_fv
    ft = generate_ft(open("lsu.sv").read())
    report = run_fv(ft, [open("lsu.sv").read()])
    print(report.summary())
"""

__version__ = "1.0.0"

from . import core, formal, rtl

__all__ = ["core", "formal", "rtl", "__version__"]
