"""Zero-dependency observability: spans, metrics, exports, records.

The campaign system's telemetry layer.  Everything here is standard
library only and imports **nothing** from the rest of ``repro`` — the
execution layers (api, formal, campaign, dist) import *us*, never the
other way around, so instrumentation can reach the innermost loops
without creating import cycles.

* :mod:`~repro.obs.trace` — :data:`TRACER`, nested wall-clock spans
  (fork- and thread-safe, strictly no-op when disabled);
* :mod:`~repro.obs.metrics` — :data:`METRICS`, a registry of counters /
  gauges / histograms whose snapshots fold across process and host
  boundaries;
* :mod:`~repro.obs.export` — Chrome trace-event JSON (opens in Perfetto)
  and a JSONL event log;
* :mod:`~repro.obs.record` — the auditable per-campaign
  :class:`~repro.obs.record.ExecutionRecord`;
* :mod:`~repro.obs.promexport` — Prometheus text exposition of the
  registry plus the in-memory :class:`~repro.obs.promexport.MetricsHistory`
  ring behind ``GET /metrics`` / ``/metrics/history``;
* :mod:`~repro.obs.log` — the leveled structured logger (text/JSON
  lines, contextvar correlation fields) the service processes use.

The one cross-process convention lives here: :func:`collect_obs` drains
this process's telemetry into one plain JSON-able dict (shipped over a
fork pipe or piggybacked on a fabric ``result`` frame) and
:func:`absorb_obs` folds such a dict back into the local tracer and
registry.  Both are cheap no-ops when there is nothing to ship.
"""

from __future__ import annotations

from typing import Dict, Optional

from .log import fatal, get_logger, log_context
from .metrics import METRICS, MetricsRegistry
from .promexport import (MetricsHistory, PROM_CONTENT_TYPE,
                         render_prometheus, validate_exposition)
from .trace import TRACER, Span, Tracer

__all__ = ["TRACER", "METRICS", "Tracer", "MetricsRegistry", "Span",
           "collect_obs", "absorb_obs", "MetricsHistory",
           "PROM_CONTENT_TYPE", "render_prometheus", "validate_exposition",
           "get_logger", "log_context", "fatal"]


def collect_obs() -> Optional[Dict[str, object]]:
    """Drain this process's spans + metrics into one wire-able dict.

    Returns ``None`` when there is nothing to ship (tracer disabled or
    empty, registry untouched), so callers can skip the field entirely —
    the protocol treats ``obs`` as an optional minor addition.
    """
    spans = TRACER.drain()
    metrics = METRICS.drain()
    if not spans and not metrics:
        return None
    payload: Dict[str, object] = {}
    if spans:
        payload["spans"] = spans
    if metrics:
        payload["metrics"] = metrics
    return payload


def absorb_obs(obs: Optional[Dict[str, object]],
               ts_offset: float = 0.0) -> None:
    """Fold a :func:`collect_obs` dict into this process's telemetry.

    ``ts_offset`` shifts span timestamps (seconds) — used by the fabric
    coordinator to normalize spans from a host with a different monotonic
    clock base; fork children on the same host need no shift.
    """
    if not obs:
        return
    spans = obs.get("spans")
    if spans:
        TRACER.absorb(spans, ts_offset=ts_offset)
    metrics = obs.get("metrics")
    if metrics:
        METRICS.merge(metrics)
