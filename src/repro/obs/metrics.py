"""Counters, gauges and histograms: the :data:`METRICS` registry.

The metric registry is always on (unlike the tracer): a handful of
integer adds per solver run or scheduler round costs nothing measurable,
and having the counters unconditionally means ``--metrics`` works
without a separate enable step.  What keeps it honest across the
campaign's process topology:

* **Fork safety** — a forked task child inherits the parent's counter
  values; the first registry access after a fork resets them, so a
  child's :meth:`~MetricsRegistry.drain` snapshot holds only *its own*
  increments and the parent can :meth:`~MetricsRegistry.merge` it
  without double counting.
* **Mergeable snapshots** — :meth:`~MetricsRegistry.snapshot` produces a
  plain JSON-able dict; :meth:`~MetricsRegistry.merge` folds one in
  (counters add, gauges take the incoming value, histograms combine
  bucket-wise when the bounds agree).  Child processes and remote agents
  therefore fold into one registry view at the coordinator.

Fetch metrics at the use site (``METRICS.counter("x").inc()``) rather
than caching the object: the get-or-create lookup is one dict hit and is
where the fork check lives.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "METRICS",
           "DEFAULT_BOUNDS", "labelled", "split_labels"]

#: Default histogram bucket upper bounds (seconds-flavored; a final
#: overflow bucket catches everything above the last bound).
DEFAULT_BOUNDS: Tuple[float, ...] = (0.01, 0.1, 1.0, 10.0, 60.0)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", "\\n")


def _unescape_label(value: str) -> str:
    out: List[str] = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "\\" and index + 1 < len(value):
            nxt = value[index + 1]
            out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt,
                                                            "\\" + nxt))
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


def labelled(name: str, labels: Optional[Mapping[str, object]]) -> str:
    """The canonical flat registry key for a metric with labels.

    The registry stays a flat ``str -> metric`` map — snapshots remain
    plain JSON dicts and :meth:`MetricsRegistry.merge` folds label sets
    from children/agents with zero new machinery.  Labels are encoded
    into the key in Prometheus sample syntax (sorted keys, escaped
    values), so ``name{tenant="alice"}`` round-trips through
    :func:`split_labels` and renders verbatim in the exposition.

    Labels are for **low-cardinality** dimensions only (tenant, engine
    kind, on/off flags): every distinct label set is its own time
    series, in this registry and in any scraper's storage alike.
    """
    if not labels:
        return name
    inner = ",".join(f'{key}="{_escape_label(str(value))}"'
                     for key, value in sorted(labels.items()))
    return f"{name}{{{inner}}}"


def split_labels(key: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`labelled`: ``name{k="v"}`` -> ``(name, {k: v})``.

    Keys without labels (the overwhelmingly common case) return an empty
    dict.  A malformed label block is returned un-split rather than
    raising — exposition rendering must never fail on a weird key.
    """
    if not key.endswith("}"):
        return key, {}
    brace = key.find("{")
    if brace < 0:
        return key, {}
    name, block = key[:brace], key[brace + 1:-1]
    labels: Dict[str, str] = {}
    index = 0
    while index < len(block):
        eq = block.find('="', index)
        if eq < 0:
            return key, {}
        label = block[index:eq]
        # Find the closing quote, honoring backslash escapes.
        end = eq + 2
        while end < len(block):
            if block[end] == "\\":
                end += 2
                continue
            if block[end] == '"':
                break
            end += 1
        if end >= len(block) and (not block or block[-1] != '"'):
            return key, {}
        labels[label] = _unescape_label(block[eq + 2:end])
        index = end + 1
        if index < len(block) and block[index] == ",":
            index += 1
    return name, labels


class Counter:
    """A monotonically increasing value (int or float increments)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount=1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (queue depth, pool size)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value) -> None:
        self.value = value


class Histogram:
    """Count/sum/min/max plus fixed buckets of observations."""

    __slots__ = ("count", "total", "min", "max", "bounds", "buckets")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BOUNDS) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.bounds = tuple(float(b) for b in bounds)
        self.buckets: List[int] = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {"count": self.count, "sum": self.total,
                "min": self.min, "max": self.max,
                "bounds": list(self.bounds), "buckets": list(self.buckets)}


class MetricsRegistry:
    """Named metrics with mergeable snapshots (see module docstring)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pid = os.getpid()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _fork_check_locked(self) -> None:
        pid = os.getpid()
        if pid != self._pid:
            # Inherited values belong to the parent; a child keeping them
            # would re-ship them in its drain() and double-count.
            self._counters = {}
            self._gauges = {}
            self._histograms = {}
            self._pid = pid

    # -- get-or-create ----------------------------------------------------
    def counter(self, name: str,
                labels: Optional[Mapping[str, object]] = None) -> Counter:
        name = labelled(name, labels)
        with self._lock:
            self._fork_check_locked()
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter()
            return metric

    def gauge(self, name: str,
              labels: Optional[Mapping[str, object]] = None) -> Gauge:
        name = labelled(name, labels)
        with self._lock:
            self._fork_check_locked()
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge()
            return metric

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_BOUNDS,
                  labels: Optional[Mapping[str, object]] = None
                  ) -> Histogram:
        name = labelled(name, labels)
        with self._lock:
            self._fork_check_locked()
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(bounds)
            return metric

    # -- snapshots --------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Plain-data view of every metric (JSON-able, mergeable)."""
        with self._lock:
            self._fork_check_locked()
            return {
                "counters": {name: metric.value
                             for name, metric in self._counters.items()},
                "gauges": {name: metric.value
                           for name, metric in self._gauges.items()},
                "histograms": {name: metric.as_dict()
                               for name, metric
                               in self._histograms.items()},
            }

    def drain(self) -> Optional[Dict[str, object]]:
        """Snapshot and reset — the exactly-once shipping form.

        Returns ``None`` when the registry holds nothing, so callers can
        skip shipping an empty dict.
        """
        with self._lock:
            self._fork_check_locked()
            if not (self._counters or self._gauges or self._histograms):
                return None
        snapshot = self.snapshot()
        self.reset()
        return snapshot

    def merge(self, snapshot: Optional[Dict[str, object]]) -> None:
        """Fold a snapshot from another process/host into this registry."""
        if not snapshot:
            return
        for name, value in (snapshot.get("counters") or {}).items():
            self.counter(name).inc(value)
        for name, value in (snapshot.get("gauges") or {}).items():
            self.gauge(name).set(value)
        for name, data in (snapshot.get("histograms") or {}).items():
            bounds = tuple(float(b) for b in data.get("bounds", ()))
            local = self.histogram(name,
                                   bounds=bounds or DEFAULT_BOUNDS)
            count = int(data.get("count", 0))
            if not count:
                continue
            local.count += count
            local.total += float(data.get("sum", 0.0))
            for extreme, pick in (("min", min), ("max", max)):
                incoming = data.get(extreme)
                if incoming is None:
                    continue
                current = getattr(local, extreme)
                setattr(local, extreme,
                        float(incoming) if current is None
                        else pick(current, float(incoming)))
            incoming_buckets = data.get("buckets") or []
            if local.bounds == bounds and \
                    len(incoming_buckets) == len(local.buckets):
                for index, bucket in enumerate(incoming_buckets):
                    local.buckets[index] += int(bucket)
            # Mismatched bounds: count/sum/min/max still merged above;
            # bucket shapes from different builds are not force-fit.

    def reset(self) -> None:
        with self._lock:
            self._counters = {}
            self._gauges = {}
            self._histograms = {}
            self._pid = os.getpid()

    def format_table(self) -> str:
        """Human-readable dump for ``--metrics`` output."""
        snapshot = self.snapshot()
        lines: List[str] = ["Metrics:"]
        for name in sorted(snapshot["counters"]):
            value = snapshot["counters"][name]
            text = f"{value:.3f}" if isinstance(value, float) \
                else str(value)
            lines.append(f"  {name:<40} {text:>12}")
        for name in sorted(snapshot["gauges"]):
            lines.append(f"  {name:<40} {snapshot['gauges'][name]:>12} "
                         f"(gauge)")
        for name in sorted(snapshot["histograms"]):
            data = snapshot["histograms"][name]
            count = data["count"]
            mean = (data["sum"] / count) if count else 0.0
            low = (f"{data['min']:.4f}" if data["min"] is not None else "—")
            high = (f"{data['max']:.4f}" if data["max"] is not None else "—")
            lines.append(f"  {name:<40} n={count} mean={mean:.4f} "
                         f"min={low} max={high}")
        if len(lines) == 1:
            lines.append("  (none recorded)")
        return "\n".join(lines)


#: The process-global registry every instrumentation site records into.
METRICS = MetricsRegistry()
