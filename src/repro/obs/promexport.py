"""Prometheus text exposition + in-memory history for the live service.

The :data:`~repro.obs.metrics.METRICS` registry was built for *post-hoc*
export (drain a campaign's counters into a report).  A long-lived
``autosva serve`` needs the *live* form every metrics stack expects:

* :func:`render_prometheus` turns a registry snapshot into Prometheus
  text exposition format (version 0.0.4) — ``# HELP``/``# TYPE``
  preambles, ``_total`` counter suffixes, cumulative histogram
  ``_bucket``/``_sum``/``_count`` triplets, escaped label values.  The
  flat registry keys produced by :func:`~repro.obs.metrics.labelled`
  (``service.tasks_issued{tenant="alice"}``) split back into name +
  labels here, so low-cardinality dimensions survive to the scraper.
* :func:`validate_exposition` is the golden-format checker the tests
  and smoke gates run over every scrape: sample syntax, preamble
  presence, duplicate detection, and the histogram invariants
  (cumulative non-decreasing buckets, ``+Inf`` == ``_count``).
* :class:`MetricsHistory` is a fixed-window ring buffer of snapshot
  samples — the broker feeds it every couple of seconds so queue-depth
  and throughput *trends* are visible (``GET /metrics/history``,
  ``autosva top``) without requiring an external scraper at all.

Naming: registry names are dotted (``scheduler.queue_depth``); the
exposition flattens dots to underscores under one ``autosva_`` prefix
(``autosva_scheduler_queue_depth``) so the origin stays greppable in
both worlds.  Everything here is pure formatting over plain snapshot
dicts — no locks, no I/O, stdlib only.
"""

from __future__ import annotations

import re
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Tuple

from .metrics import split_labels

__all__ = ["PROM_CONTENT_TYPE", "prom_name", "render_prometheus",
           "validate_exposition", "MetricsHistory"]

#: The Content-Type Prometheus scrapers expect from a /metrics endpoint.
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Every exported family carries this prefix (Prometheus convention:
#: one namespace per application).
PREFIX = "autosva_"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>[^ ]+)(?: [0-9]+)?$")
_LABEL_PAIR = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)='
                         r'"(?P<value>(?:[^"\\]|\\.)*)"')


def prom_name(raw: str) -> str:
    """Registry name -> exposition family name (prefixed, sanitized)."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", raw)
    return PREFIX + cleaned


def _fmt(value) -> str:
    """A sample value in exposition syntax (integers stay integral)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    try:
        number = float(value)
    except (TypeError, ValueError):
        return "0"
    if number != number:                       # NaN
        return "NaN"
    if number in (float("inf"), float("-inf")):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", "\\n")


def _label_block(labels: Dict[str, str],
                 extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = sorted(labels.items())
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    return "{" + ",".join(f'{key}="{_escape(str(value))}"'
                          for key, value in pairs) + "}"


def render_prometheus(snapshot: Dict[str, object]) -> str:
    """Registry snapshot (``METRICS.snapshot()``) -> exposition text.

    Metrics sharing a base name but differing in labels collapse into
    one family (single ``# TYPE`` preamble, one sample line per label
    set), exactly how a scraper expects multi-series families.
    """
    families: Dict[str, Dict[str, object]] = {}

    def family(raw_base: str, kind: str, suffix: str = "") -> Dict:
        name = prom_name(raw_base) + suffix
        entry = families.get(name)
        if entry is None:
            entry = families[name] = {
                "kind": kind, "raw": raw_base, "lines": []}
        return entry

    for key, value in (snapshot.get("counters") or {}).items():
        base, labels = split_labels(key)
        entry = family(base, "counter", suffix="_total")
        entry["lines"].append((labels, _fmt(value)))
    for key, value in (snapshot.get("gauges") or {}).items():
        base, labels = split_labels(key)
        entry = family(base, "gauge")
        entry["lines"].append((labels, _fmt(value)))
    for key, data in (snapshot.get("histograms") or {}).items():
        base, labels = split_labels(key)
        entry = family(base, "histogram")
        entry["lines"].append((labels, data))

    out: List[str] = []
    for name in sorted(families):
        entry = families[name]
        kind = entry["kind"]
        out.append(f"# HELP {name} autosva metric {entry['raw']}")
        out.append(f"# TYPE {name} {kind}")
        if kind != "histogram":
            for labels, text in sorted(entry["lines"],
                                       key=lambda item: sorted(
                                           item[0].items())):
                out.append(f"{name}{_label_block(labels)} {text}")
            continue
        for labels, data in sorted(entry["lines"],
                                   key=lambda item: sorted(
                                       item[0].items())):
            bounds = [float(b) for b in data.get("bounds", ())]
            buckets = [int(b) for b in data.get("buckets", [])]
            count = int(data.get("count", 0))
            cumulative = 0
            for bound, bucket in zip(bounds, buckets):
                cumulative += bucket
                block = _label_block(labels, ("le", _fmt(bound)))
                out.append(f"{name}_bucket{block} {cumulative}")
            block = _label_block(labels, ("le", "+Inf"))
            out.append(f"{name}_bucket{block} {count}")
            out.append(f"{name}_sum{_label_block(labels)} "
                       f"{_fmt(float(data.get('sum', 0.0)))}")
            out.append(f"{name}_count{_label_block(labels)} {count}")
    return "\n".join(out) + "\n" if out else ""


def _parse_labels(block: Optional[str]) -> Dict[str, str]:
    """Parse a sample line's label block; ValueError on bad syntax."""
    labels: Dict[str, str] = {}
    if not block:
        return labels
    rest = block
    while rest:
        match = _LABEL_PAIR.match(rest)
        if match is None:
            raise ValueError(f"malformed label pair at {rest!r}")
        key = match.group("key")
        if key in labels:
            raise ValueError(f"duplicate label {key!r}")
        labels[key] = match.group("value")
        rest = rest[match.end():]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            raise ValueError(f"expected ',' between labels at {rest!r}")
    return labels


def validate_exposition(text: str) -> Dict[str, str]:
    """Golden-format check over one exposition document.

    Raises :class:`ValueError` naming the first violation; returns the
    ``family -> type`` map when the document is clean.  Checks:

    * every sample line parses (name, optional labels, value);
    * every sample's family has ``# HELP`` and ``# TYPE`` preambles
      *before* its first sample, and ``# TYPE`` appears exactly once;
    * no two samples share (name, label set);
    * histogram invariants per series: cumulative non-decreasing
      ``_bucket`` values, a ``+Inf`` bucket equal to ``_count``, and
      both ``_sum`` and ``_count`` present.
    """
    types: Dict[str, str] = {}
    helps: Dict[str, str] = {}
    seen: set = set()
    # histogram series accounting: family -> label-key -> data
    buckets: Dict[Tuple[str, str], List[Tuple[float, float]]] = {}
    counts: Dict[Tuple[str, str], float] = {}
    sums: set = set()

    def family_of(name: str) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix):
                base = name[: -len(suffix)]
                if types.get(base) == "histogram":
                    return base
        return name

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not _NAME_OK.match(parts[2]):
                raise ValueError(f"line {lineno}: malformed HELP: {line!r}")
            if parts[2] in helps:
                raise ValueError(
                    f"line {lineno}: duplicate HELP for {parts[2]}")
            helps[parts[2]] = parts[3]
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or not _NAME_OK.match(parts[2]) \
                    or parts[3] not in ("counter", "gauge", "histogram",
                                        "summary", "untyped"):
                raise ValueError(f"line {lineno}: malformed TYPE: {line!r}")
            if parts[2] in types:
                raise ValueError(
                    f"line {lineno}: duplicate TYPE for {parts[2]}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue                            # free-form comment
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        name = match.group("name")
        labels = _parse_labels(match.group("labels"))
        raw_value = match.group("value")
        if raw_value in ("+Inf", "-Inf", "NaN"):
            value = float(raw_value.replace("Inf", "inf"))
        else:
            try:
                value = float(raw_value)
            except ValueError:
                raise ValueError(
                    f"line {lineno}: bad sample value {raw_value!r}")
        fam = family_of(name)
        if fam not in types:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no preceding "
                f"# TYPE {fam}")
        if fam not in helps:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no preceding "
                f"# HELP {fam}")
        sample_key = (name, tuple(sorted(labels.items())))
        if sample_key in seen:
            raise ValueError(
                f"line {lineno}: duplicate sample {name}"
                f"{dict(labels) or ''}")
        seen.add(sample_key)
        if types.get(fam) == "counter" and not name.endswith("_total"):
            raise ValueError(
                f"line {lineno}: counter sample {name!r} lacks the "
                f"_total suffix")
        if types.get(fam) == "histogram":
            series = tuple(sorted((key, val) for key, val in labels.items()
                                  if key != "le"))
            if name.endswith("_bucket"):
                if "le" not in labels:
                    raise ValueError(
                        f"line {lineno}: histogram bucket without le")
                bound = float("inf") if labels["le"] == "+Inf" \
                    else float(labels["le"])
                buckets.setdefault((fam, series), []).append((bound, value))
            elif name.endswith("_count"):
                counts[(fam, series)] = value
            elif name.endswith("_sum"):
                sums.add((fam, series))

    for (fam, series), pairs in buckets.items():
        pairs.sort(key=lambda item: item[0])
        last = -1.0
        for bound, value in pairs:
            if value < last:
                raise ValueError(
                    f"{fam}: bucket counts not cumulative at le={bound}")
            last = value
        if not pairs or pairs[-1][0] != float("inf"):
            raise ValueError(f"{fam}: histogram series missing +Inf bucket")
        if (fam, series) not in counts:
            raise ValueError(f"{fam}: histogram series missing _count")
        if (fam, series) not in sums:
            raise ValueError(f"{fam}: histogram series missing _sum")
        if pairs[-1][1] != counts[(fam, series)]:
            raise ValueError(
                f"{fam}: +Inf bucket ({pairs[-1][1]}) != _count "
                f"({counts[(fam, series)]})")
    return types


class MetricsHistory:
    """A fixed-window ring of registry snapshots: trends without Prometheus.

    One sample = timestamp + every counter/gauge value + each
    histogram's ``(count, sum)`` reduction (buckets are dropped — the
    ring is for trends, and counts/sums difference into rates).  The
    broker samples on a fixed interval; ``as_dict()`` is the
    ``GET /metrics/history`` wire form and what ``autosva top`` draws
    its sparklines from.  Thread-safe; memory is strictly bounded by
    ``window`` samples.
    """

    def __init__(self, window: int = 300, interval_s: float = 2.0) -> None:
        if window < 2:
            raise ValueError("window must hold at least 2 samples")
        self.window = window
        self.interval_s = interval_s
        self._lock = threading.Lock()
        self._samples: deque = deque(maxlen=window)

    def sample(self, snapshot: Dict[str, object],
               ts: Optional[float] = None) -> None:
        entry = {
            "ts": round(time.time() if ts is None else ts, 3),
            "counters": dict(snapshot.get("counters") or {}),
            "gauges": dict(snapshot.get("gauges") or {}),
            "histograms": {
                name: {"count": data.get("count", 0),
                       "sum": round(float(data.get("sum", 0.0)), 6)}
                for name, data in (snapshot.get("histograms") or {}).items()
            },
        }
        with self._lock:
            self._samples.append(entry)

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def as_dict(self) -> Dict[str, object]:
        with self._lock:
            samples = list(self._samples)
        return {"window": self.window, "interval_s": self.interval_s,
                "samples": samples}

    def series(self, name: str, kind: str = "counters"
               ) -> List[Tuple[float, float]]:
        """One metric's ``(ts, value)`` trail across the ring."""
        with self._lock:
            samples = list(self._samples)
        out: List[Tuple[float, float]] = []
        for entry in samples:
            table = entry.get(kind) or {}
            if name in table:
                value = table[name]
                if isinstance(value, dict):
                    value = value.get("count", 0)
                out.append((entry["ts"], float(value)))
        return out

    def rate(self, name: str) -> List[float]:
        """Per-second deltas of a (cumulative) counter across the ring."""
        trail = self.series(name)
        rates: List[float] = []
        for (t0, v0), (t1, v1) in zip(trail, trail[1:]):
            dt = max(t1 - t0, 1e-9)
            rates.append(max(0.0, (v1 - v0) / dt))
        return rates
