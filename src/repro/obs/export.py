"""Trace exports: Chrome trace-event JSON and a JSONL event log.

:func:`chrome_trace` renders drained spans in the Chrome trace-event
format (the ``traceEvents`` array of ``"X"`` complete events plus
``"i"`` instants and ``"M"`` metadata rows), which ``chrome://tracing``
and https://ui.perfetto.dev open directly — compile/check overlap and
steal events become visible timelines instead of equivalence-test
abstractions.  Timestamps are rebased so the earliest span starts at 0
and converted to the format's microsecond unit.

:func:`write_jsonl` is the flat machine-readable alternative: one JSON
object per line, seconds-based, in buffer order — greppable, and the
shape the ExecutionRecord's per-task span summaries are built from.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Union

from .trace import Span

__all__ = ["chrome_trace", "write_chrome_trace", "write_jsonl"]

_SpanLike = Union[Span, Dict[str, object]]


def _as_dicts(spans: Sequence[_SpanLike]) -> List[Dict[str, object]]:
    return [span.as_dict() if isinstance(span, Span) else dict(span)
            for span in spans]


def chrome_trace(spans: Sequence[_SpanLike],
                 process_names: Optional[Dict[int, str]] = None
                 ) -> Dict[str, object]:
    """Render spans as a Chrome trace-event JSON document (dict form).

    ``process_names`` labels pid tracks (e.g. the scheduler pid vs its
    worker pids); unlisted pids get a generic ``worker <pid>`` label.
    """
    data = _as_dicts(spans)
    base = min((float(span.get("ts", 0.0)) for span in data),
               default=0.0)
    events: List[Dict[str, object]] = []
    pids = []
    for span in data:
        pid = int(span.get("pid", 0))
        if pid not in pids:
            pids.append(pid)
    names = dict(process_names or {})
    for pid in pids:
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": names.get(pid, f"worker {pid}")},
        })
    for span in data:
        phase = str(span.get("ph", "X"))
        event: Dict[str, object] = {
            "name": str(span.get("name", "?")),
            "cat": str(span.get("cat", "task")),
            "ph": phase,
            "ts": round((float(span.get("ts", 0.0)) - base) * 1e6, 3),
            "pid": int(span.get("pid", 0)),
            "tid": int(span.get("tid", 0)),
        }
        if phase == "X":
            event["dur"] = round(float(span.get("dur", 0.0)) * 1e6, 3)
        else:
            event["s"] = "p"           # instant scope: process-wide
        args = span.get("args")
        if args:
            event["args"] = args
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, spans: Sequence[_SpanLike],
                       process_names: Optional[Dict[int, str]] = None
                       ) -> None:
    """Write :func:`chrome_trace` output to ``path`` (str or Path)."""
    document = chrome_trace(spans, process_names=process_names)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")


def write_jsonl(path, spans: Sequence[_SpanLike]) -> None:
    """Write one JSON object per span (seconds-based, buffer order)."""
    with open(path, "w", encoding="utf-8") as handle:
        for span in _as_dicts(spans):
            handle.write(json.dumps(span, sort_keys=True))
            handle.write("\n")
