"""Leveled structured logging for the long-lived service processes.

The one-shot CLI is fine with ``print()``: output goes to a terminal,
the process exits, done.  ``autosva serve`` and ``autosva worker`` run
for days — their lines need timestamps, levels, and enough correlation
context (tenant, campaign, task, worker session) that an operator can
grep one campaign's trail out of an interleaved stream.  This module is
that layer, stdlib-only, with TRACER discipline: a suppressed level
costs one integer compare and returns.

Design points:

* **Flat module config.** :func:`configure` sets level / format / sink
  once per process (from ``--log-level/--log-format/--log-file``);
  loggers are cheap named views over that shared config, so libraries
  call :func:`get_logger` at import time without ordering concerns.
* **Two formats.** ``text`` is the human form (``2026-08-08T12:00:01Z
  INFO  service.broker campaign admitted tenant=alice``); ``json`` is
  one object per line for machine capture in chaos/CI runs.  Both carry
  the same fields.
* **Correlation via contextvars.** :func:`log_context` pushes fields
  (``tenant=...``, ``campaign=...``) that every log line inside the
  ``with`` block inherits — including lines logged by lower layers that
  know nothing about tenancy.  Works across threads (each thread's
  context is its own) and asyncio tasks alike.
* **`fatal()`** is the single CLI error-exit shape: logs at ERROR,
  flushes, returns 1 for ``sys.exit``.  Both ``serve`` and ``worker``
  funnel their usage/runtime error paths through it.
"""

from __future__ import annotations

import argparse
import contextlib
import contextvars
import json
import sys
import threading
import time
from typing import Dict, IO, Iterator, Mapping, Optional

__all__ = ["LEVELS", "configure", "get_logger", "log_context",
           "current_context", "fatal", "add_log_arguments",
           "configure_from_args", "Logger"]

#: Level names in severity order; numeric values compare like logging's.
LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warn": 30, "error": 40}
_LEVEL_NAMES = {value: name.upper() for name, value in LEVELS.items()}

_context: contextvars.ContextVar = contextvars.ContextVar(
    "repro_log_context", default=())

_config_lock = threading.Lock()
_level: int = LEVELS["info"]
_format: str = "text"
_stream: Optional[IO[str]] = None        # None -> sys.stderr at emit time
_owned_file: Optional[IO[str]] = None


def configure(level: str = "info", format: str = "text",
              file: Optional[str] = None) -> None:
    """Set the process-wide log level, format, and sink.

    ``file=None`` logs to stderr (the service convention: stdout stays
    reserved for command output).  Calling again replaces the previous
    config and closes any previously opened log file.
    """
    global _level, _format, _stream, _owned_file
    if level not in LEVELS:
        raise ValueError(f"unknown log level {level!r} "
                         f"(choose from {sorted(LEVELS)})")
    if format not in ("text", "json"):
        raise ValueError(f"unknown log format {format!r}")
    with _config_lock:
        if _owned_file is not None:
            try:
                _owned_file.close()
            except OSError:
                pass
            _owned_file = None
        _level = LEVELS[level]
        _format = format
        if file:
            _owned_file = open(file, "a", encoding="utf-8")
            _stream = _owned_file
        else:
            _stream = None


def current_context() -> Dict[str, object]:
    """The correlation fields active on this thread/task right now."""
    return dict(_context.get())


@contextlib.contextmanager
def log_context(**fields: object) -> Iterator[None]:
    """Push correlation fields for every log line inside the block."""
    merged = dict(_context.get())
    merged.update(fields)
    token = _context.set(tuple(merged.items()))
    try:
        yield
    finally:
        _context.reset(token)


def _timestamp(now: Optional[float] = None) -> str:
    if now is None:
        now = time.time()
    base = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime(now))
    millis = int((now % 1.0) * 1000)
    return f"{base}.{millis:03d}Z"


def _stringify(value: object) -> str:
    text = str(value)
    if not text or any(ch.isspace() for ch in text) or '"' in text:
        return json.dumps(text)
    return text


class Logger:
    """A named view over the module config; ``bind()`` attaches fields."""

    __slots__ = ("name", "_bound")

    def __init__(self, name: str,
                 bound: Optional[Mapping[str, object]] = None) -> None:
        self.name = name
        self._bound: Dict[str, object] = dict(bound or {})

    def bind(self, **fields: object) -> "Logger":
        """A child logger that stamps ``fields`` on every line."""
        merged = dict(self._bound)
        merged.update(fields)
        return Logger(self.name, merged)

    def enabled(self, level: str) -> bool:
        return LEVELS.get(level, 100) >= _level

    # -- emit --------------------------------------------------------------
    def _log(self, levelno: int, event: str,
             fields: Mapping[str, object]) -> None:
        if levelno < _level:
            return
        merged: Dict[str, object] = dict(_context.get())
        merged.update(self._bound)
        merged.update(fields)
        now = time.time()
        if _format == "json":
            record = {"ts": _timestamp(now),
                      "level": _LEVEL_NAMES.get(levelno, str(levelno)),
                      "logger": self.name, "event": event}
            record.update({str(k): v for k, v in merged.items()})
            line = json.dumps(record, default=str, sort_keys=False)
        else:
            parts = [_timestamp(now),
                     f"{_LEVEL_NAMES.get(levelno, str(levelno)):<5}",
                     self.name + ":", event]
            parts.extend(f"{key}={_stringify(value)}"
                         for key, value in merged.items())
            line = " ".join(parts)
        with _config_lock:
            stream = _stream if _stream is not None else sys.stderr
            try:
                stream.write(line + "\n")
                stream.flush()
            except (OSError, ValueError):
                pass                       # a dead sink never kills the app

    def debug(self, event: str, **fields: object) -> None:
        self._log(LEVELS["debug"], event, fields)

    def info(self, event: str, **fields: object) -> None:
        self._log(LEVELS["info"], event, fields)

    def warn(self, event: str, **fields: object) -> None:
        self._log(LEVELS["warn"], event, fields)

    def error(self, event: str, **fields: object) -> None:
        self._log(LEVELS["error"], event, fields)


def get_logger(name: str) -> Logger:
    return Logger(name)


def fatal(prog: str, message: str, **fields: object) -> int:
    """The unified CLI error exit: log at ERROR, return 1.

    Usage: ``return fatal("autosva serve", "state dir not writable",
    path=str(state_dir))``.  Always emits regardless of the configured
    level floor — a fatal error is never suppressible.
    """
    logger = Logger(prog)
    logger._log(LEVELS["error"] if _level <= LEVELS["error"] else _level,
                message, fields)
    return 1


# -- argparse plumbing ----------------------------------------------------

def add_log_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--log-*`` flags to a service-ish subcommand."""
    group = parser.add_argument_group("logging")
    group.add_argument("--log-level", choices=sorted(LEVELS),
                       default="info",
                       help="minimum level to emit (default: info)")
    group.add_argument("--log-format", choices=("text", "json"),
                       default="text",
                       help="line format: human text or JSON lines")
    group.add_argument("--log-file", default=None, metavar="PATH",
                       help="append log lines to PATH instead of stderr")


def configure_from_args(args: argparse.Namespace) -> None:
    configure(level=getattr(args, "log_level", "info"),
              format=getattr(args, "log_format", "text"),
              file=getattr(args, "log_file", None))
