"""Auditable per-campaign execution records.

An :class:`ExecutionRecord` is the "what exactly ran" artifact: enough
to answer, months later, which jobs were in the campaign (with a digest
that changes when the inventory does), what configuration drove it, how
each task ended, where the wall-clock went (phase breakdown), what the
solvers did, and what the fabric looked like.  It is plain JSON on disk
and :func:`validate_record` re-checks the structural contract, so CI can
gate on a record round-tripping through serialization.

The record carries *summaries* of spans (counts and per-task timings),
not the spans themselves — the full timeline lives in the Chrome trace
export next to it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["ExecutionRecord", "RECORD_SCHEMA_VERSION", "build_record",
           "validate_record"]

#: Bump when the record's structural contract changes incompatibly.
RECORD_SCHEMA_VERSION = 1


def _inventory_digest(inventory: List[Dict[str, object]]) -> str:
    """sha256 over the canonical JSON of the job inventory."""
    canonical = json.dumps(inventory, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class ExecutionRecord:
    """One campaign run, summarized for audit."""

    schema_version: int = RECORD_SCHEMA_VERSION
    #: Run configuration (transport, workers, schedule, engine knobs...).
    config: Dict[str, object] = field(default_factory=dict)
    #: Per-job identity rows (job_id, case, variant, engine/config).
    inventory: List[Dict[str, object]] = field(default_factory=list)
    #: sha256 of the canonical inventory JSON.
    inventory_digest: str = ""
    #: Per-task outcomes with their timing fields.
    tasks: List[Dict[str, object]] = field(default_factory=list)
    #: Wall-time phase breakdown (frontend/compile/solve/overhead).
    phases: Dict[str, float] = field(default_factory=dict)
    #: Aggregated solver counters (conflicts, decisions, wall time...).
    solver: Dict[str, float] = field(default_factory=dict)
    #: Metrics registry snapshot at campaign end.
    metrics: Dict[str, object] = field(default_factory=dict)
    #: Per-agent fabric stats (empty for the local transport).
    fabric: List[Dict[str, object]] = field(default_factory=list)
    #: Cache hit/miss stats, when a cache backed the run.
    cache: Optional[Dict[str, int]] = None
    #: Number of spans the tracer captured (0 when tracing was off).
    span_count: int = 0
    wall_time_s: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema_version": self.schema_version,
            "config": self.config,
            "inventory": self.inventory,
            "inventory_digest": self.inventory_digest,
            "tasks": self.tasks,
            "phases": self.phases,
            "solver": self.solver,
            "metrics": self.metrics,
            "fabric": self.fabric,
            "cache": self.cache,
            "span_count": self.span_count,
            "wall_time_s": self.wall_time_s,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def write(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")


def build_record(report, config: Optional[Dict[str, object]] = None,
                 metrics: Optional[Dict[str, object]] = None,
                 span_count: int = 0) -> ExecutionRecord:
    """Assemble the record from a finished ``CampaignReport``.

    ``report`` is duck-typed (a ``campaign.report.CampaignReport``) so
    this module keeps its zero-import-from-repro rule; ``metrics`` is a
    ``METRICS.snapshot()`` taken at campaign end.
    """
    inventory: List[Dict[str, object]] = []
    for job in report.jobs:
        entry: Dict[str, object] = {
            "job_id": job.job_id,
            "case_id": job.case_id,
            "variant": job.variant,
        }
        config_index = getattr(job, "config_index", None)
        if config_index is not None:
            entry["config_index"] = config_index
        engine_config = getattr(job, "engine_config", None)
        if engine_config is not None:
            entry["engine"] = getattr(engine_config, "proof_engine", None)
            entry["max_bound"] = getattr(engine_config, "max_bound", None)
        inventory.append(entry)

    tasks: List[Dict[str, object]] = []
    solver_totals: Dict[str, float] = {}
    for result in report.results:
        payload = result.payload or {}
        task: Dict[str, object] = {
            "job_id": result.job_id,
            "status": result.status,
            "from_cache": result.from_cache,
            "wall_time_s": result.wall_time_s,
            "steals": result.steals,
        }
        if result.worker is not None:
            task["worker"] = result.worker
        if result.error:
            task["error"] = result.error
        engine_time = payload.get("engine_time_s")
        if engine_time is not None:
            task["engine_time_s"] = engine_time
        solve_time = payload.get("solve_time_s")
        if solve_time is not None:
            task["solve_time_s"] = solve_time
        for name, value in (payload.get("solver") or {}).items():
            solver_totals[name] = solver_totals.get(name, 0.0) + value
        tasks.append(task)

    phases = report.phase_breakdown() if hasattr(
        report, "phase_breakdown") else {}

    return ExecutionRecord(
        config=dict(config or {}),
        inventory=inventory,
        inventory_digest=_inventory_digest(inventory),
        tasks=tasks,
        phases=phases,
        solver=solver_totals,
        metrics=dict(metrics or {}),
        fabric=list(report.worker_stats or []),
        cache=report.cache_stats,
        span_count=span_count,
        wall_time_s=report.wall_time_s,
    )


def validate_record(data: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless ``data`` is a well-formed record.

    This is the structural contract the obs-smoke CI gate enforces on a
    record that has round-tripped through JSON.
    """
    if not isinstance(data, dict):
        raise ValueError("record must be a JSON object")
    version = data.get("schema_version")
    if version != RECORD_SCHEMA_VERSION:
        raise ValueError(f"unsupported record schema_version: {version!r}")
    for name, kind in (("config", dict), ("inventory", list),
                       ("tasks", list), ("phases", dict),
                       ("solver", dict), ("metrics", dict),
                       ("fabric", list)):
        if not isinstance(data.get(name), kind):
            raise ValueError(f"record field {name!r} must be "
                             f"{kind.__name__}")
    digest = data.get("inventory_digest")
    if not isinstance(digest, str) or len(digest) != 64:
        raise ValueError("inventory_digest must be a sha256 hex string")
    if digest != _inventory_digest(data["inventory"]):
        raise ValueError("inventory_digest does not match inventory")
    for index, entry in enumerate(data["inventory"]):
        if not isinstance(entry, dict) or "job_id" not in entry:
            raise ValueError(f"inventory[{index}] missing job_id")
    for index, task in enumerate(data["tasks"]):
        if not isinstance(task, dict):
            raise ValueError(f"tasks[{index}] must be an object")
        for name in ("job_id", "status", "wall_time_s"):
            if name not in task:
                raise ValueError(f"tasks[{index}] missing {name!r}")
    for name, value in data["phases"].items():
        if not isinstance(value, (int, float)):
            raise ValueError(f"phase {name!r} must be numeric")
    if not isinstance(data.get("span_count"), int):
        raise ValueError("span_count must be an int")
    if not isinstance(data.get("wall_time_s"), (int, float)):
        raise ValueError("wall_time_s must be numeric")
