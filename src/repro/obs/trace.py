"""Nested wall-clock spans: the :data:`TRACER` singleton.

Design constraints, in priority order:

1. **Strictly no-op when disabled.**  Campaigns run with tracing off by
   default and the tier-1 equivalence gates must not pay for it: a
   disabled ``TRACER.span(name)`` returns one preallocated null context
   manager — no object, no dict, no closure is allocated on that path
   (pinned by a tracemalloc test).
2. **Fork safety.**  The campaign forks task children that inherit the
   parent's buffer; a child must ship only the spans *it* recorded, or
   parent spans would merge twice.  Every buffer access re-checks
   ``os.getpid()`` and discards inherited state on first touch after a
   fork.  (``time.monotonic`` is CLOCK_MONOTONIC — one clock base per
   host — so child span timestamps align with the parent's without any
   translation.)
3. **Thread safety.**  Finished spans append to the buffer under a lock;
   the *current span* used for nesting is a ``contextvars.ContextVar``,
   so concurrent threads (and asyncio tasks) nest independently.

A :class:`Span` records name, category, start (monotonic seconds),
duration, pid/tid and its parent span's name; :meth:`Tracer.instant`
records zero-duration point events (steals, requeues).  Spans serialize
to plain dicts (:meth:`Tracer.drain`) so they cross fork pipes and the
fabric wire as JSON; :meth:`Tracer.absorb` folds such dicts back in.
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
from typing import Dict, List, Optional, Sequence

__all__ = ["Span", "Tracer", "TRACER"]


class Span:
    """One completed (or in-flight) traced operation."""

    __slots__ = ("name", "cat", "ts", "dur", "pid", "tid", "parent",
                 "args", "phase")

    def __init__(self, name: str, cat: str = "task",
                 args: Optional[Dict[str, object]] = None,
                 phase: str = "X") -> None:
        self.name = name
        self.cat = cat
        self.ts = 0.0              # monotonic seconds at __enter__
        self.dur = 0.0             # seconds; 0 for instants
        self.pid = 0
        self.tid = 0
        self.parent: Optional[str] = None
        self.args = args
        self.phase = phase         # "X" complete | "i" instant

    def as_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "name": self.name, "cat": self.cat, "ph": self.phase,
            "ts": self.ts, "dur": self.dur,
            "pid": self.pid, "tid": self.tid,
        }
        if self.parent is not None:
            data["parent"] = self.parent
        if self.args:
            data["args"] = self.args
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object],
                  ts_offset: float = 0.0) -> "Span":
        span = cls(str(data.get("name", "?")),
                   cat=str(data.get("cat", "task")),
                   args=data.get("args"),
                   phase=str(data.get("ph", "X")))
        span.ts = float(data.get("ts", 0.0)) + ts_offset
        span.dur = float(data.get("dur", 0.0))
        span.pid = int(data.get("pid", 0))
        span.tid = int(data.get("tid", 0))
        parent = data.get("parent")
        span.parent = str(parent) if parent is not None else None
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, cat={self.cat}, ts={self.ts:.6f}, "
                f"dur={self.dur:.6f}, pid={self.pid})")


class _ActiveSpan:
    """Context manager recording one span into its tracer's buffer."""

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span
        self._token = None

    def __enter__(self) -> Span:
        span = self._span
        current = self._tracer._current.get()
        span.parent = current.name if current is not None else None
        span.pid = os.getpid()
        span.tid = threading.get_ident()
        self._token = self._tracer._current.set(span)
        span.ts = time.monotonic()
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.dur = time.monotonic() - span.ts
        if self._token is not None:
            self._tracer._current.reset(self._token)
        self._tracer._record(span)
        return False


class _NullSpan:
    """The disabled-path context manager: one shared, immutable no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """A buffer of completed spans plus the enable switch.

    One global instance (:data:`TRACER`) serves the whole process; tests
    may construct private tracers.  All buffer access is fork-checked:
    the first touch in a forked child discards inherited spans so a
    child ships exactly the spans it recorded itself.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._buffer: List[Span] = []
        self._lock = threading.Lock()
        self._pid = os.getpid()
        self._current: contextvars.ContextVar[Optional[Span]] = \
            contextvars.ContextVar("repro_obs_current_span", default=None)

    # -- lifecycle --------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop every buffered span (enable state is untouched)."""
        with self._lock:
            self._buffer = []
            self._pid = os.getpid()

    def _fork_check_locked(self) -> None:
        # Called with the lock held.  A pid mismatch means this process
        # forked after spans were buffered: those spans belong to (and
        # were already kept by) the parent — shipping them again from
        # here would double-merge them.
        pid = os.getpid()
        if pid != self._pid:
            self._buffer = []
            self._pid = pid

    def _record(self, span: Span) -> None:
        with self._lock:
            self._fork_check_locked()
            self._buffer.append(span)

    # -- recording --------------------------------------------------------
    def span(self, name: str, cat: str = "task",
             args: Optional[Dict[str, object]] = None):
        """Open a nested span; use as ``with TRACER.span("check"): ...``.

        Disabled tracers return a preallocated null context manager —
        the zero-allocation contract the hot paths rely on.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _ActiveSpan(self, Span(name, cat=cat, args=args))

    def instant(self, name: str, cat: str = "event",
                args: Optional[Dict[str, object]] = None) -> None:
        """Record a zero-duration point event (steal, requeue, ...)."""
        if not self.enabled:
            return
        span = Span(name, cat=cat, args=args, phase="i")
        span.ts = time.monotonic()
        span.pid = os.getpid()
        span.tid = threading.get_ident()
        current = self._current.get()
        span.parent = current.name if current is not None else None
        self._record(span)

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span in this thread/context (or None)."""
        return self._current.get()

    # -- extraction -------------------------------------------------------
    def spans(self) -> List[Span]:
        """Snapshot of the buffered spans (buffer keeps them)."""
        with self._lock:
            self._fork_check_locked()
            return list(self._buffer)

    def drain(self) -> List[Dict[str, object]]:
        """Remove and return all buffered spans as plain dicts.

        The cross-process shipping form: a fork child drains right
        before exiting, a worker agent drains into each ``result``
        frame, so every span is shipped exactly once.
        """
        with self._lock:
            self._fork_check_locked()
            buffered, self._buffer = self._buffer, []
        return [span.as_dict() for span in buffered]

    def absorb(self, span_dicts: Sequence[Dict[str, object]],
               ts_offset: float = 0.0) -> None:
        """Fold drained span dicts (from a child/agent) into this buffer."""
        spans = [Span.from_dict(data, ts_offset=ts_offset)
                 for data in span_dicts]
        with self._lock:
            self._fork_check_locked()
            self._buffer.extend(spans)


#: The process-global tracer every instrumentation site records into.
TRACER = Tracer()
