"""SAT-based formal verification engine (the JasperGold/SymbiYosys stand-in).

Layers, bottom to top:

* :mod:`repro.formal.sat` — CDCL SAT solver.
* :mod:`repro.formal.aig` — and-inverter graph for bit-level logic.
* :mod:`repro.formal.transition` — sequential circuit + proof obligations.
* :mod:`repro.formal.cnf` — Tseitin encoding / time-frame unrolling.
* :mod:`repro.formal.bmc` / :mod:`repro.formal.kinduction` /
  :mod:`repro.formal.liveness` — the checking algorithms.
* :mod:`repro.formal.engines` — the pluggable proof-engine registry
  (``pdr`` / ``kind`` / ``bmc-only``, liveness strategies ``l2s`` /
  ``bounded``) that ``EngineConfig`` names dispatch through.
* :mod:`repro.formal.engine` — per-property orchestration and reports.

The public, per-property verification surface built on this package lives
in :mod:`repro.api` (property tasks, streaming sessions, compile cache).
"""

from .aig import AIG, FALSE, TRUE
from .bmc import BmcResult, bmc_cover, bmc_safety
from .cnf import Unroller
from .engine import (CheckReport, EngineConfig, FormalEngine, PropertyResult,
                     CEX, COVERED, PROVEN, UNKNOWN, UNREACHABLE)
from .engines import (Engine, EngineVerdict, LivenessStrategy,
                      available_engines, available_liveness_strategies,
                      get_engine, get_liveness_strategy, register_engine,
                      register_liveness_strategy)
from .kinduction import InductionResult, prove_safety
from .liveness import LivenessCompilation, compile_liveness
from .sat import Solver, SolverStats
from .trace import Trace, extract_trace
from .transition import Latch, Property, TransitionSystem

__all__ = [
    "AIG", "FALSE", "TRUE",
    "BmcResult", "bmc_cover", "bmc_safety",
    "Unroller",
    "CheckReport", "EngineConfig", "FormalEngine", "PropertyResult",
    "CEX", "COVERED", "PROVEN", "UNKNOWN", "UNREACHABLE",
    "Engine", "EngineVerdict", "LivenessStrategy",
    "available_engines", "available_liveness_strategies",
    "get_engine", "get_liveness_strategy", "register_engine",
    "register_liveness_strategy",
    "InductionResult", "prove_safety",
    "LivenessCompilation", "compile_liveness",
    "Solver", "SolverStats",
    "Trace", "extract_trace",
    "Latch", "Property", "TransitionSystem",
]
