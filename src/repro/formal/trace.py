"""Counterexample traces and their text rendering.

FV tools answer a failed property with a counterexample (CEX) waveform.  The
paper leans on short traces ("a 5-cycle trace that allowed us to quickly
identify the problem"), so the trace machinery records, per cycle, the value
of every *observable* — named signals registered on the transition system —
and renders them as a compact waveform table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .aig import AIG
from .transition import TransitionSystem

__all__ = ["Trace", "extract_trace"]


@dataclass
class Trace:
    """A finite (optionally lasso-shaped) counterexample.

    ``cycles`` maps each observable name to a list of per-cycle integer
    values.  ``loop_start`` is the index the execution returns to for
    liveness CEXs, or None for plain safety CEXs.
    """

    property_name: str
    cycles: Dict[str, List[int]] = field(default_factory=dict)
    depth: int = 0
    loop_start: Optional[int] = None

    def __len__(self) -> int:
        return self.depth

    def value(self, signal: str, cycle: int) -> int:
        return self.cycles[signal][cycle]

    def render(self, signals: Optional[List[int]] = None) -> str:
        """Render the waveform as a fixed-width text table."""
        names = list(self.cycles)
        if not names or self.depth == 0:
            return f"<empty trace for {self.property_name}>"
        name_w = max(len(n) for n in names)
        val_w = max(3, max(len(f"{v:x}") for vals in self.cycles.values()
                           for v in vals))
        header = " " * name_w + " |" + "".join(
            f" {c:>{val_w}}" for c in range(self.depth))
        lines = [f"CEX for {self.property_name} "
                 f"({self.depth} cycles"
                 + (f", loop back to cycle {self.loop_start}" if
                    self.loop_start is not None else "") + ")",
                 header,
                 "-" * len(header)]
        for name in names:
            row = "".join(f" {v:>{val_w}x}" for v in self.cycles[name])
            lines.append(f"{name:<{name_w}} |{row}")
        return "\n".join(lines)


def extract_trace(property_name: str, system: TransitionSystem, unroller,
                  depth: int, loop_start: Optional[int] = None) -> Trace:
    """Build a :class:`Trace` from a satisfied unrolling.

    Reads back the SAT model for each frame's input/latch nodes and evaluates
    every observable's bits through the AIG.
    """
    trace = Trace(property_name=property_name, depth=depth + 1,
                  loop_start=loop_start)
    aig: AIG = system.aig
    per_cycle_values: List[Dict[int, bool]] = unroller.frame_values(depth)
    for name, bits in system.observables.items():
        values: List[int] = []
        for k in range(depth + 1):
            env = per_cycle_values[k]
            word = 0
            for i, bit_lit in enumerate(bits):
                if aig.eval_literal(bit_lit, env):
                    word |= 1 << i
            values.append(word)
        trace.cycles[name] = values
    return trace
