"""A CDCL SAT solver in pure Python.

This is the solver backing the :mod:`repro.formal` model checker.  The paper's
AutoSVA flow hands the generated formal testbench to JasperGold or SymbiYosys;
both are SAT-based model checkers at their core.  Since neither is available in
this environment, we implement the solver layer from scratch: a
conflict-driven clause-learning (CDCL) solver with two-watched-literal
propagation, VSIDS-style activity ordering, phase saving, Luby restarts and
first-UIP clause learning.

The API is deliberately small and incremental-friendly:

>>> s = Solver()
>>> a, b = s.new_var(), s.new_var()
>>> s.add_clause([a, b])
True
>>> s.add_clause([-a, b])
True
>>> s.solve()
True
>>> s.value(b)
True

Literals are non-zero Python ints: ``+v`` is the positive literal of variable
``v`` and ``-v`` its negation, like the DIMACS convention.  ``solve`` accepts
*assumptions*, which is what makes bounded model checking and k-induction
queries cheap to re-issue at increasing depths.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["Solver", "SolverStats", "luby"]

# Truth constants used in the internal assignment array.
_UNASSIGNED = 0
_TRUE = 1
_FALSE = -1


def _lit_index(lit: int) -> int:
    """Map a signed literal to a dense array index (2v for +v, 2v+1 for -v)."""
    return (lit << 1) if lit > 0 else ((-lit << 1) | 1)


def luby(i: int) -> int:
    """The Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...

    ``i`` is 1-based.  Used to scale the conflict budget between restarts.
    """
    x = i - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) >> 1
        seq -= 1
        x = x % size
    return 1 << seq


class SolverStats:
    """Counters exposed for benchmarking and the engine-ablation experiment."""

    __slots__ = ("conflicts", "decisions", "propagations", "restarts",
                 "learned_clauses", "solve_calls")

    def __init__(self) -> None:
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        self.learned_clauses = 0
        self.solve_calls = 0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"SolverStats({inner})"


class _VarHeap:
    """Binary max-heap of variables ordered by VSIDS activity.

    MiniSat's order heap: O(log n) insert/increase-key/pop instead of the
    O(n) scan that otherwise dominates solve time on unrolled circuits.
    """

    __slots__ = ("_heap", "_pos", "_activity")

    def __init__(self, activity: List[float]) -> None:
        self._heap: List[int] = []
        self._pos: List[int] = []
        self._activity = activity

    def grow(self) -> None:
        self._pos.append(-1)

    def __contains__(self, var: int) -> bool:
        return self._pos[var - 1] >= 0

    def insert(self, var: int) -> None:
        if self._pos[var - 1] >= 0:
            return
        self._heap.append(var)
        self._pos[var - 1] = len(self._heap) - 1
        self._up(len(self._heap) - 1)

    def increased(self, var: int) -> None:
        idx = self._pos[var - 1]
        if idx >= 0:
            self._up(idx)

    def pop(self) -> int:
        heap = self._heap
        top = heap[0]
        last = heap.pop()
        self._pos[top - 1] = -1
        if heap:
            heap[0] = last
            self._pos[last - 1] = 0
            self._down(0)
        return top

    def __len__(self) -> int:
        return len(self._heap)

    def _up(self, idx: int) -> None:
        heap, pos, act = self._heap, self._pos, self._activity
        var = heap[idx]
        key = act[var]
        while idx > 0:
            parent = (idx - 1) >> 1
            pvar = heap[parent]
            if act[pvar] >= key:
                break
            heap[idx] = pvar
            pos[pvar - 1] = idx
            idx = parent
        heap[idx] = var
        pos[var - 1] = idx

    def _down(self, idx: int) -> None:
        heap, pos, act = self._heap, self._pos, self._activity
        size = len(heap)
        var = heap[idx]
        key = act[var]
        while True:
            left = 2 * idx + 1
            if left >= size:
                break
            right = left + 1
            child = left
            if right < size and act[heap[right]] > act[heap[left]]:
                child = right
            cvar = heap[child]
            if key >= act[cvar]:
                break
            heap[idx] = cvar
            pos[cvar - 1] = idx
            idx = child
        heap[idx] = var
        pos[var - 1] = idx


class Solver:
    """Incremental CDCL SAT solver.

    Variables are created with :meth:`new_var` and clauses added with
    :meth:`add_clause`.  :meth:`solve` may be called repeatedly with different
    assumption sets; learned clauses persist across calls.
    """

    def __init__(self) -> None:
        self._num_vars = 0
        # Assignment state, indexed by variable (1-based).
        self._assign: List[int] = [_UNASSIGNED]
        self._level: List[int] = [0]
        self._reason: List[Optional[List[int]]] = [None]
        self._phase: List[bool] = [False]
        # VSIDS activity, indexed by variable.
        self._activity: List[float] = [0.0]
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._order = _VarHeap(self._activity)
        # Watched literals: lit-index -> list of clauses watching that literal.
        self._watches: List[List[List[int]]] = [[], []]
        self._clauses: List[List[int]] = []
        self._learned: List[List[int]] = []
        # Trail of assigned literals plus per-level markers.
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._ok = True
        self.core: List[int] = []
        self.stats = SolverStats()

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        """Allocate a fresh variable and return its positive literal."""
        self._num_vars += 1
        self._assign.append(_UNASSIGNED)
        self._level.append(0)
        self._reason.append(None)
        self._phase.append(False)
        self._activity.append(0.0)
        self._watches.append([])  # positive literal watch list
        self._watches.append([])  # negative literal watch list
        self._order.grow()
        self._order.insert(self._num_vars)
        return self._num_vars

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        return len(self._clauses)

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause; returns False if the formula became trivially UNSAT.

        The clause is simplified against root-level assignments.  Duplicate
        literals are removed; tautologies are silently satisfied.
        """
        if not self._ok:
            return False
        self._cancel_until(0)
        seen = set()
        clause: List[int] = []
        for lit in lits:
            if lit == 0 or abs(lit) > self._num_vars:
                raise ValueError(f"invalid literal {lit!r}")
            if -lit in seen:
                return True  # tautology: trivially satisfied
            if lit in seen:
                continue
            val = self._lit_value(lit)
            if val == _TRUE:
                return True  # already satisfied at root level
            if val == _FALSE:
                continue  # falsified at root: drop the literal
            seen.add(lit)
            clause.append(lit)
        if not clause:
            self._ok = False
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], None):
                self._ok = False
                return False
            if self._propagate() is not None:
                self._ok = False
                return False
            return True
        self._clauses.append(clause)
        self._attach(clause)
        return True

    def _attach(self, clause: List[int]) -> None:
        self._watches[_lit_index(-clause[0])].append(clause)
        self._watches[_lit_index(-clause[1])].append(clause)

    # ------------------------------------------------------------------
    # Assignment helpers
    # ------------------------------------------------------------------
    def _lit_value(self, lit: int) -> int:
        val = self._assign[abs(lit)]
        if val == _UNASSIGNED:
            return _UNASSIGNED
        return val if lit > 0 else -val

    def value(self, lit: int) -> Optional[bool]:
        """Model value of a literal after a satisfiable :meth:`solve` call."""
        val = self._lit_value(lit)
        if val == _UNASSIGNED:
            return None
        return val == _TRUE

    def _enqueue(self, lit: int, reason: Optional[List[int]]) -> bool:
        val = self._lit_value(lit)
        if val == _FALSE:
            return False
        if val == _TRUE:
            return True
        var = abs(lit)
        self._assign[var] = _TRUE if lit > 0 else _FALSE
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._phase[var] = lit > 0
        self._trail.append(lit)
        return True

    def _propagate(self) -> Optional[List[int]]:
        """Unit propagation; returns a conflicting clause or None.

        Hot path: literal values are computed inline from the assignment
        array rather than through :meth:`_lit_value`.
        """
        assign = self._assign
        watches = self._watches
        trail = self._trail
        while self._qhead < len(trail):
            lit = trail[self._qhead]
            self._qhead += 1
            self.stats.propagations += 1
            widx = (lit << 1) if lit > 0 else ((-lit << 1) | 1)
            watchers = watches[widx]
            kept: List[List[int]] = []
            idx = 0
            num = len(watchers)
            while idx < num:
                clause = watchers[idx]
                idx += 1
                # Normalize: the falsified watched literal goes to slot 1.
                if clause[0] == -lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                fval = assign[first] if first > 0 else -assign[-first]
                if fval == _TRUE:
                    kept.append(clause)
                    continue
                # Search for a replacement watch.
                found = False
                for k in range(2, len(clause)):
                    cand = clause[k]
                    cval = assign[cand] if cand > 0 else -assign[-cand]
                    if cval != _FALSE:
                        clause[1], clause[k] = cand, clause[1]
                        nw = (-cand << 1) if cand < 0 else ((cand << 1) | 1)
                        watches[nw].append(clause)
                        found = True
                        break
                if found:
                    continue
                kept.append(clause)
                # Clause is unit (or conflicting) on `first`.
                if not self._enqueue(first, clause):
                    kept.extend(watchers[idx:])
                    watches[widx] = kept
                    self._qhead = len(trail)
                    return clause
            watches[widx] = kept
        return None

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------
    def _analyze(self, conflict: List[int]) -> "tuple[List[int], int]":
        learnt: List[int] = [0]  # slot 0 reserved for the asserting literal
        seen = [False] * (self._num_vars + 1)
        counter = 0
        lit = 0
        reason: Sequence[int] = conflict
        trail_idx = len(self._trail) - 1
        cur_level = len(self._trail_lim)
        while True:
            for q in reason:
                if q == lit:
                    continue
                var = abs(q)
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump_var(var)
                    if self._level[var] == cur_level:
                        counter += 1
                    else:
                        learnt.append(q)
            # Pick the next trail literal to resolve on.
            while not seen[abs(self._trail[trail_idx])]:
                trail_idx -= 1
            p = self._trail[trail_idx]
            trail_idx -= 1
            var = abs(p)
            seen[var] = False
            counter -= 1
            if counter == 0:
                learnt[0] = -p
                break
            lit = p
            reason = self._reason[var] or ()
        # Backtrack level: the second-highest level in the learnt clause.
        if len(learnt) == 1:
            back_level = 0
        else:
            max_i = 1
            for i in range(2, len(learnt)):
                if self._level[abs(learnt[i])] > self._level[abs(learnt[max_i])]:
                    max_i = i
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
            back_level = self._level[abs(learnt[1])]
        return learnt, back_level

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            # Uniform rescale preserves the heap order.
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
        self._order.increased(var)

    def _decay_activity(self) -> None:
        self._var_inc /= self._var_decay

    # ------------------------------------------------------------------
    # Backtracking
    # ------------------------------------------------------------------
    def _cancel_until(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        bound = self._trail_lim[level]
        for idx in range(len(self._trail) - 1, bound - 1, -1):
            var = abs(self._trail[idx])
            self._assign[var] = _UNASSIGNED
            self._reason[var] = None
            self._order.insert(var)
        del self._trail[bound:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def _pick_branch(self) -> int:
        assign = self._assign
        order = self._order
        while len(order):
            var = order.pop()
            if assign[var] == _UNASSIGNED:
                return var if self._phase[var] else -var
        return 0

    # ------------------------------------------------------------------
    # Main search
    # ------------------------------------------------------------------
    def solve(self, assumptions: Sequence[int] = ()) -> bool:
        """Decide satisfiability under the given assumption literals.

        Returns True (SAT; query model values with :meth:`value`) or False
        (UNSAT under the assumptions; :attr:`core` then holds an
        over-approximated subset of assumptions used in the refutation).
        """
        self.stats.solve_calls += 1
        self.core = []
        if not self._ok:
            return False
        assumptions = list(assumptions)
        for lit in assumptions:
            if lit == 0 or abs(lit) > self._num_vars:
                raise ValueError(f"invalid assumption literal {lit!r}")
        self._cancel_until(0)
        if self._propagate() is not None:
            self._ok = False
            return False
        restart_num = 0
        while True:
            restart_num += 1
            status = self._search(assumptions, budget=100 * luby(restart_num))
            if status is not None:
                if status is False:
                    self._cancel_until(0)
                return status
            self.stats.restarts += 1
            self._cancel_until(0)

    def _search(self, assumptions: List[int], budget: int) -> Optional[bool]:
        """Run CDCL until SAT/UNSAT or until `budget` conflicts (restart)."""
        conflicts = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                conflicts += 1
                self.stats.conflicts += 1
                if not self._trail_lim:
                    self._ok = False
                    return False
                learnt, back_level = self._analyze(conflict)
                self._cancel_until(back_level)
                if len(learnt) == 1:
                    self._cancel_until(0)
                    if not self._enqueue(learnt[0], None):
                        self._ok = False
                        return False
                    if self._propagate() is not None:
                        self._ok = False
                        return False
                else:
                    self._learned.append(learnt)
                    self.stats.learned_clauses += 1
                    self._attach(learnt)
                    self._enqueue(learnt[0], learnt)
                self._decay_activity()
                if conflicts >= budget:
                    return None  # signal a restart
            else:
                # Establish pending assumptions, one decision level each.
                if len(self._trail_lim) < len(assumptions):
                    lit = assumptions[len(self._trail_lim)]
                    val = self._lit_value(lit)
                    if val == _FALSE:
                        # Implied false by root facts + earlier assumptions:
                        # extract a proper core from the implication graph.
                        self.core = self._analyze_final(lit, assumptions)
                        return False
                    # Dummy level when already true keeps positions aligned.
                    self._trail_lim.append(len(self._trail))
                    if val == _UNASSIGNED:
                        self.stats.decisions += 1
                        self._enqueue(lit, None)
                    continue
                lit = self._pick_branch()
                if lit == 0:
                    return True  # full assignment: SAT
                self.stats.decisions += 1
                self._trail_lim.append(len(self._trail))
                self._enqueue(lit, None)

    def _analyze_final(self, failed_lit: int, assumptions: Sequence[int]) -> List[int]:
        """Walk the implication graph from a failed assumption literal back
        to the assumption decisions it depends on (MiniSat's analyzeFinal).

        A small core is what makes IC3 clause generalization effective.
        """
        assumption_set = set(assumptions)
        core = [failed_lit]
        seen = {abs(failed_lit)}
        stack = [abs(failed_lit)]
        while stack:
            var = stack.pop()
            if self._level[var] == 0:
                continue
            reason = self._reason[var]
            if reason is None:
                lit = var if self._assign[var] == _TRUE else -var
                if lit in assumption_set and lit != failed_lit:
                    core.append(lit)
                continue
            for lit in reason:
                other = abs(lit)
                if other != var and other not in seen:
                    seen.add(other)
                    stack.append(other)
        return core

    # ------------------------------------------------------------------
    def model(self) -> List[int]:
        """Return the satisfying assignment as a list of signed literals."""
        out = []
        for var in range(1, self._num_vars + 1):
            if self._assign[var] == _TRUE:
                out.append(var)
            elif self._assign[var] == _FALSE:
                out.append(-var)
        return out
