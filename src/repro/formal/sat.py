"""A CDCL SAT solver in pure Python.

This is the solver backing the :mod:`repro.formal` model checker.  The paper's
AutoSVA flow hands the generated formal testbench to JasperGold or SymbiYosys;
both are SAT-based model checkers at their core.  Since neither is available in
this environment, we implement the solver layer from scratch: a
conflict-driven clause-learning (CDCL) solver with two-watched-literal
propagation, VSIDS-style activity ordering, phase saving, Luby restarts,
first-UIP clause learning and LBD-scored learned-clause reduction.

The clause database is a flat **int arena** rather than a list of Python
lists: every clause lives at an offset in one large ``list`` of ints
(``[size, lbd, lit0, lit1, ...]``), watch lists hold offsets, and the reason
of an implied variable is an offset.  In CPython this matters a great deal —
the propagate inner loop indexes two flat lists instead of chasing object
references and bound-method lookups, which is where a pure-Python CDCL
spends most of its time on unrolled circuits (measured ~65% of the whole
model checker before this layout).

The API is deliberately small and incremental-friendly:

>>> s = Solver()
>>> a, b = s.new_var(), s.new_var()
>>> s.add_clause([a, b])
True
>>> s.add_clause([-a, b])
True
>>> s.solve()
True
>>> s.value(b)
True

Literals are non-zero Python ints: ``+v`` is the positive literal of variable
``v`` and ``-v`` its negation, like the DIMACS convention.  ``solve`` accepts
*assumptions*, which is what makes bounded model checking and k-induction
queries cheap to re-issue at increasing depths — and what lets the batched
BMC sweep decide many properties on one solver.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Sequence

__all__ = ["Solver", "SolverStats", "luby"]

# Truth constants used in the internal assignment array.
_UNASSIGNED = 0
_TRUE = 1
_FALSE = -1

#: Learned clauses with an LBD at or below this are "glue" and never deleted.
_GLUE_LBD = 3


def _lit_index(lit: int) -> int:
    """Map a signed literal to a dense array index (2v for +v, 2v+1 for -v)."""
    return (lit << 1) if lit > 0 else ((-lit << 1) | 1)


def luby(i: int) -> int:
    """The Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...

    ``i`` is 1-based.  Used to scale the conflict budget between restarts.
    """
    x = i - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) >> 1
        seq -= 1
        x = x % size
    return 1 << seq


class SolverStats:
    """Counters exposed for benchmarking and the engine-ablation experiment.

    All counters except ``wall_time_s`` are deterministic for a given call
    sequence, which is what lets the hot-path benchmark gate regressions on
    them across machines.
    """

    __slots__ = ("conflicts", "decisions", "propagations", "restarts",
                 "learned_clauses", "solve_calls", "clauses_deleted",
                 "reductions", "wall_time_s")

    def __init__(self) -> None:
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        self.learned_clauses = 0
        self.solve_calls = 0
        self.clauses_deleted = 0
        self.reductions = 0
        self.wall_time_s = 0.0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"SolverStats({inner})"


class _VarHeap:
    """Binary max-heap of variables ordered by VSIDS activity.

    MiniSat's order heap: O(log n) insert/increase-key/pop instead of the
    O(n) scan that otherwise dominates solve time on unrolled circuits.
    (A static activity-sorted array with a scan cursor was tried here —
    cheaper per operation, but the stale decision order cost far more in
    extra conflicts/frames on the conflict-heavy PDR rungs than the heap
    costs in bookkeeping; with assumption-prefix trail reuse the heap
    churn per query is small anyway.)
    """

    __slots__ = ("_heap", "_pos", "_activity")

    def __init__(self, activity: List[float]) -> None:
        self._heap: List[int] = []
        self._pos: List[int] = []
        self._activity = activity

    def grow(self) -> None:
        self._pos.append(-1)

    def __contains__(self, var: int) -> bool:
        return self._pos[var - 1] >= 0

    def insert(self, var: int) -> None:
        if self._pos[var - 1] >= 0:
            return
        self._heap.append(var)
        self._pos[var - 1] = len(self._heap) - 1
        self._up(len(self._heap) - 1)

    def increased(self, var: int) -> None:
        idx = self._pos[var - 1]
        if idx >= 0:
            self._up(idx)

    def pop(self) -> int:
        heap = self._heap
        top = heap[0]
        last = heap.pop()
        self._pos[top - 1] = -1
        if heap:
            heap[0] = last
            self._pos[last - 1] = 0
            self._down(0)
        return top

    def __len__(self) -> int:
        return len(self._heap)

    def _up(self, idx: int) -> None:
        heap, pos, act = self._heap, self._pos, self._activity
        var = heap[idx]
        key = act[var]
        while idx > 0:
            parent = (idx - 1) >> 1
            pvar = heap[parent]
            if act[pvar] >= key:
                break
            heap[idx] = pvar
            pos[pvar - 1] = idx
            idx = parent
        heap[idx] = var
        pos[var - 1] = idx

    def _down(self, idx: int) -> None:
        heap, pos, act = self._heap, self._pos, self._activity
        size = len(heap)
        var = heap[idx]
        key = act[var]
        while True:
            left = 2 * idx + 1
            if left >= size:
                break
            right = left + 1
            child = left
            if right < size and act[heap[right]] > act[heap[left]]:
                child = right
            cvar = heap[child]
            if key >= act[cvar]:
                break
            heap[idx] = cvar
            pos[cvar - 1] = idx
            idx = child
        heap[idx] = var
        pos[var - 1] = idx


class Solver:
    """Incremental CDCL SAT solver over a flat clause arena.

    Variables are created with :meth:`new_var` and clauses added with
    :meth:`add_clause`.  :meth:`solve` may be called repeatedly with
    different assumption sets; learned clauses persist across calls (and
    are periodically reduced by LBD so multi-thousand-query BMC sweeps do
    not drown in kept clauses).

    Arena layout per clause, at offset ``c``::

        _arena[c]     size (0 marks a deleted clause)
        _arena[c+1]   LBD at learn time (0 for problem clauses)
        _arena[c+2:]  the literals; slots 0 and 1 are the watched pair

    Watch lists store arena offsets; deleted clauses are dropped lazily the
    next time a watch list containing them is traversed.
    """

    def __init__(self) -> None:
        self._num_vars = 0
        # Assignment state, indexed by variable (1-based).
        self._assign: List[int] = [_UNASSIGNED]
        self._level: List[int] = [0]
        self._reason: List[int] = [0]      # arena offset; 0 = no reason
        self._phase: List[bool] = [False]
        # VSIDS activity, indexed by variable.
        self._activity: List[float] = [0.0]
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._order = _VarHeap(self._activity)
        # Watched literals: lit-index -> list of arena offsets.
        self._watches: List[List[int]] = [[], []]
        # The clause arena.  Offsets 0/1 are a sentinel so that offset 0
        # can mean "no clause" in _reason.
        self._arena: List[int] = [0, 0]
        self._clauses: List[int] = []      # problem clause offsets
        self._learned: List[int] = []      # live learned clause offsets
        self._max_learnts = 4000
        # Trail of assigned literals plus per-level markers.
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        # Assumption literal established at each leading decision level —
        # the bookkeeping behind assumption-prefix trail reuse in solve().
        self._assump_levels: List[int] = []
        self._qhead = 0
        self._ok = True
        self.core: List[int] = []
        self.stats = SolverStats()

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        """Allocate a fresh variable and return its positive literal."""
        self._num_vars += 1
        self._assign.append(_UNASSIGNED)
        self._level.append(0)
        self._reason.append(0)
        self._phase.append(False)
        self._activity.append(0.0)
        self._watches.append([])  # positive literal watch list
        self._watches.append([])  # negative literal watch list
        self._order.grow()
        self._order.insert(self._num_vars)
        return self._num_vars

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        return len(self._clauses)

    @property
    def num_learned(self) -> int:
        return len(self._learned)

    def _alloc(self, lits: Sequence[int], lbd: int) -> int:
        """Append a clause to the arena; returns its offset."""
        arena = self._arena
        offset = len(arena)
        arena.append(len(lits))
        arena.append(lbd)
        arena.extend(lits)
        return offset

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause; returns False if the formula became trivially UNSAT.

        The clause is simplified against root-level assignments.  Duplicate
        literals are removed; tautologies are silently satisfied.
        """
        if not self._ok:
            return False
        self._cancel_until(0)
        assign = self._assign
        seen = set()
        clause: List[int] = []
        for lit in lits:
            if lit == 0 or abs(lit) > self._num_vars:
                raise ValueError(f"invalid literal {lit!r}")
            if -lit in seen:
                return True  # tautology: trivially satisfied
            if lit in seen:
                continue
            val = assign[lit] if lit > 0 else -assign[-lit]
            if val == _TRUE:
                return True  # already satisfied at root level
            if val == _FALSE:
                continue  # falsified at root: drop the literal
            seen.add(lit)
            clause.append(lit)
        if not clause:
            self._ok = False
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], 0):
                self._ok = False
                return False
            if self._propagate():
                self._ok = False
                return False
            return True
        offset = self._alloc(clause, 0)
        self._clauses.append(offset)
        self._attach(offset)
        return True

    def _attach(self, offset: int) -> None:
        arena = self._arena
        a, b = arena[offset + 2], arena[offset + 3]
        # Watch entries are (offset, blocker) pairs, flattened: the blocker
        # is the clause's other watched literal, checked before the arena
        # is touched at all (MiniSat's blocker trick).
        self._watches[_lit_index(-a)].extend((offset, b))
        self._watches[_lit_index(-b)].extend((offset, a))

    # ------------------------------------------------------------------
    # Assignment helpers
    # ------------------------------------------------------------------
    def _lit_value(self, lit: int) -> int:
        val = self._assign[abs(lit)]
        if val == _UNASSIGNED:
            return _UNASSIGNED
        return val if lit > 0 else -val

    def value(self, lit: int) -> Optional[bool]:
        """Model value of a literal after a satisfiable :meth:`solve` call."""
        val = self._lit_value(lit)
        if val == _UNASSIGNED:
            return None
        return val == _TRUE

    def _enqueue(self, lit: int, reason: int) -> bool:
        val = self._lit_value(lit)
        if val == _FALSE:
            return False
        if val == _TRUE:
            return True
        var = lit if lit > 0 else -lit
        self._assign[var] = _TRUE if lit > 0 else _FALSE
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._phase[var] = lit > 0
        self._trail.append(lit)
        return True

    def _propagate(self) -> int:
        """Unit propagation; returns a conflicting clause offset or 0.

        This is *the* hot loop of the model checker.  Everything it touches
        is a flat list of ints bound to a local name: clause literals come
        out of the arena, implied assignments are written inline (no
        :meth:`_enqueue` call), and watch lists are compacted in place.
        Deleted clauses (``arena[c] == 0``) encountered here are dropped
        from the watch list as a side effect.
        """
        arena = self._arena
        assign = self._assign
        level = self._level
        reason = self._reason
        phase = self._phase
        watches = self._watches
        trail = self._trail
        qhead = self._qhead
        ntrail = len(trail)
        cur_level = len(self._trail_lim)
        propagations = 0
        while qhead < ntrail:
            lit = trail[qhead]
            qhead += 1
            propagations += 1
            widx = (lit << 1) if lit > 0 else ((-lit << 1) | 1)
            watchers = watches[widx]
            i = 0
            j = 0
            num = len(watchers)
            while i < num:
                # Blocker check: a true blocker means the clause is
                # satisfied — skip it without touching the arena at all.
                # This is the common case on circuit instances.
                blocker = watchers[i + 1]
                if (assign[blocker] if blocker > 0
                        else -assign[-blocker]) == 1:
                    watchers[j] = watchers[i]
                    watchers[j + 1] = blocker
                    j += 2
                    i += 2
                    continue
                c = watchers[i]
                i += 2
                size = arena[c]
                if size == 0:
                    continue  # deleted: drop from this watch list
                # Normalize: the falsified watched literal goes to slot 1.
                first = arena[c + 2]
                if first == -lit:
                    first = arena[c + 3]
                    arena[c + 2] = first
                    arena[c + 3] = -lit
                fval = assign[first] if first > 0 else -assign[-first]
                if fval == 1:
                    watchers[j] = c
                    watchers[j + 1] = first
                    j += 2
                    continue
                if size > 2:
                    # Search for a replacement watch.
                    k = c + 4
                    end = c + 2 + size
                    found = False
                    while k < end:
                        cand = arena[k]
                        if (assign[cand] if cand > 0
                                else -assign[-cand]) != -1:
                            arena[c + 3] = cand
                            arena[k] = -lit
                            watches[(-cand << 1) if cand < 0
                                    else ((cand << 1) | 1)].extend((c, first))
                            found = True
                            break
                        k += 1
                    if found:
                        continue
                # Binary clauses skip the search: they are unit (or
                # conflicting) on `first` as soon as their other watch
                # falsifies — two thirds of Tseitin clauses take this
                # short route.
                watchers[j] = c
                watchers[j + 1] = first
                j += 2
                if fval == -1:
                    # Conflict: keep the untraversed tail, stop.
                    while i < num:
                        watchers[j] = watchers[i]
                        j += 1
                        i += 1
                    del watchers[j:]
                    self._qhead = len(trail)
                    self.stats.propagations += propagations
                    return c
                # Clause is unit on `first`: assign inline.
                var = first if first > 0 else -first
                assign[var] = 1 if first > 0 else -1
                level[var] = cur_level
                reason[var] = c
                phase[var] = first > 0
                trail.append(first)
                ntrail += 1
            del watchers[j:]
        self._qhead = qhead
        self.stats.propagations += propagations
        return 0

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------
    def _analyze(self, conflict: int) -> "tuple[List[int], int, int]":
        """First-UIP learning; returns (learnt, backtrack level, LBD)."""
        arena = self._arena
        levels = self._level
        trail = self._trail
        reasons = self._reason
        learnt: List[int] = [0]  # slot 0 reserved for the asserting literal
        seen = bytearray(self._num_vars + 1)
        counter = 0
        lit = 0
        cur_level = len(self._trail_lim)
        trail_idx = len(trail) - 1
        # Current reason clause as an arena range.
        begin = conflict + 2
        end = begin + arena[conflict]
        while True:
            for idx in range(begin, end):
                q = arena[idx]
                if q == lit:
                    continue
                var = q if q > 0 else -q
                if not seen[var] and levels[var] > 0:
                    seen[var] = 1
                    self._bump_var(var)
                    if levels[var] == cur_level:
                        counter += 1
                    else:
                        learnt.append(q)
            # Pick the next trail literal to resolve on.
            while True:
                p = trail[trail_idx]
                if seen[p if p > 0 else -p]:
                    break
                trail_idx -= 1
            trail_idx -= 1
            var = p if p > 0 else -p
            seen[var] = 0
            counter -= 1
            if counter == 0:
                learnt[0] = -p
                break
            lit = p
            roff = reasons[var]
            if roff:
                begin = roff + 2
                end = begin + arena[roff]
            else:
                begin = end = 0
        # Backtrack level: the second-highest level in the learnt clause.
        if len(learnt) == 1:
            back_level = 0
        else:
            max_i = 1
            for i in range(2, len(learnt)):
                if levels[abs(learnt[i])] > levels[abs(learnt[max_i])]:
                    max_i = i
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
            back_level = levels[abs(learnt[1])]
        lbd = len({levels[abs(q)] for q in learnt})
        return learnt, back_level, lbd

    def _bump_var(self, var: int) -> None:
        activity = self._activity
        activity[var] += self._var_inc
        if activity[var] > 1e100:
            # Uniform rescale preserves the heap order.
            for v in range(1, self._num_vars + 1):
                activity[v] *= 1e-100
            self._var_inc *= 1e-100
        self._order.increased(var)

    def _decay_activity(self) -> None:
        self._var_inc /= self._var_decay

    # ------------------------------------------------------------------
    # Learned-clause reduction
    # ------------------------------------------------------------------
    def _reduce_db(self) -> None:
        """Delete the worst half of the deletable learned clauses.

        "Glue" clauses (LBD <= ``_GLUE_LBD``) and clauses currently acting
        as a reason are kept; the rest are ranked by (LBD, size) and the
        worse half is marked dead in the arena.  Watch lists shed dead
        offsets lazily during propagation, so deletion is O(1) per clause
        here.
        """
        arena = self._arena
        reasons = self._reason
        keep: List[int] = []
        deletable: List[int] = []
        for c in self._learned:
            if arena[c] == 0:
                continue
            first = arena[c + 2]
            if arena[c + 1] <= _GLUE_LBD or \
                    reasons[first if first > 0 else -first] == c:
                keep.append(c)
            else:
                deletable.append(c)
        deletable.sort(key=lambda c: (arena[c + 1], arena[c]))
        half = len(deletable) // 2
        for c in deletable[half:]:
            arena[c] = 0
            self.stats.clauses_deleted += 1
        self._learned = keep + deletable[:half]
        self._max_learnts = int(self._max_learnts * 1.2)
        self.stats.reductions += 1

    # ------------------------------------------------------------------
    # Backtracking
    # ------------------------------------------------------------------
    def _cancel_until(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        bound = self._trail_lim[level]
        assign = self._assign
        reasons = self._reason
        order = self._order
        trail = self._trail
        for idx in range(len(trail) - 1, bound - 1, -1):
            var = abs(trail[idx])
            assign[var] = _UNASSIGNED
            reasons[var] = 0
            order.insert(var)
        del trail[bound:]
        del self._trail_lim[level:]
        if len(self._assump_levels) > level:
            del self._assump_levels[level:]
        self._qhead = len(trail)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def _pick_branch(self) -> int:
        assign = self._assign
        order = self._order
        while len(order):
            var = order.pop()
            if assign[var] == _UNASSIGNED:
                return var if self._phase[var] else -var
        return 0

    # ------------------------------------------------------------------
    # Main search
    # ------------------------------------------------------------------
    def solve(self, assumptions: Sequence[int] = ()) -> bool:
        """Decide satisfiability under the given assumption literals.

        Returns True (SAT; query model values with :meth:`value`) or False
        (UNSAT under the assumptions; :attr:`core` then holds an
        over-approximated subset of assumptions used in the refutation).

        Consecutive calls reuse the trail of the longest shared assumption
        prefix instead of backtracking to the root: incremental BMC/IC3
        query streams repeat most of their assumption list, so keeping
        those decision levels (and everything they imply) skips the bulk
        of each query's re-propagation.  Sound because every clause is
        re-examined whenever one of its watched literals is assigned —
        implications a kept level "missed" (from clauses learned after it
        was established) surface as ordinary visits or conflicts as soon
        as search touches them.
        """
        begin = time.perf_counter()
        self.stats.solve_calls += 1
        self.core = []
        if not self._ok:
            self.stats.wall_time_s += time.perf_counter() - begin
            return False
        assumptions = list(assumptions)
        for lit in assumptions:
            if lit == 0 or abs(lit) > self._num_vars:
                raise ValueError(f"invalid assumption literal {lit!r}")
        try:
            # Assumption-prefix trail reuse.
            keep = 0
            established = self._assump_levels
            for lit in assumptions:
                if keep < len(established) and established[keep] == lit:
                    keep += 1
                else:
                    break
            self._cancel_until(keep)
            restart_num = 0
            while True:
                restart_num += 1
                status = self._search(assumptions,
                                      budget=100 * luby(restart_num))
                if status is not None:
                    return status
                self.stats.restarts += 1
                self._cancel_until(0)
        finally:
            self.stats.wall_time_s += time.perf_counter() - begin

    def _search(self, assumptions: List[int], budget: int) -> Optional[bool]:
        """Run CDCL until SAT/UNSAT or until `budget` conflicts (restart)."""
        conflicts = 0
        stats = self.stats
        while True:
            conflict = self._propagate()
            if conflict:
                conflicts += 1
                stats.conflicts += 1
                if not self._trail_lim:
                    self._ok = False
                    return False
                # Batched assumption establishment can surface a conflict
                # whose literals all sit below the current decision level
                # (the falsifying pair was established without propagating
                # in between).  First-UIP analysis needs at least one
                # literal at the analysis level, so drop to the conflict's
                # own (maximum-literal) level first.
                arena = self._arena
                levels = self._level
                conflict_level = 0
                for idx in range(conflict + 2,
                                 conflict + 2 + arena[conflict]):
                    lit_level = levels[abs(arena[idx])]
                    if lit_level > conflict_level:
                        conflict_level = lit_level
                if conflict_level == 0:
                    self._ok = False
                    return False
                if conflict_level < len(self._trail_lim):
                    self._cancel_until(conflict_level)
                learnt, back_level, lbd = self._analyze(conflict)
                self._cancel_until(back_level)
                if len(learnt) == 1:
                    self._cancel_until(0)
                    if not self._enqueue(learnt[0], 0):
                        self._ok = False
                        return False
                    if self._propagate():
                        self._ok = False
                        return False
                else:
                    offset = self._alloc(learnt, lbd)
                    self._learned.append(offset)
                    stats.learned_clauses += 1
                    self._attach(offset)
                    self._enqueue(learnt[0], offset)
                    if len(self._learned) >= self._max_learnts:
                        self._reduce_db()
                self._decay_activity()
                if conflicts >= budget:
                    return None  # signal a restart
            else:
                # Establish every pending assumption, one decision level
                # each, then fall back to the loop top for ONE propagation
                # pass over the whole batch.  Propagating per assumption
                # (the textbook shape) costs a full _propagate call — ten
                # local rebinds — per literal, which dominated IC3 query
                # streams with hundreds of act assumptions each.  An
                # assumption a propagation pass would have falsified is
                # instead established as a decision and surfaces as an
                # ordinary conflict; the re-establishment after the
                # backjump then sees it false and extracts the core.
                if len(self._trail_lim) < len(assumptions):
                    while len(self._trail_lim) < len(assumptions):
                        lit = assumptions[len(self._trail_lim)]
                        val = self._lit_value(lit)
                        if val == _FALSE:
                            # Implied false by root facts + earlier
                            # assumptions: extract a proper core from the
                            # implication graph.
                            self.core = self._analyze_final(lit,
                                                            assumptions)
                            return False
                        # Dummy level when already true keeps positions
                        # aligned.
                        self._trail_lim.append(len(self._trail))
                        self._assump_levels.append(lit)
                        if val == _UNASSIGNED:
                            stats.decisions += 1
                            self._enqueue(lit, 0)
                    continue
                lit = self._pick_branch()
                if lit == 0:
                    return True  # full assignment: SAT
                stats.decisions += 1
                self._trail_lim.append(len(self._trail))
                self._enqueue(lit, 0)

    def _analyze_final(self, failed_lit: int,
                       assumptions: Sequence[int]) -> List[int]:
        """Walk the implication graph from a failed assumption literal back
        to the assumption decisions it depends on (MiniSat's analyzeFinal).

        A small core is what makes IC3 clause generalization effective.
        """
        arena = self._arena
        assumption_set = set(assumptions)
        core = [failed_lit]
        seen = {abs(failed_lit)}
        stack = [abs(failed_lit)]
        while stack:
            var = stack.pop()
            if self._level[var] == 0:
                continue
            roff = self._reason[var]
            if not roff:
                lit = var if self._assign[var] == _TRUE else -var
                if lit in assumption_set and lit != failed_lit:
                    core.append(lit)
                continue
            for idx in range(roff + 2, roff + 2 + arena[roff]):
                other = abs(arena[idx])
                if other != var and other not in seen:
                    seen.add(other)
                    stack.append(other)
        return core

    # ------------------------------------------------------------------
    def model(self) -> List[int]:
        """Return the satisfying assignment as a list of signed literals."""
        out = []
        for var in range(1, self._num_vars + 1):
            if self._assign[var] == _TRUE:
                out.append(var)
            elif self._assign[var] == _FALSE:
                out.append(-var)
        return out
