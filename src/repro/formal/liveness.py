"""Liveness checking via the liveness-to-safety (L2S) transformation.

AutoSVA's flagship properties are liveness: *every request eventually gets a
response* (``s_eventually`` in the generated SVA).  A liveness assertion on a
finite-state system is violated exactly by a *lasso*: a reachable loop in
which the justice literal never holds while every fairness constraint holds
at least once.  The classic Biere/Artho/Schuppan construction reduces this to
a safety/reachability problem on an augmented system:

* a one-shot oracle input guesses the loop start and snapshots all latches
  into shadow registers;
* per-fairness "seen" latches record that each fairness fired inside the
  suspected loop;
* a per-property "justice seen" latch records whether the asserted justice
  literal fired inside the loop;
* the *bad* state for a property is: snapshot taken, state equals snapshot,
  all fairness seen, justice never seen.

Reaching a bad state exhibits a genuine infinite counterexample (stem +
loop); proving it unreachable (k-induction) proves the liveness property.
All liveness assertions of a system share the oracle and shadow registers —
only the small justice monitor is per-property — mirroring how production
tools amortize the transformation across a property set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .aig import TRUE
from .coi import coi_latches
from .transition import Latch, TransitionSystem

__all__ = ["LivenessCompilation", "compile_liveness", "find_loop_start"]

_L2S_PREFIX = "__l2s_"
SAVED_OBSERVABLE = "__l2s_saved"


@dataclass
class LivenessCompilation:
    """L2S augmentation result for a whole transition system.

    ``bad_lits`` maps each liveness-assertion name to its reachability
    target.  The ``SAVED_OBSERVABLE`` observable is 1 from the cycle after
    the loop snapshot, letting the trace printer mark the loop start.
    """

    system: TransitionSystem
    bad_lits: Dict[str, int] = field(default_factory=dict)
    saved_node: int = 0


def compile_liveness(base: TransitionSystem) -> LivenessCompilation:
    """Extend ``base`` in place with the L2S monitor for all its liveness
    assertions and return the per-property bad literals.

    Callers give each check its own system instance (the RTL synthesizer is
    deterministic and cheap to re-run), so in-place extension is safe.
    """
    g = base.aig
    save_input = base.add_input(f"{_L2S_PREFIX}save")
    saved = base.add_latch(f"{_L2S_PREFIX}saved", init=False)
    base.set_next(saved, g.OR(saved.node, save_input))
    snap_now = g.AND(save_input, g.NOT(saved.node))

    # Shadow registers snapshot the latches that can influence the justice
    # literals, fairness constraints or invariant constraints — the exact
    # cone of influence.  Latches outside it cannot change what happens in
    # the loop, so omitting them from the closure check is lossless and
    # keeps the augmented state small.
    seeds = [live.lit for live in base.liveness]
    original_latches: List[Latch] = [
        lat for lat in coi_latches(base, seeds, include_constraints=True,
                                   include_fairness=True)
        if not lat.name.startswith(_L2S_PREFIX)]
    match_bits: List[int] = []
    for lat in original_latches:
        shadow = base.add_latch(f"{_L2S_PREFIX}shadow__{lat.name}", init=None)
        base.set_next(shadow, g.MUX(snap_now, lat.node, shadow.node))
        match_bits.append(g.XNOR(lat.node, shadow.node))
    state_matches = g.and_many(match_bits) if match_bits else TRUE

    # "Inside the suspected loop" is true from the snapshot cycle onward.
    in_loop = g.OR(saved.node, snap_now)

    # Each fairness constraint must fire at least once *inside the loop*:
    # the "seen" latch accumulates cycles t..u-1 for a loop snapshotted at t
    # and closed at u.  The closure cycle u itself is NOT part of the
    # repeated input sequence, so its combinational fairness/justice values
    # must not be counted — doing so admits spurious lassos (the closing
    # cycle could use inputs that never recur).
    fair_ok_bits: List[int] = []
    for idx, fair in enumerate(base.fairness):
        seen = base.add_latch(f"{_L2S_PREFIX}fairseen{idx}", init=False)
        base.set_next(seen, g.AND(in_loop, g.OR(seen.node, fair.lit)))
        fair_ok_bits.append(seen.node)
    all_fair = g.and_many(fair_ok_bits) if fair_ok_bits else TRUE

    close_base = g.and_many([saved.node, state_matches, all_fair])

    compilation = LivenessCompilation(system=base, saved_node=saved.node)
    for idx, live in enumerate(base.liveness):
        jseen = base.add_latch(f"{_L2S_PREFIX}justice_seen{idx}", init=False)
        base.set_next(jseen, g.AND(in_loop, g.OR(jseen.node, live.lit)))
        compilation.bad_lits[live.name] = g.AND(close_base,
                                                g.NOT(jseen.node))
    base.add_observable(SAVED_OBSERVABLE, [saved.node])
    return compilation


def compile_kliveness(base: TransitionSystem, live_name: str,
                      k: int) -> int:
    """Claessen–Sörensson k-liveness monitor for one justice assertion.

    Returns a *bad* literal that is reachable only if the justice literal
    ``j`` of the named liveness property can stay false for ``k`` complete
    fairness rounds (a round = every fairness constraint fired at least once
    since the last round/justice occurrence).

    Soundness (proofs only): on any fair path where ``j`` eventually never
    holds again, rounds keep completing and the saturating counter reaches
    ``k`` — so *bad unreachable* implies the liveness property.  A reachable
    bad is NOT a counterexample (``j`` might recur later); the engine keeps
    hunting lassos with BMC on the L2S encoding for that.

    Compared to L2S the monitor adds only ``ceil(log2(k+1))`` counter bits
    plus one latch per fairness constraint — no shadow state — which is why
    modern tools prove liveness this way.
    """
    g = base.aig
    live = next(p for p in base.liveness if p.name == live_name)
    justice = live.lit

    # Fairness bookkeeping: seen-latches accumulate between round boundaries.
    fair_seen_nodes: List[int] = []
    fair_latches = []
    for idx, fair in enumerate(base.fairness):
        seen = base.add_latch(f"__kl_fairseen{idx}", init=False)
        fair_latches.append((seen, fair.lit))
        fair_seen_nodes.append(seen.node)
    all_fair = g.and_many(fair_seen_nodes) if fair_seen_nodes else TRUE

    tick = g.AND(g.NOT(justice), all_fair)
    width = max(1, (k + 1).bit_length())
    cnt = base.add_latch_vec("__kl_cnt", width, init=0)
    cnt_bits = [lat.node for lat in cnt]
    at_k = g.eq_vec(cnt_bits, g.const_vec(k, width))
    inc = g.add_vec(cnt_bits, g.const_vec(1, width))
    # Saturate at k; reset whenever justice fires.
    held = g.mux_vec(g.AND(tick, g.NOT(at_k)), inc, cnt_bits)
    nxt = g.mux_vec(justice, g.const_vec(0, width), held)
    for lat, bit in zip(cnt, nxt):
        base.set_next(lat, bit)
    # Fairness latches reset on a round boundary or when justice fires.
    reset_seen = g.OR(tick, justice)
    for seen, fair_lit in fair_latches:
        base.set_next(seen, g.AND(g.NOT(reset_seen),
                                  g.OR(seen.node, fair_lit)))
    return at_k


def find_loop_start(trace_saved_values: List[int]) -> Optional[int]:
    """Locate the loop start in a lasso trace.

    The ``saved`` latch is 1 from the cycle *after* the snapshot, so the loop
    starts at the first 1-cycle minus one (the snapshot cycle itself).
    """
    for cycle, value in enumerate(trace_saved_values):
        if value:
            return max(0, cycle - 1)
    return None
