"""Cone-of-influence (COI) reduction.

Formal tools prune every state bit that cannot affect a property before
solving ("AutoSVA reduces the state-explosion problem because it deliberately
focuses on control logic and FV tools can be instructed to automatically
ignore datapaths", Section III).  Two consumers:

* :mod:`repro.formal.pdr` restricts its cubes/clauses to COI latches;
* :mod:`repro.formal.liveness` snapshots only COI latches in the L2S
  loop-closure check.

Both are exact reductions: the closure includes the support of all invariant
constraints (and fairness, for liveness), so excluded latches can influence
neither the property nor the feasibility of paths.
"""

from __future__ import annotations

from typing import Iterable, List, Set

from .aig import FALSE
from .transition import Latch, TransitionSystem

__all__ = ["latch_support", "coi_latches"]


def latch_support(system: TransitionSystem,
                  lits: Iterable[int]) -> Set[int]:
    """Latch nodes appearing in the combinational cones of ``lits``."""
    aig = system.aig
    seen: Set[int] = set()
    support: Set[int] = set()
    stack = [lit & ~1 for lit in lits]
    while stack:
        node = stack.pop()
        if node == FALSE or node in seen:
            continue
        seen.add(node)
        if aig.is_and(node):
            lhs, rhs = aig.fanins(node)
            stack.append(lhs & ~1)
            stack.append(rhs & ~1)
        elif system.is_latch_node(node):
            support.add(node)
    return support


def coi_latches(system: TransitionSystem,
                seed_lits: Iterable[int],
                include_constraints: bool = True,
                include_fairness: bool = False) -> List[Latch]:
    """Transitive closure of latch support starting from ``seed_lits``.

    The closure follows next-state functions until a fixpoint, optionally
    seeding with constraint and fairness literals (both influence which paths
    are legal, so excluding their support would be unsound for CEX search).
    Returns latches in the system's declaration order.
    """
    seeds = list(seed_lits)
    if include_constraints:
        seeds.extend(prop.lit for prop in system.constraints)
    if include_fairness:
        seeds.extend(prop.lit for prop in system.fairness)
    frontier = latch_support(system, seeds)
    closed: Set[int] = set()
    while frontier:
        node = frontier.pop()
        if node in closed:
            continue
        closed.add(node)
        latch = system.latch_of(node)
        for dep in latch_support(system, [latch.next_lit]):
            if dep not in closed:
                frontier.add(dep)
    return [latch for latch in system.latches if latch.node in closed]
