"""The proof engine: per-property orchestration of BMC, k-induction and L2S.

This module plays the role JasperGold/SymbiYosys play in the paper's flow
(Fig. 4): it takes a compiled formal testbench (a
:class:`~repro.formal.transition.TransitionSystem` carrying asserts, assumes,
covers, liveness and fairness) and returns, per property, one of:

* ``proven``      — invariant proof closed by k-induction (or L2S+induction),
* ``cex``         — a counterexample trace (safety violation or liveness
  lasso),
* ``covered``     — a witness trace reaching a cover target,
* ``unreachable`` — a cover target proven unreachable,
* ``unknown``     — bound exhausted without a verdict.

The engine mirrors the paper's usage model: run everything, report a proof
rate, and hand short CEX traces to the designer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .bmc import bmc_cover, bmc_safety
from .cnf import Unroller
from .kinduction import prove_safety
from .liveness import (SAVED_OBSERVABLE, compile_kliveness, compile_liveness,
                       find_loop_start)
from .pdr import pdr_prove
from .trace import Trace
from .transition import TransitionSystem

__all__ = ["PropertyResult", "CheckReport", "FormalEngine", "EngineConfig"]

PROVEN = "proven"
CEX = "cex"
COVERED = "covered"
UNREACHABLE = "unreachable"
UNKNOWN = "unknown"


@dataclass
class EngineConfig:
    """Bounds and strategy knobs for the proof engine.

    ``max_bound`` limits BMC bug hunting; ``proof_engine`` selects the proof
    algorithm — ``"pdr"`` (IC3, the default and what production tools use)
    or ``"kind"`` (k-induction, kept for the ablation study E12);
    ``max_frames`` bounds PDR frames, ``max_k`` bounds induction depth;
    ``simple_path`` toggles the path-uniqueness strengthening of k-induction;
    ``liveness_strategy`` selects L2S+proof (``"l2s"``) or pure bounded lasso
    search (``"bounded"``, bug-hunting only).
    """

    max_bound: int = 20
    max_k: int = 20
    simple_path: bool = True
    liveness_strategy: str = "l2s"
    proof_engine: str = "pdr"
    max_frames: int = 80
    kliveness_rounds: tuple = (1, 2, 4)


@dataclass
class PropertyResult:
    name: str
    kind: str            # assert | cover | live
    status: str          # proven | cex | covered | unreachable | unknown
    depth: int = 0
    trace: Optional[Trace] = None
    time_s: float = 0.0

    @property
    def ok(self) -> bool:
        """True when the property's obligation is met (proof or coverage)."""
        return self.status in (PROVEN, COVERED)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PropertyResult({self.name!r}, {self.kind}, {self.status}, "
                f"depth={self.depth}, {self.time_s:.3f}s)")


@dataclass
class CheckReport:
    """Results for one verification run over a whole testbench."""

    design: str
    results: List[PropertyResult] = field(default_factory=list)
    total_time_s: float = 0.0

    def by_name(self, name: str) -> PropertyResult:
        for result in self.results:
            if result.name == name:
                return result
        raise KeyError(name)

    @property
    def num_properties(self) -> int:
        return len(self.results)

    @property
    def num_proven(self) -> int:
        return sum(1 for r in self.results if r.status == PROVEN)

    @property
    def num_cex(self) -> int:
        return sum(1 for r in self.results if r.status == CEX)

    @property
    def proof_rate(self) -> float:
        """Fraction of assert/live properties that were proven."""
        checkable = [r for r in self.results if r.kind in ("assert", "live")]
        if not checkable:
            return 1.0
        return sum(1 for r in checkable if r.status == PROVEN) / len(checkable)

    @property
    def cex_results(self) -> List[PropertyResult]:
        return [r for r in self.results if r.status == CEX]

    def summary(self) -> str:
        lines = [f"== {self.design}: {self.num_properties} properties, "
                 f"{self.num_proven} proven, {self.num_cex} CEX, "
                 f"proof rate {self.proof_rate:.0%}, "
                 f"{self.total_time_s:.2f}s =="]
        for result in self.results:
            mark = {"proven": "PASS ", "covered": "COVER",
                    "unreachable": "UNREA", "cex": "FAIL ",
                    "unknown": "?    "}[result.status]
            depth = f" depth={result.depth}" if result.status in (CEX, COVERED) else ""
            lines.append(f"  [{mark}] {result.kind:<6} {result.name}{depth}")
        return "\n".join(lines)


class FormalEngine:
    """Runs all properties of a testbench and collates a report.

    ``system_factory`` must return a *fresh* TransitionSystem on each call;
    the engine builds separate instances for safety and liveness so the L2S
    monitor state never weakens safety induction.
    """

    def __init__(self, system_factory: Callable[[], TransitionSystem],
                 config: Optional[EngineConfig] = None) -> None:
        self._factory = system_factory
        self.config = config or EngineConfig()

    # -- public API -------------------------------------------------------
    def check_all(self) -> CheckReport:
        start = time.perf_counter()
        probe = self._factory()
        report = CheckReport(design=probe.name)
        report.results.extend(self._check_safety(probe))
        report.results.extend(self._check_covers(probe))
        if probe.liveness:
            live_system = self._factory()
            report.results.extend(self._check_liveness(live_system))
        report.total_time_s = time.perf_counter() - start
        return report

    def check_property(self, name: str) -> PropertyResult:
        """Check a single property by name (assert, cover or liveness)."""
        system = self._factory()
        for prop in system.asserts:
            if prop.name == name:
                return self._check_one_safety(system, prop,
                                              Unroller(system))
        for prop in system.covers:
            if prop.name == name:
                return self._check_one_cover(system, prop, Unroller(system))
        for prop in system.liveness:
            if prop.name == name:
                results = self._check_liveness(system, only=name)
                if results:
                    return results[0]
        raise KeyError(f"no property named {name!r}")

    # -- safety -------------------------------------------------------------
    def _check_safety(self, system: TransitionSystem) -> List[PropertyResult]:
        results = []
        shared = Unroller(system)
        for prop in system.asserts:
            results.append(self._check_one_safety(system, prop, shared))
        return results

    def _check_one_safety(self, system: TransitionSystem, prop,
                          shared: Unroller) -> PropertyResult:
        begin = time.perf_counter()
        result = self._hunt_then_prove(system, prop.lit, prop.name, "assert",
                                       shared)
        result.time_s = time.perf_counter() - begin
        return result

    def _hunt_then_prove(self, system: TransitionSystem, assert_lit: int,
                         name: str, kind: str,
                         shared: Unroller) -> PropertyResult:
        """BMC bug hunt up to max_bound, then a full proof attempt."""
        hunt = bmc_safety(system, assert_lit, self.config.max_bound,
                          property_name=name, unroller=shared)
        if hunt.failed:
            return PropertyResult(name, kind, CEX, depth=hunt.depth,
                                  trace=hunt.trace)
        if self.config.proof_engine == "kind":
            outcome = prove_safety(system, assert_lit,
                                   max_k=self.config.max_k,
                                   property_name=name,
                                   simple_path=self.config.simple_path)
            if outcome.failed:
                return PropertyResult(name, kind, CEX,
                                      depth=outcome.cex_trace.depth - 1,
                                      trace=outcome.cex_trace)
            if outcome.proven:
                return PropertyResult(name, kind, PROVEN, depth=outcome.k)
            return PropertyResult(name, kind, UNKNOWN,
                                  depth=self.config.max_k)
        outcome = pdr_prove(system, assert_lit,
                            max_frames=self.config.max_frames)
        if outcome.proven:
            return PropertyResult(name, kind, PROVEN, depth=outcome.frames)
        if outcome.failed:
            # Regenerate the trace via BMC at the discovered depth.
            deep = bmc_safety(system, assert_lit,
                              max(outcome.cex_depth, self.config.max_bound),
                              property_name=name, unroller=shared)
            if deep.failed:
                return PropertyResult(name, kind, CEX, depth=deep.depth,
                                      trace=deep.trace)
        return PropertyResult(name, kind, UNKNOWN,
                              depth=self.config.max_frames)

    # -- covers ---------------------------------------------------------------
    def _check_covers(self, system: TransitionSystem) -> List[PropertyResult]:
        results = []
        shared = Unroller(system)
        for prop in system.covers:
            results.append(self._check_one_cover(system, prop, shared))
        return results

    def _check_one_cover(self, system: TransitionSystem, prop,
                         shared: Unroller) -> PropertyResult:
        begin = time.perf_counter()
        outcome = bmc_cover(system, prop.lit, self.config.max_bound,
                            property_name=prop.name, unroller=shared)
        elapsed = time.perf_counter() - begin
        if outcome.failed:  # "failed" = target reached = covered
            return PropertyResult(prop.name, "cover", COVERED,
                                  depth=outcome.depth, trace=outcome.trace,
                                  time_s=elapsed)
        # Try to prove the cover unreachable (negation invariant).
        proof = pdr_prove(system, prop.lit ^ 1,
                          max_frames=self.config.max_frames)
        elapsed = time.perf_counter() - begin
        if proof.proven:
            return PropertyResult(prop.name, "cover", UNREACHABLE,
                                  depth=proof.frames, time_s=elapsed)
        if proof.failed:
            deep = bmc_cover(system, prop.lit,
                             max(proof.cex_depth, self.config.max_bound),
                             property_name=prop.name, unroller=shared)
            if deep.failed:
                return PropertyResult(prop.name, "cover", COVERED,
                                      depth=deep.depth, trace=deep.trace,
                                      time_s=time.perf_counter() - begin)
        return PropertyResult(prop.name, "cover", UNKNOWN,
                              depth=self.config.max_bound, time_s=elapsed)

    # -- liveness ---------------------------------------------------------------
    def _check_liveness(self, system: TransitionSystem,
                        only: Optional[str] = None) -> List[PropertyResult]:
        compilation = compile_liveness(system)
        results = []
        shared = Unroller(system)
        for name, bad_lit in compilation.bad_lits.items():
            if only is not None and name != only:
                continue
            begin = time.perf_counter()
            result = self._check_one_liveness(system, name, bad_lit, shared)
            result.time_s = time.perf_counter() - begin
            results.append(result)
        return results

    def _check_one_liveness(self, system: TransitionSystem, name: str,
                            bad_lit: int, shared: Unroller) -> PropertyResult:
        hunt = bmc_cover(system, bad_lit, self.config.max_bound,
                         property_name=name, unroller=shared)
        if hunt.failed:  # lasso found: liveness CEX
            trace = hunt.trace
            saved = trace.cycles.get(SAVED_OBSERVABLE, [])
            trace.loop_start = find_loop_start(saved)
            return PropertyResult(name, "live", CEX, depth=hunt.depth,
                                  trace=trace)
        if self.config.liveness_strategy != "l2s":
            return PropertyResult(name, "live", UNKNOWN,
                                  depth=self.config.max_bound)
        if self.config.proof_engine == "kind":
            proof = prove_safety(system, bad_lit ^ 1, max_k=self.config.max_k,
                                 property_name=name,
                                 simple_path=self.config.simple_path)
            if proof.proven:
                return PropertyResult(name, "live", PROVEN, depth=proof.k)
            if proof.failed:
                trace = proof.cex_trace
                saved = trace.cycles.get(SAVED_OBSERVABLE, [])
                trace.loop_start = find_loop_start(saved)
                return PropertyResult(name, "live", CEX,
                                      depth=trace.depth - 1, trace=trace)
            return PropertyResult(name, "live", UNKNOWN,
                                  depth=self.config.max_k)
        # Proof ladder: k-liveness monitors first (tiny state, usually easy
        # for PDR), then full L2S as the complete fallback.
        for rounds in self.config.kliveness_rounds:
            fresh = self._factory()
            bad_k = compile_kliveness(fresh, name, rounds)
            attempt = pdr_prove(fresh, bad_k ^ 1,
                                max_frames=self.config.max_frames)
            if attempt.proven:
                return PropertyResult(name, "live", PROVEN,
                                      depth=attempt.frames)
            if not attempt.failed:
                break  # frame bound exhausted: a bigger k will not help
        proof = pdr_prove(system, bad_lit ^ 1,
                          max_frames=self.config.max_frames)
        if proof.proven:
            return PropertyResult(name, "live", PROVEN, depth=proof.frames)
        if proof.failed:
            deep = bmc_cover(system, bad_lit,
                             max(proof.cex_depth, self.config.max_bound),
                             property_name=name, unroller=shared)
            if deep.failed:
                trace = deep.trace
                saved = trace.cycles.get(SAVED_OBSERVABLE, [])
                trace.loop_start = find_loop_start(saved)
                return PropertyResult(name, "live", CEX, depth=deep.depth,
                                      trace=trace)
        return PropertyResult(name, "live", UNKNOWN,
                              depth=self.config.max_frames)
