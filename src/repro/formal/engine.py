"""The proof engine: per-property orchestration of BMC, k-induction and L2S.

This module plays the role JasperGold/SymbiYosys play in the paper's flow
(Fig. 4): it takes a compiled formal testbench (a
:class:`~repro.formal.transition.TransitionSystem` carrying asserts, assumes,
covers, liveness and fairness) and returns, per property, one of:

* ``proven``      — invariant proof closed by k-induction (or L2S+induction),
* ``cex``         — a counterexample trace (safety violation or liveness
  lasso),
* ``covered``     — a witness trace reaching a cover target,
* ``unreachable`` — a cover target proven unreachable,
* ``unknown``     — bound exhausted without a verdict.

The engine mirrors the paper's usage model: run everything, report a proof
rate, and hand short CEX traces to the designer.

Since the ``repro.api`` redesign the engine is the *check* half only: proof
backends are looked up in the :mod:`repro.formal.engines` registry (so
``EngineConfig.proof_engine`` is data, not an if/elif), the compile half
lives in :mod:`repro.api.compile`, and :meth:`FormalEngine.check_properties`
checks any named subset — the hook per-property scheduling builds on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Collection, Dict, List, Optional

from .bmc import bmc_cover, bmc_safety
from .cnf import Unroller
from .engines import (available_engines, available_liveness_strategies,
                      get_engine, get_liveness_strategy)
from .liveness import (SAVED_OBSERVABLE, compile_kliveness, compile_liveness,
                       find_loop_start)
from .trace import Trace
from .transition import TransitionSystem

__all__ = ["PropertyResult", "CheckReport", "FormalEngine", "EngineConfig"]

PROVEN = "proven"
CEX = "cex"
COVERED = "covered"
UNREACHABLE = "unreachable"
UNKNOWN = "unknown"


@dataclass
class EngineConfig:
    """Bounds and strategy knobs for the proof engine.

    ``max_bound`` limits BMC bug hunting; ``proof_engine`` names a
    registered proof engine (see :mod:`repro.formal.engines`) — built-ins
    are ``"pdr"`` (IC3, the default and what production tools use),
    ``"kind"`` (k-induction, kept for the ablation study E12) and
    ``"bmc-only"`` (bug hunting without proof attempts);
    ``max_frames`` bounds PDR frames, ``max_k`` bounds induction depth;
    ``simple_path`` toggles the path-uniqueness strengthening of k-induction;
    ``liveness_strategy`` selects L2S+proof (``"l2s"``) or pure bounded lasso
    search (``"bounded"``, bug-hunting only).

    Unknown ``proof_engine`` / ``liveness_strategy`` names raise
    :class:`~repro.core.language.AutoSVAError` at construction — a config
    typo must fail where it is written, not minutes later inside a worker.
    """

    max_bound: int = 20
    max_k: int = 20
    simple_path: bool = True
    liveness_strategy: str = "l2s"
    proof_engine: str = "pdr"
    max_frames: int = 80
    kliveness_rounds: tuple = (1, 2, 4)

    def __post_init__(self) -> None:
        # Imported here: core.language must stay importable without pulling
        # the whole core package through formal at module-import time.
        from ..core.language import AutoSVAError
        if self.proof_engine not in available_engines():
            raise AutoSVAError(
                f"unknown proof engine {self.proof_engine!r}; registered "
                f"engines: {', '.join(available_engines())}")
        if self.liveness_strategy not in available_liveness_strategies():
            raise AutoSVAError(
                f"unknown liveness strategy {self.liveness_strategy!r}; "
                f"registered strategies: "
                f"{', '.join(available_liveness_strategies())}")
        for bound_name in ("max_bound", "max_k", "max_frames"):
            if getattr(self, bound_name) < 0:
                raise AutoSVAError(f"{bound_name} must be >= 0, "
                                   f"got {getattr(self, bound_name)}")


@dataclass
class PropertyResult:
    name: str
    kind: str            # assert | cover | live
    status: str          # proven | cex | covered | unreachable | unknown
    depth: int = 0
    trace: Optional[Trace] = None
    time_s: float = 0.0

    @property
    def ok(self) -> bool:
        """True when the property's obligation is met (proof or coverage)."""
        return self.status in (PROVEN, COVERED)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PropertyResult({self.name!r}, {self.kind}, {self.status}, "
                f"depth={self.depth}, {self.time_s:.3f}s)")


@dataclass
class CheckReport:
    """Results for one verification run over a whole testbench."""

    design: str
    results: List[PropertyResult] = field(default_factory=list)
    total_time_s: float = 0.0

    def by_name(self, name: str) -> PropertyResult:
        for result in self.results:
            if result.name == name:
                return result
        raise KeyError(name)

    @property
    def num_properties(self) -> int:
        return len(self.results)

    @property
    def num_proven(self) -> int:
        return sum(1 for r in self.results if r.status == PROVEN)

    @property
    def num_cex(self) -> int:
        return sum(1 for r in self.results if r.status == CEX)

    @property
    def proof_rate(self) -> float:
        """Fraction of assert/live properties that were proven."""
        checkable = [r for r in self.results if r.kind in ("assert", "live")]
        if not checkable:
            return 1.0
        return sum(1 for r in checkable if r.status == PROVEN) / len(checkable)

    @property
    def cex_results(self) -> List[PropertyResult]:
        return [r for r in self.results if r.status == CEX]

    def summary(self) -> str:
        lines = [f"== {self.design}: {self.num_properties} properties, "
                 f"{self.num_proven} proven, {self.num_cex} CEX, "
                 f"proof rate {self.proof_rate:.0%}, "
                 f"{self.total_time_s:.2f}s =="]
        for result in self.results:
            mark = {"proven": "PASS ", "covered": "COVER",
                    "unreachable": "UNREA", "cex": "FAIL ",
                    "unknown": "?    "}[result.status]
            depth = f" depth={result.depth}" if result.status in (CEX, COVERED) else ""
            lines.append(f"  [{mark}] {result.kind:<6} {result.name}{depth}")
        return "\n".join(lines)


class FormalEngine:
    """Runs properties of a compiled testbench and collates a report.

    ``system_factory`` must return a *fresh* TransitionSystem on each call;
    the engine builds separate instances for safety and liveness so the L2S
    monitor state never weakens safety induction.  A
    :class:`~repro.api.compile.CompiledDesign` provides exactly such a
    factory (``compiled.system``) without re-running the RTL frontend.

    The schedulable unit is a property *subset*: :meth:`check_properties`
    checks any named group, which is what lets the campaign layer shard one
    design's property set across workers; :meth:`check_all` is the
    everything-at-once convenience wrapper.
    """

    def __init__(self, system_factory: Callable[[], TransitionSystem],
                 config: Optional[EngineConfig] = None) -> None:
        self._factory = system_factory
        self.config = config or EngineConfig()

    # -- public API -------------------------------------------------------
    def check_all(self) -> CheckReport:
        return self.check_properties(None)

    def check_properties(self,
                         names: Optional[Collection[str]] = None
                         ) -> CheckReport:
        """Check the named properties (``None`` = every property).

        Results come back in canonical order — asserts, covers, liveness,
        each in declaration order — restricted to ``names``.  Unknown names
        raise ``KeyError`` before any solving starts.
        """
        start = time.perf_counter()
        only = None if names is None else set(names)
        probe = self._factory()
        if only is not None:
            known = {p.name for p in
                     probe.asserts + probe.covers + probe.liveness}
            missing = sorted(only - known)
            if missing:
                raise KeyError(f"no property named {missing[0]!r}")
        report = CheckReport(design=probe.name)
        report.results.extend(self._check_safety(probe, only))
        report.results.extend(self._check_covers(probe, only))
        if self._selected(probe.liveness, only):
            live_system = self._factory()
            report.results.extend(self._check_liveness(live_system,
                                                       only=only))
        report.total_time_s = time.perf_counter() - start
        return report

    def check_property(self, name: str) -> PropertyResult:
        """Check a single property by name (assert, cover or liveness)."""
        return self.check_properties([name]).results[0]

    @staticmethod
    def _selected(props, only) -> List:
        return [p for p in props if only is None or p.name in only]

    # -- safety -------------------------------------------------------------
    def _check_safety(self, system: TransitionSystem,
                      only: Optional[set] = None) -> List[PropertyResult]:
        results = []
        shared = Unroller(system)
        for prop in self._selected(system.asserts, only):
            results.append(self._check_one_safety(system, prop, shared))
        return results

    def _check_one_safety(self, system: TransitionSystem, prop,
                          shared: Unroller) -> PropertyResult:
        begin = time.perf_counter()
        result = self._hunt_then_prove(system, prop.lit, prop.name, "assert",
                                       shared)
        result.time_s = time.perf_counter() - begin
        return result

    def _hunt_then_prove(self, system: TransitionSystem, assert_lit: int,
                         name: str, kind: str,
                         shared: Unroller) -> PropertyResult:
        """BMC bug hunt up to max_bound, then a full proof attempt."""
        hunt = bmc_safety(system, assert_lit, self.config.max_bound,
                          property_name=name, unroller=shared)
        if hunt.failed:
            return PropertyResult(name, kind, CEX, depth=hunt.depth,
                                  trace=hunt.trace)
        engine = get_engine(self.config.proof_engine)
        verdict = engine.prove_invariant(system, assert_lit, self.config)
        if verdict.proven:
            return PropertyResult(name, kind, PROVEN, depth=verdict.depth)
        if verdict.failed:
            if verdict.trace is not None:
                # Backends see only the literal; restore the property name
                # the trace renderer prints.
                verdict.trace.property_name = name
                return PropertyResult(name, kind, CEX,
                                      depth=verdict.cex_depth,
                                      trace=verdict.trace)
            # The backend learned only the depth: regenerate the trace via
            # BMC there.
            deep = bmc_safety(system, assert_lit,
                              max(verdict.cex_depth, self.config.max_bound),
                              property_name=name, unroller=shared)
            if deep.failed:
                return PropertyResult(name, kind, CEX, depth=deep.depth,
                                      trace=deep.trace)
        return PropertyResult(name, kind, UNKNOWN,
                              depth=engine.unknown_depth(self.config))

    # -- covers ---------------------------------------------------------------
    def _check_covers(self, system: TransitionSystem,
                      only: Optional[set] = None) -> List[PropertyResult]:
        results = []
        shared = Unroller(system)
        for prop in self._selected(system.covers, only):
            results.append(self._check_one_cover(system, prop, shared))
        return results

    def _check_one_cover(self, system: TransitionSystem, prop,
                         shared: Unroller) -> PropertyResult:
        begin = time.perf_counter()
        outcome = bmc_cover(system, prop.lit, self.config.max_bound,
                            property_name=prop.name, unroller=shared)
        elapsed = time.perf_counter() - begin
        if outcome.failed:  # "failed" = target reached = covered
            return PropertyResult(prop.name, "cover", COVERED,
                                  depth=outcome.depth, trace=outcome.trace,
                                  time_s=elapsed)
        if not get_engine(self.config.proof_engine).proves_covers:
            # A no-proof engine (bmc-only) stops at the hunt.
            return PropertyResult(prop.name, "cover", UNKNOWN,
                                  depth=self.config.max_bound,
                                  time_s=elapsed)
        # Try to prove the cover unreachable (negation invariant).  Cover
        # unreachability is frame-shaped work, so proving engines all go
        # to PDR here regardless of the configured proof engine (matching
        # the pre-registry behaviour for pdr and kind).
        proof = get_engine("pdr").prove_invariant(system, prop.lit ^ 1,
                                                  self.config)
        elapsed = time.perf_counter() - begin
        if proof.proven:
            return PropertyResult(prop.name, "cover", UNREACHABLE,
                                  depth=proof.depth, time_s=elapsed)
        if proof.failed:
            deep = bmc_cover(system, prop.lit,
                             max(proof.cex_depth, self.config.max_bound),
                             property_name=prop.name, unroller=shared)
            if deep.failed:
                return PropertyResult(prop.name, "cover", COVERED,
                                      depth=deep.depth, trace=deep.trace,
                                      time_s=time.perf_counter() - begin)
        return PropertyResult(prop.name, "cover", UNKNOWN,
                              depth=self.config.max_bound, time_s=elapsed)

    # -- liveness ---------------------------------------------------------------
    def _check_liveness(self, system: TransitionSystem,
                        only: Optional[set] = None) -> List[PropertyResult]:
        compilation = compile_liveness(system)
        results = []
        shared = Unroller(system)
        for name, bad_lit in compilation.bad_lits.items():
            if only is not None and name not in only:
                continue
            begin = time.perf_counter()
            result = self._check_one_liveness(system, name, bad_lit, shared)
            result.time_s = time.perf_counter() - begin
            results.append(result)
        return results

    @staticmethod
    def _lasso_trace(trace: Trace) -> Trace:
        """Mark the loop start on an L2S counterexample trace."""
        saved = trace.cycles.get(SAVED_OBSERVABLE, [])
        trace.loop_start = find_loop_start(saved)
        return trace

    def _check_one_liveness(self, system: TransitionSystem, name: str,
                            bad_lit: int, shared: Unroller) -> PropertyResult:
        hunt = bmc_cover(system, bad_lit, self.config.max_bound,
                         property_name=name, unroller=shared)
        if hunt.failed:  # lasso found: liveness CEX
            return PropertyResult(name, "live", CEX, depth=hunt.depth,
                                  trace=self._lasso_trace(hunt.trace))
        strategy = get_liveness_strategy(self.config.liveness_strategy)
        if not strategy.proves:
            return PropertyResult(name, "live", UNKNOWN,
                                  depth=self.config.max_bound)
        engine = get_engine(self.config.proof_engine)
        if engine.liveness_ladder:
            # Proof ladder: k-liveness monitors first (tiny state, usually
            # easy for a frame-based engine), then full L2S as the complete
            # fallback.
            for rounds in self.config.kliveness_rounds:
                fresh = self._factory()
                bad_k = compile_kliveness(fresh, name, rounds)
                attempt = engine.prove_invariant(fresh, bad_k ^ 1,
                                                 self.config)
                if attempt.proven:
                    return PropertyResult(name, "live", PROVEN,
                                          depth=attempt.depth)
                if not attempt.failed:
                    break  # bound exhausted: a bigger k will not help
        proof = engine.prove_invariant(system, bad_lit ^ 1, self.config)
        if proof.proven:
            return PropertyResult(name, "live", PROVEN, depth=proof.depth)
        if proof.failed:
            if proof.trace is not None:
                proof.trace.property_name = name
                return PropertyResult(name, "live", CEX,
                                      depth=proof.cex_depth,
                                      trace=self._lasso_trace(proof.trace))
            deep = bmc_cover(system, bad_lit,
                             max(proof.cex_depth, self.config.max_bound),
                             property_name=name, unroller=shared)
            if deep.failed:
                return PropertyResult(name, "live", CEX, depth=deep.depth,
                                      trace=self._lasso_trace(deep.trace))
        return PropertyResult(name, "live", UNKNOWN,
                              depth=engine.unknown_depth(self.config))
