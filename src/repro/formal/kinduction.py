"""k-induction: the proof half of the model-checking engine.

A safety property P is proven by k-induction when

* **base case** — P holds in all states reachable within k cycles of reset
  (checked by BMC), and
* **inductive step** — any k+1 consecutive states satisfying P (and all
  invariant constraints) must satisfy P in the next state, starting from an
  *arbitrary* (symbolic) state.

The inductive step is strengthened with *simple-path* constraints (no two
states in the window are identical), which makes k-induction complete for
finite systems: every system is provable at some k bounded by its recurrence
diameter.  Simple-path states are compared on the property's cone-of-
influence latches only: the COI closure (property + constraints, see
:mod:`repro.formal.coi`) is a self-contained subsystem, so any lasso in it
projects to a lasso over exactly those latches — comparing fewer bits is
lossless and far cheaper to encode.

Two reuse hooks keep repeated proofs cheap:

* ``base_unroller`` — the engine passes its BMC hunt unroller, so base
  cases extend frames the hunt already encoded instead of re-encoding the
  design from scratch;
* ``base_cleared`` — depths the hunt already proved violation-free are
  skipped entirely (the hunt's UNSAT answers are exactly the base cases).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .cnf import Unroller
from .coi import coi_latches
from .sat import Solver
from .trace import Trace, extract_trace
from .transition import TransitionSystem

__all__ = ["InductionResult", "prove_safety"]


@dataclass
class InductionResult:
    """Outcome of a k-induction proof attempt.

    ``proven`` with ``k`` the induction depth that closed the proof;
    ``cex_trace`` set instead when the base case found a real violation;
    neither set means the bound was exhausted (UNKNOWN).
    """

    proven: bool
    k: int
    cex_trace: Optional[Trace] = None
    solver_stats: Optional[dict] = None

    @property
    def failed(self) -> bool:
        return self.cex_trace is not None


def _add_simple_path(unroller: Unroller, solver: Solver,
                     latches, i: int, j: int) -> None:
    """Require state(i) != state(j): at least one COI latch differs."""
    diff_lits: List[int] = []
    for latch in latches:
        a = unroller.sat_literal(latch.node, i)
        b = unroller.sat_literal(latch.node, j)
        # fresh var d <-> (a xor b)
        d = solver.new_var()
        solver.add_clause([-d, a, b])
        solver.add_clause([-d, -a, -b])
        solver.add_clause([d, -a, b])
        solver.add_clause([d, a, -b])
        diff_lits.append(d)
    solver.add_clause(diff_lits)


def prove_safety(system: TransitionSystem, assert_lit: int, max_k: int,
                 property_name: str = "assertion",
                 simple_path: bool = True,
                 base_unroller: Optional[Unroller] = None,
                 base_cleared: int = -1) -> InductionResult:
    """Attempt to prove ``assert_lit`` invariant by k-induction up to ``max_k``.

    Interleaves base-case BMC (which may return a genuine counterexample)
    with inductive steps of increasing depth.  ``base_cleared`` marks the
    highest depth already known violation-free (e.g. by the engine's BMC
    hunt): base cases up to it are skipped, not re-solved.
    """
    base = base_unroller or Unroller(system)
    # The step unrolling keeps the historical eager encoding: simple-path
    # constraints touch the COI latches in every frame anyway, and the
    # stable variable numbering keeps induction's solver trajectory stable.
    step = Unroller(system, symbolic_init=True, eager_latches=True)
    step_solver = step.solver
    sp_latches = coi_latches(system, [assert_lit]) if simple_path else []

    for k in range(max_k + 1):
        # Base case at exactly depth k (unless a hunt already cleared it).
        if k > base_cleared:
            bad = -base.sat_literal(assert_lit, k)
            if base.solver.solve(assumptions=[bad]):
                trace = extract_trace(property_name, system, base, depth=k)
                return InductionResult(proven=False, k=k, cex_trace=trace,
                                       solver_stats=base.solver.stats.as_dict())
        # Inductive step: P holds at frames 0..k, fails at k+1?
        # (Frames start from a symbolic state; constraints apply everywhere.)
        step.frame(k + 1)
        # P assumed on frames 0..k — added as permanent clauses (monotone:
        # deeper steps still require them).
        p_k = step.sat_literal(assert_lit, k)
        step_solver.add_clause([p_k])
        if simple_path:
            for i in range(k + 1):
                _add_simple_path(step, step_solver, sp_latches, i, k + 1)
        bad_step = -step.sat_literal(assert_lit, k + 1)
        if not step_solver.solve(assumptions=[bad_step]):
            return InductionResult(proven=True, k=k,
                                   solver_stats=step_solver.stats.as_dict())
    return InductionResult(proven=False, k=max_k,
                           solver_stats=step_solver.stats.as_dict())
