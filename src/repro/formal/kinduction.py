"""k-induction: the proof half of the model-checking engine.

A safety property P is proven by k-induction when

* **base case** — P holds in all states reachable within k cycles of reset
  (checked by BMC), and
* **inductive step** — any k+1 consecutive states satisfying P (and all
  invariant constraints) must satisfy P in the next state, starting from an
  *arbitrary* (symbolic) state.

The inductive step is strengthened with *simple-path* constraints (no two
states in the window are identical), which makes k-induction complete for
finite systems: every system is provable at some k bounded by its recurrence
diameter.  For the small control-logic designs AutoSVA targets this converges
quickly, matching the paper's "proof in a few seconds" observations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .bmc import bmc_safety
from .cnf import Unroller
from .sat import Solver
from .trace import Trace
from .transition import TransitionSystem

__all__ = ["InductionResult", "prove_safety"]


@dataclass
class InductionResult:
    """Outcome of a k-induction proof attempt.

    ``proven`` with ``k`` the induction depth that closed the proof;
    ``cex_trace`` set instead when the base case found a real violation;
    neither set means the bound was exhausted (UNKNOWN).
    """

    proven: bool
    k: int
    cex_trace: Optional[Trace] = None
    solver_stats: Optional[dict] = None

    @property
    def failed(self) -> bool:
        return self.cex_trace is not None


def _add_simple_path(unroller: Unroller, solver: Solver,
                     system: TransitionSystem, i: int, j: int) -> None:
    """Require state(i) != state(j): at least one latch differs."""
    diff_lits: List[int] = []
    for latch in system.latches:
        a = unroller.sat_literal(latch.node, i)
        b = unroller.sat_literal(latch.node, j)
        # fresh var d <-> (a xor b)
        d = solver.new_var()
        solver.add_clause([-d, a, b])
        solver.add_clause([-d, -a, -b])
        solver.add_clause([d, -a, b])
        solver.add_clause([d, a, -b])
        diff_lits.append(d)
    solver.add_clause(diff_lits)


def prove_safety(system: TransitionSystem, assert_lit: int, max_k: int,
                 property_name: str = "assertion",
                 simple_path: bool = True,
                 base_unroller: Optional[Unroller] = None) -> InductionResult:
    """Attempt to prove ``assert_lit`` invariant by k-induction up to ``max_k``.

    Interleaves base-case BMC (which may return a genuine counterexample)
    with inductive steps of increasing depth.
    """
    base = base_unroller or Unroller(system)
    step = Unroller(system, symbolic_init=True)
    step_solver = step.solver

    for k in range(max_k + 1):
        # Base case at exactly depth k.
        bad = -base.sat_literal(assert_lit, k)
        if base.solver.solve(assumptions=[bad]):
            from .trace import extract_trace
            trace = extract_trace(property_name, system, base, depth=k)
            return InductionResult(proven=False, k=k, cex_trace=trace,
                                   solver_stats=base.solver.stats.as_dict())
        # Inductive step: P holds at frames 0..k, fails at k+1?
        # (Frames start from a symbolic state; constraints apply everywhere.)
        step.frame(k + 1)
        # P assumed on frames 0..k — added as permanent clauses (monotone:
        # deeper steps still require them).
        p_k = step.sat_literal(assert_lit, k)
        step_solver.add_clause([p_k])
        if simple_path:
            for i in range(k + 1):
                _add_simple_path(step, step_solver, system, i, k + 1)
        bad_step = -step.sat_literal(assert_lit, k + 1)
        if not step_solver.solve(assumptions=[bad_step]):
            return InductionResult(proven=True, k=k,
                                   solver_stats=step_solver.stats.as_dict())
    return InductionResult(proven=False, k=max_k,
                           solver_stats=step_solver.stats.as_dict())
