"""Tseitin encoding of AIG time-frames into the CDCL solver.

The :class:`Unroller` is the bridge between the symbolic circuit
(:class:`~repro.formal.transition.TransitionSystem`) and the SAT solver: each
call to :meth:`Unroller.frame` materializes one clock cycle, wiring latch
inputs of frame *k+1* to the encoded next-state literals of frame *k* and
giving free inputs fresh SAT variables.

Encoding is **cone-sliced and lazy**: AND gates are encoded iteratively
(explicit stack) and memoized per frame, and — unlike the original eager
unroller, which encoded every latch's next-state function in every frame —
a latch's next-state cone is only encoded when some queried literal
actually reaches that latch.  Only logic in the cone of influence of the
queried properties (plus the invariant constraints, which are asserted in
every frame) ever reaches the solver; this is the encoder-level half of the
paper's Section III observation that FV scales by ignoring logic outside
each property's cone.  :meth:`Unroller.slicing` reports how much of the
design the queries actually pulled in.

Values of latches that were never encoded are reconstructed by concrete
forward simulation at trace-extraction time (:meth:`Unroller.frame_values`),
so counterexample waveforms stay complete.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .aig import FALSE, TRUE
from .coi import latch_support
from .sat import Solver
from .transition import TransitionSystem

__all__ = ["FrameEnv", "Unroller"]


class FrameEnv:
    """SAT environment of one time frame: AIG input node -> SAT literal."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.input_sat: Dict[int, int] = {}
        self._gate_cache: Dict[int, int] = {}


class Unroller:
    """Incrementally unrolls a transition system into a SAT instance."""

    def __init__(self, system: TransitionSystem, solver: Optional[Solver] = None,
                 symbolic_init: bool = False,
                 eager_latches: bool = False) -> None:
        self.system = system
        self.solver = solver or Solver()
        self.symbolic_init = symbolic_init
        #: Encode every latch in every frame up front (the pre-slicing
        #: behaviour).  PDR wants this: its unrolling is only two frames
        #: deep, and search trajectory there is sensitive to variable
        #: numbering — keeping the historical numbering keeps the
        #: historical (tuned-for) trajectories.  Deep BMC unrollings keep
        #: the default lazy slicing.
        self.eager_latches = eager_latches
        self._frames: List[FrameEnv] = []
        # node -> transitive latch closure of its next-state cone.
        self._cone_cache: Dict[int, List] = {}
        # node -> deepest frame whose cone is fully materialized (avoids
        # re-scanning frames 1..k-1 every time a sweep touches depth k).
        self._cone_depth: Dict[int, int] = {}
        # SAT literals for the constants.
        self._true_sat = self.solver.new_var()
        self.solver.add_clause([self._true_sat])

    @property
    def num_frames(self) -> int:
        return len(self._frames)

    def frame(self, k: int) -> FrameEnv:
        """Return frame ``k``, materializing frames up to it as needed."""
        while len(self._frames) <= k:
            self._push_frame()
        return self._frames[k]

    def _push_frame(self) -> None:
        index = len(self._frames)
        env = FrameEnv(index)
        system = self.system
        # Primary inputs are free every cycle: a fresh variable each, eagerly
        # (cheap, and PDR's ternary lifting reads them back by node).
        for node in system.inputs:
            env.input_sat[node] = self.solver.new_var()
        # By default latches are *not* encoded here: their current-value
        # literal (and transitively the previous frame's next-state cone)
        # materializes on first use, in _latch_sat.  That is the per-frame
        # cone slicing.  ``eager_latches`` restores the historical
        # encode-everything order instead.
        self._frames.append(env)
        if self.eager_latches:
            if index == 0:
                for latch in system.latches:
                    var = self.solver.new_var()
                    env.input_sat[latch.node] = var
                    if latch.init is not None and not self.symbolic_init:
                        self.solver.add_clause(
                            [var if latch.init else -var])
            else:
                prev = self._frames[index - 1]
                for latch in system.latches:
                    env.input_sat[latch.node] = self._encode(latch.next_lit,
                                                             prev)
        # Invariant constraints hold in every materialized frame.
        for prop in system.constraints:
            sat_lit = self._encode(prop.lit, env)
            self.solver.add_clause([sat_lit])

    # ------------------------------------------------------------------
    def sat_literal(self, aig_lit: int, k: int) -> int:
        """SAT literal for AIG literal ``aig_lit`` evaluated at frame ``k``."""
        return self._encode(aig_lit, self.frame(k))

    def _encode(self, aig_lit: int, env: FrameEnv) -> int:
        node = aig_lit & ~1
        negated = aig_lit & 1
        sat = self._encode_node(node, env)
        return -sat if negated else sat

    def _frame0_latch(self, node: int) -> int:
        """Allocate frame 0's variable for a latch (reset-constrained
        unless the unrolling is symbolic-init)."""
        latch = self.system.latch_of(node)
        var = self.solver.new_var()
        self._frames[0].input_sat[node] = var
        if latch.init is not None and not self.symbolic_init:
            self.solver.add_clause([var if latch.init else -var])
        return var

    def _latch_cone(self, node: int) -> List:
        """Transitive latch closure of one latch's next-state cone, cached.

        The closure is what bottom-up materialization needs: every latch a
        frame-k value can transitively depend on, in declaration order.
        """
        cached = self._cone_cache.get(node)
        if cached is None:
            system = self.system
            closed: Set[int] = set()
            frontier = {node}
            while frontier:
                current = frontier.pop()
                if current in closed:
                    continue
                closed.add(current)
                latch = system.latch_of(current)
                for dep in latch_support(system, [latch.next_lit]):
                    if dep not in closed:
                        frontier.add(dep)
            cached = [latch for latch in system.latches
                      if latch.node in closed]
            self._cone_cache[node] = cached
        return cached

    def _latch_sat(self, node: int, env: FrameEnv) -> int:
        """Current-value literal of a latch in ``env``, encoded on demand.

        Frame 0 allocates a fresh variable; frame k>0 materializes the
        latch's whole transitive cone *bottom-up*, frame by frame, so no
        cross-frame recursion occurs (a recursive formulation would hit
        Python's recursion limit at unrolling depths of a few hundred).
        By the closure property, encoding a cone latch's next-state
        function at frame j only ever reads cone latches at frame j-1 —
        already materialized by the previous outer iteration (or frame 0's
        direct allocation).
        """
        if env.index == 0:
            return self._frame0_latch(node)
        cone = self._latch_cone(node)
        done = self._cone_depth.get(node, 0)
        for j in range(done + 1, env.index + 1):
            prev = self._frames[j - 1]
            frame_j = self._frames[j]
            for latch in cone:
                if latch.node not in frame_j.input_sat:
                    frame_j.input_sat[latch.node] = self._encode(
                        latch.next_lit, prev)
        if env.index > done:
            self._cone_depth[node] = env.index
        return env.input_sat[node]

    def _encode_node(self, node: int, env: FrameEnv) -> int:
        if node == FALSE:
            return -self._true_sat
        cached = env._gate_cache.get(node)
        if cached is not None:
            return cached
        sat_in = env.input_sat.get(node)
        if sat_in is not None:
            return sat_in
        system = self.system
        if system.is_latch_node(node):
            return self._latch_sat(node, env)
        aig = system.aig
        # Iterative post-order encoding of the AND cone.
        gate_cache = env._gate_cache
        input_sat = env.input_sat
        stack = [node]
        while stack:
            cur = stack[-1]
            if cur in gate_cache or cur in input_sat:
                stack.pop()
                continue
            if not aig.is_and(cur):
                if system.is_latch_node(cur):
                    self._latch_sat(cur, env)
                else:
                    # Unconstrained node (e.g. a symbolic variable created
                    # after this frame): give it a free SAT variable.
                    input_sat[cur] = self.solver.new_var()
                stack.pop()
                continue
            lhs, rhs = aig.fanins(cur)
            pending = [n for n in (lhs & ~1, rhs & ~1)
                       if n != FALSE and n not in gate_cache
                       and n not in input_sat]
            if pending:
                stack.extend(pending)
                continue
            lhs_sat = self._leaf(lhs, env)
            rhs_sat = self._leaf(rhs, env)
            out = self.solver.new_var()
            # Tseitin clauses for out <-> lhs & rhs.
            self.solver.add_clause([-out, lhs_sat])
            self.solver.add_clause([-out, rhs_sat])
            self.solver.add_clause([out, -lhs_sat, -rhs_sat])
            gate_cache[cur] = out
            stack.pop()
        return gate_cache.get(node) or input_sat[node]

    def _leaf(self, aig_lit: int, env: FrameEnv) -> int:
        node = aig_lit & ~1
        if node == FALSE:
            sat = -self._true_sat
        else:
            sat = env._gate_cache.get(node)
            if sat is None:
                sat = env.input_sat[node]
        return -sat if aig_lit & 1 else sat

    # ------------------------------------------------------------------
    # Slicing statistics
    # ------------------------------------------------------------------
    def slicing(self) -> Dict[str, int]:
        """How much of the design the queries pulled into the solver.

        ``latch_slots`` is latches x frames (what the eager encoder used to
        encode); ``encoded_latch_slots`` how many were actually needed.
        """
        total = len(self.system.latches) * max(1, len(self._frames))
        encoded = sum(1 for env in self._frames for node in env.input_sat
                      if self.system.is_latch_node(node))
        return {"frames": len(self._frames),
                "latch_slots": total,
                "encoded_latch_slots": encoded,
                "solver_vars": self.solver.num_vars}

    # ------------------------------------------------------------------
    # Trace support
    # ------------------------------------------------------------------
    def input_values(self, k: int) -> Dict[int, bool]:
        """After SAT, the model's values for frame ``k`` *encoded* nodes."""
        env = self.frame(k)
        values: Dict[int, bool] = {}
        for node, sat in env.input_sat.items():
            val = self.solver.value(sat)
            values[node] = bool(val)
        return values

    def frame_values(self, depth: int) -> List[Dict[int, bool]]:
        """Complete per-frame node values for frames ``0..depth``.

        Encoded nodes read back their SAT model value; latches the cone
        slicing never encoded are reconstructed by concrete simulation
        (reset value at frame 0, previous frame's next-state function
        after), so trace extraction sees a complete waveform.  Unencoded
        free inputs default to 0 — they are, by construction, outside every
        queried cone.
        """
        aig = self.system.aig
        envs: List[Dict[int, bool]] = []
        prev: Optional[Dict[int, bool]] = None
        for k in range(depth + 1):
            values = self.input_values(k)
            for latch in self.system.latches:
                if latch.node in values:
                    continue
                if k == 0:
                    if self.symbolic_init or latch.init is None:
                        values[latch.node] = False
                    else:
                        values[latch.node] = bool(latch.init)
                else:
                    values[latch.node] = aig.eval_literal(latch.next_lit,
                                                          prev)
            envs.append(values)
            prev = values
        return envs
