"""Tseitin encoding of AIG time-frames into the CDCL solver.

The :class:`Unroller` is the bridge between the symbolic circuit
(:class:`~repro.formal.transition.TransitionSystem`) and the SAT solver: each
call to :meth:`Unroller.frame` materializes one clock cycle, wiring latch
inputs of frame *k+1* to the encoded next-state literals of frame *k* and
giving free inputs fresh SAT variables.  AND gates are encoded lazily and
memoized per frame, so only logic in the cone of influence of a queried
property ever reaches the solver.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .aig import FALSE, TRUE
from .sat import Solver
from .transition import TransitionSystem

__all__ = ["FrameEnv", "Unroller"]


class FrameEnv:
    """SAT environment of one time frame: AIG input node -> SAT literal."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.input_sat: Dict[int, int] = {}
        self._gate_cache: Dict[int, int] = {}


class Unroller:
    """Incrementally unrolls a transition system into a SAT instance."""

    def __init__(self, system: TransitionSystem, solver: Optional[Solver] = None,
                 symbolic_init: bool = False) -> None:
        self.system = system
        self.solver = solver or Solver()
        self.symbolic_init = symbolic_init
        self._frames: List[FrameEnv] = []
        # SAT literals for the constants.
        self._true_sat = self.solver.new_var()
        self.solver.add_clause([self._true_sat])

    @property
    def num_frames(self) -> int:
        return len(self._frames)

    def frame(self, k: int) -> FrameEnv:
        """Return frame ``k``, materializing frames up to it as needed."""
        while len(self._frames) <= k:
            self._push_frame()
        return self._frames[k]

    def _push_frame(self) -> None:
        index = len(self._frames)
        env = FrameEnv(index)
        system = self.system
        if index == 0:
            for node in system.inputs:
                env.input_sat[node] = self.solver.new_var()
            for latch in system.latches:
                var = self.solver.new_var()
                env.input_sat[latch.node] = var
                if latch.init is not None and not self.symbolic_init:
                    self.solver.add_clause([var if latch.init else -var])
        else:
            prev = self._frames[index - 1]
            for node in system.inputs:
                env.input_sat[node] = self.solver.new_var()
            for latch in system.latches:
                # Current value of the latch in this frame is the previous
                # frame's next-state function.
                env.input_sat[latch.node] = self._encode(latch.next_lit, prev)
        self._frames.append(env)
        # Invariant constraints hold in every materialized frame.
        for prop in system.constraints:
            sat_lit = self._encode(prop.lit, env)
            self.solver.add_clause([sat_lit])

    # ------------------------------------------------------------------
    def sat_literal(self, aig_lit: int, k: int) -> int:
        """SAT literal for AIG literal ``aig_lit`` evaluated at frame ``k``."""
        return self._encode(aig_lit, self.frame(k))

    def _encode(self, aig_lit: int, env: FrameEnv) -> int:
        node = aig_lit & ~1
        negated = aig_lit & 1
        sat = self._encode_node(node, env)
        return -sat if negated else sat

    def _encode_node(self, node: int, env: FrameEnv) -> int:
        if node == FALSE:
            return -self._true_sat
        cached = env._gate_cache.get(node)
        if cached is not None:
            return cached
        sat_in = env.input_sat.get(node)
        if sat_in is not None:
            return sat_in
        aig = self.system.aig
        # Iterative post-order encoding of the AND cone.
        stack = [node]
        while stack:
            cur = stack[-1]
            if cur in env._gate_cache or cur in env.input_sat:
                stack.pop()
                continue
            if not aig.is_and(cur):
                # Unconstrained node (e.g. a symbolic variable created after
                # this frame): give it a free SAT variable.
                env.input_sat[cur] = self.solver.new_var()
                stack.pop()
                continue
            lhs, rhs = aig.fanins(cur)
            pending = [n for n in (lhs & ~1, rhs & ~1)
                       if n != FALSE and n not in env._gate_cache
                       and n not in env.input_sat]
            if pending:
                stack.extend(pending)
                continue
            lhs_sat = self._leaf(lhs, env)
            rhs_sat = self._leaf(rhs, env)
            out = self.solver.new_var()
            # Tseitin clauses for out <-> lhs & rhs.
            self.solver.add_clause([-out, lhs_sat])
            self.solver.add_clause([-out, rhs_sat])
            self.solver.add_clause([out, -lhs_sat, -rhs_sat])
            env._gate_cache[cur] = out
            stack.pop()
        return env._gate_cache.get(node) or env.input_sat[node]

    def _leaf(self, aig_lit: int, env: FrameEnv) -> int:
        node = aig_lit & ~1
        if node == FALSE:
            sat = -self._true_sat
        else:
            sat = env._gate_cache.get(node)
            if sat is None:
                sat = env.input_sat[node]
        return -sat if aig_lit & 1 else sat

    # ------------------------------------------------------------------
    # Trace support
    # ------------------------------------------------------------------
    def input_values(self, k: int) -> Dict[int, bool]:
        """After SAT, the model's values for frame ``k`` input/latch nodes."""
        env = self.frame(k)
        values: Dict[int, bool] = {}
        for node, sat in env.input_sat.items():
            val = self.solver.value(sat)
            values[node] = bool(val)
        return values
