"""IC3/PDR: property-directed reachability, the engine's proof workhorse.

k-induction (kept in :mod:`repro.formal.kinduction` for the ablation study)
cannot close liveness-to-safety proofs in practice: the shadow registers of
the L2S construction admit arbitrarily long spurious inductive paths.  Real
formal tools (the JasperGold engines and ABC's ``suprove`` behind SymbiYosys)
rely on IC3/PDR, which incrementally learns a *relative inductive* clause set
per time frame until a safety invariant emerges.  This is a from-scratch
implementation of the standard algorithm (Bradley 2011, Een/Mishchenko/
Brayton 2011):

* frames ``F_0 (init), F_1, ..., F_N`` of blocked-cube clauses over latch
  variables, with the usual monotone clause-set representation;
* counterexamples-to-induction blocked recursively with unsat-core based
  literal dropping (plus a bounded literal-elimination pass);
* clause propagation and fixpoint detection (``F_i == F_{i+1}`` proves the
  property).

Invariant-style assumptions (``constraints``) are enforced at both sides of
the transition; the caller is expected to have bug-hunted with BMC first (the
0/1-step base cases), as :class:`repro.formal.engine.FormalEngine` does.

**Context sharing** (:class:`PdrContext`): every clause PDR adds to its
solver is guarded by an activation literal, so one two-frame unrolling of
the transition relation can serve PDR runs for *every* property of a
system — each run retires its guards on exit, and the (expensive, lazily
cone-sliced) transition encoding plus all learned clauses stay warm for the
next property.  :class:`~repro.formal.engine.FormalEngine` keeps one context
per checked system; :func:`pdr_prove` without a context builds a throwaway
one, preserving the old single-shot behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import METRICS
from .aig import FALSE, TRUE
from .cnf import Unroller
from .coi import coi_latches
from .sat import Solver
from .transition import Latch, TransitionSystem

__all__ = ["PdrResult", "Pdr", "PdrContext", "pdr_prove"]


@dataclass
class PdrResult:
    """``proven`` with the closing frame, or ``failed`` with the CEX depth
    (regenerate the trace with BMC at that depth), or neither (bound hit)."""

    proven: bool
    frames: int
    failed: bool = False
    cex_depth: int = 0
    num_clauses: int = 0
    solver_stats: Optional[dict] = None


class _Clause:
    """A blocked-cube clause with its frame level."""

    __slots__ = ("lits", "level", "retired", "tried_mods")

    def __init__(self, lits: Tuple[int, ...], level: int) -> None:
        self.lits = lits        # clause literals over frame-0 latch SAT vars
        self.level = level
        self.retired = False
        # Frame-modification snapshot at the last *failed* push attempt:
        # the push query's answer only changes when some clause lands at a
        # level >= this clause's, so unchanged snapshots skip the re-solve.
        self.tried_mods = -1


class PdrContext:
    """Shared two-frame unrolling reusable across PDR runs on one system.

    Holds the symbolic-init :class:`Unroller` (frame 0 = current state,
    frame 1 = successor; invariant constraints asserted in both by the
    unroller itself) and memoizes per-latch SAT literals.  All clauses a
    :class:`Pdr` run adds are activation-guarded; :meth:`retire` permanently
    disables a batch of guards when the run finishes, so the next run
    starts from a clean frame state but a warm solver.
    """

    def __init__(self, system: TransitionSystem) -> None:
        self.system = system
        # Eager latch encoding: the unrolling is two frames deep, so the
        # slicing win is small, and keeping the historical variable
        # numbering keeps PDR's (trajectory-sensitive) search behaviour.
        self.unroller = Unroller(system, symbolic_init=True,
                                 eager_latches=True)
        self.solver: Solver = self.unroller.solver
        self.unroller.frame(1)
        self._cur: Dict[int, int] = {}   # latch node -> frame-0 SAT literal
        self._nxt: Dict[int, int] = {}   # latch node -> frame-1 SAT literal
        self.runs = 0

    def cur_lit(self, node: int) -> int:
        sat = self._cur.get(node)
        if sat is None:
            sat = self.unroller.sat_literal(node, 0)
            self._cur[node] = sat
        return sat

    def nxt_lit(self, node: int) -> int:
        sat = self._nxt.get(node)
        if sat is None:
            sat = self.unroller.sat_literal(node, 1)
            self._nxt[node] = sat
        return sat

    def retire(self, acts: Sequence[int]) -> None:
        """Permanently disable a run's activation guards."""
        for act in acts:
            self.solver.add_clause([-act])


class Pdr:
    """One PDR run for a single bad literal on a transition system."""

    def __init__(self, system: TransitionSystem, bad_lit: int,
                 max_frames: int = 60,
                 context: Optional[PdrContext] = None) -> None:
        self.system = system
        self.bad_lit = bad_lit
        self.max_frames = max_frames
        self.context = context or PdrContext(system)
        if self.context.system is not system:
            raise ValueError("PdrContext belongs to a different system")
        self.context.runs += 1
        self.unroller = self.context.unroller
        self.solver: Solver = self.context.solver
        self._bad_sat = self.unroller.sat_literal(bad_lit, 0)
        # Latch variable maps, restricted to the property's cone of
        # influence (constraint support included — exact reduction).
        self._latches: List[Latch] = coi_latches(system, [bad_lit])
        self._cur: Dict[int, int] = {
            latch.node: self.context.cur_lit(latch.node)
            for latch in self._latches}
        self._nxt: Dict[int, int] = {
            latch.node: self.context.nxt_lit(latch.node)
            for latch in self._latches}
        self._init_value: Dict[int, Optional[bool]] = {
            latch.node: latch.init for latch in self._latches}
        self._var_to_node: Dict[int, int] = {
            abs(sat): node for node, sat in self._cur.items()}
        # Every clause this run adds is guarded; the guards retire on exit.
        self._acts: List[int] = []
        # F_0 is the init predicate, guarded by one activation literal.
        self._init_act = self._new_act()
        for latch in self._latches:
            if latch.init is None:
                continue
            sat = self._cur[latch.node]
            self.solver.add_clause(
                [-self._init_act, sat if latch.init else -sat])
        self._clauses: List[_Clause] = []
        self._num_frames = 1
        # One activation literal per *frame level*, not per clause: a
        # frame clause at level L is guarded by act[L], and the query for
        # F_X assumes the descending chain [act[N], ..., act[X]].  That
        # keeps assumption lists at O(frames) instead of O(clauses) — the
        # per-query establishment cost used to dominate PDR — and makes
        # each deeper query's assumption list an exact extension of the
        # previous one, which the solver's trail reuse turns into almost
        # free re-establishment.  Pushing a clause to L+1 re-asserts it
        # under act[L+1]; the stale copy under act[L] stays, harmlessly,
        # because frames are monotone (F_X contains all clauses of level
        # >= X either way).
        self._level_acts: List[int] = [self._new_act()]  # act for level 0*
        # (*level 0 frame clauses never exist, but keeping index parity
        #  makes the arithmetic below uniform.)
        # Per-level frame-modification counters backing _Clause.tried_mods.
        self._level_mods: List[int] = [0]
        # Concrete model nodes ternary lifting reads: COI inputs and
        # latches with their frame-0 SAT literals, precomputed once.
        frame0 = self.unroller.frame(0)
        self._model_nodes: List[Tuple[int, int]] = [
            (node, sat) for node, sat in frame0.input_sat.items()]

    def _new_act(self) -> int:
        act = self.solver.new_var()
        self._acts.append(act)
        return act

    # -- ternary-simulation lifting ------------------------------------------
    # Predecessor cubes from the SAT model assign *every* COI latch; most of
    # those literals are irrelevant to why the successor is reached.  The
    # standard IC3 trick (Een/Mishchenko/Brayton 2011) drops a latch literal
    # when three-valued simulation shows the required outputs stay determined
    # with that latch set to X.  This shrinks proof obligations by orders of
    # magnitude on control logic.
    _X = 2

    def _ternary_eval(self, lit: int, values: Dict[int, int]) -> int:
        """Three-valued evaluation of an AIG literal; 0, 1 or X(2).

        ``values`` maps input/latch nodes to 0/1/X and doubles as the memo
        table for internal nodes.  Hot path of cube lifting — the AND-node
        table is read directly and fanin values are computed inline.
        """
        and_of = self.system.aig._and_of
        X = self._X
        stack = [lit & ~1]
        while stack:
            node = stack[-1]
            if node == FALSE or node in values:
                stack.pop()
                continue
            pair = and_of.get(node)
            if pair is None:
                values[node] = X  # unconstrained node
                stack.pop()
                continue
            lhs, rhs = pair
            lnode = lhs & ~1
            rnode = rhs & ~1
            ready = True
            if lnode != FALSE and lnode not in values:
                stack.append(lnode)
                ready = False
            if rnode != FALSE and rnode not in values:
                stack.append(rnode)
                ready = False
            if not ready:
                continue
            if lnode == FALSE:
                a = lhs & 1
            else:
                v = values[lnode]
                a = X if v == X else v ^ (lhs & 1)
            if a == 0:
                values[node] = 0
                stack.pop()
                continue
            if rnode == FALSE:
                b = rhs & 1
            else:
                v = values[rnode]
                b = X if v == X else v ^ (rhs & 1)
            if b == 0:
                values[node] = 0
            elif a == X or b == X:
                values[node] = X
            else:
                values[node] = 1
            stack.pop()
        base = values.get(lit & ~1, 0) if (lit & ~1) != FALSE else 0
        if base == X:
            return X
        return base ^ (lit & 1)

    def _lift_cube(self, cube: Tuple[int, ...],
                   required: List[Tuple[int, bool]]) -> Tuple[int, ...]:
        """Drop cube literals while all required (lit, value) stay determined."""
        if not required:
            return cube
        # Concrete model values for the frame-0 nodes the unrolling
        # encoded (cone-sliced: exactly the nodes lifting can ever read).
        value = self.solver.value
        base_values: Dict[int, int] = {}
        for node, sat in self._model_nodes:
            base_values[node] = 1 if value(sat) else 0
        kept: List[int] = []
        dropped: set = set()
        for idx, lit in enumerate(cube):
            node = self._var_to_node[abs(lit)]
            trial = dict(base_values)
            trial[node] = self._X
            for other in dropped:
                trial[other] = self._X
            ok = True
            for req_lit, req_val in required:
                result = self._ternary_eval(req_lit, trial)
                if result == self._X or bool(result) != req_val:
                    ok = False
                    break
            if ok:
                dropped.add(node)
            else:
                kept.append(lit)
        return tuple(kept) if kept else cube

    def _constraint_requirements(self) -> List[Tuple[int, bool]]:
        return [(prop.lit, True) for prop in self.system.constraints]

    # -- init handling ------------------------------------------------------
    def _cube_intersects_init(self, cube: Sequence[int]) -> bool:
        """Does the cube (over frame-0 latch SAT literals) contain an init
        state?  True unless some literal contradicts a defined init value."""
        for lit in cube:
            var = abs(lit)
            node = self._var_to_node.get(var)
            if node is None:
                continue
            init = self._init_value[node]
            if init is None:
                continue
            if (lit > 0) != init:
                return False
        return True

    # -- frame queries ------------------------------------------------------
    def _level_act(self, level: int) -> int:
        while len(self._level_acts) <= level:
            self._level_acts.append(self._new_act())
        return self._level_acts[level]

    def _frame_assumptions(self, level: int) -> List[int]:
        # Descending level order: the act chain for frame X is a *prefix*
        # of the chain for X-1, which is exactly what the solver's
        # assumption-prefix trail reuse wants — a blocking cascade
        # descends levels and keeps extending, not rebuilding, the
        # assumption trail.
        top = max(self._num_frames, len(self._level_acts) - 1)
        acts = [self._level_act(l) for l in range(top, level - 1, -1)]
        if level == 0:
            acts.append(self._init_act)
        return acts

    def _note_level_mod(self, level: int) -> None:
        while len(self._level_mods) <= level:
            self._level_mods.append(0)
        self._level_mods[level] += 1

    def _add_frame_clause(self, lits: Tuple[int, ...], level: int) -> None:
        self.solver.add_clause([-self._level_act(level)] + list(lits))
        self._clauses.append(_Clause(lits, level))
        self._note_level_mod(level)

    # -- main loop -----------------------------------------------------------
    def run(self) -> PdrResult:
        if self.bad_lit == FALSE:
            self.context.retire(self._acts)
            return PdrResult(proven=True, frames=0)
        try:
            return self._run()
        finally:
            # Whatever the outcome, this run's guarded clauses must never
            # constrain the next run on the shared context.
            self.context.retire(self._acts)

    def _run(self) -> PdrResult:
        while True:
            # Find a bad state inside the outermost frame.
            assumptions = self._frame_assumptions(self._num_frames)
            assumptions.append(self._bad_sat)
            # Frame N also requires the init predicate when N == 0 — the
            # engine's BMC pass already covered the concrete init cases.
            if not self.solver.solve(assumptions=assumptions):
                # Bad unreachable from F_N: add a frame and propagate.
                self._num_frames += 1
                METRICS.counter("pdr.frames_added").inc()
                if self._propagate():
                    return PdrResult(
                        proven=True, frames=self._num_frames,
                        num_clauses=len(self._clauses),
                        solver_stats=self.solver.stats.as_dict())
                if self._num_frames > self.max_frames:
                    return PdrResult(
                        proven=False, frames=self._num_frames,
                        num_clauses=len(self._clauses),
                        solver_stats=self.solver.stats.as_dict())
                continue
            cube = self._model_cube()
            cube = self._lift_cube(
                cube, [(self.bad_lit, True)] + self._constraint_requirements())
            chain = self._block(cube, self._num_frames, chain_len=0)
            if chain is not None:
                # chain = number of transitions from an init state to the
                # bad cube, i.e. the cycle index where the property fails.
                return PdrResult(
                    proven=False, frames=self._num_frames, failed=True,
                    cex_depth=chain,
                    num_clauses=len(self._clauses),
                    solver_stats=self.solver.stats.as_dict())

    def _model_cube(self) -> Tuple[int, ...]:
        """Full cube of current-state latch values from the SAT model."""
        cube = []
        for latch in self._latches:
            sat = self._cur[latch.node]
            value = self.solver.value(sat)
            cube.append(sat if value else -sat)
        return tuple(cube)

    # -- recursive blocking ----------------------------------------------------
    def _block(self, cube: Tuple[int, ...], level: int,
               chain_len: int) -> Optional[int]:
        """Block ``cube`` at ``level``.  Returns None on success, or the
        length of the counterexample chain when the cube reaches init."""
        if not cube:
            # Empty cube = the bad condition holds in *every* state
            # (possible when its cone of influence has no latches at all):
            # the initial state itself is bad.
            return chain_len
        if self._cube_intersects_init(cube):
            # Lifting preserves "every state in the cube steps into the
            # parent obligation under the recorded inputs", so an init state
            # inside the cube is a genuine counterexample at any level.
            return chain_len
        if level == 0:
            return None
        while True:
            # Relative induction: F_{level-1} ∧ ¬cube ∧ T ∧ cube'
            not_cube_act = self._new_act()
            self.solver.add_clause([-not_cube_act] + [-lit for lit in cube])
            assumptions = self._frame_assumptions(level - 1)
            assumptions.append(not_cube_act)
            assumptions.extend(self._prime(cube))
            sat = self.solver.solve(assumptions=assumptions)
            if not sat:
                core = set(self.solver.core)
                self.solver.add_clause([-not_cube_act])  # retire
                reduced = self._generalize(cube, core, level)
                self._add_frame_clause(
                    tuple(-lit for lit in reduced), level)
                return None
            predecessor = self._model_cube()
            required = self._constraint_requirements()
            for lit in cube:
                node = self._var_to_node[abs(lit)]
                latch = self.system.latch_of(node)
                required.append((latch.next_lit, lit > 0))
            predecessor = self._lift_cube(predecessor, required)
            self.solver.add_clause([-not_cube_act])  # retire
            result = self._block(predecessor, level - 1, chain_len + 1)
            if result is not None:
                return result

    def _prime(self, cube: Sequence[int]) -> List[int]:
        """Map a frame-0 latch cube to the corresponding frame-1 literals."""
        primed = []
        for lit in cube:
            node = self._var_to_node[abs(lit)]
            nxt = self._nxt[node]
            primed.append(-nxt if lit < 0 else nxt)
        return primed

    # -- generalization -----------------------------------------------------
    def _generalize(self, cube: Tuple[int, ...], core: set,
                    level: int) -> Tuple[int, ...]:
        """Shrink the blocked cube: first with the unsat core over the primed
        assumption literals, then with a bounded literal-dropping pass."""
        primed = self._prime(cube)
        keep = []
        for lit, primed_lit in zip(cube, primed):
            if primed_lit in core:
                keep.append(lit)
        if not keep:
            keep = list(cube)
        if self._cube_intersects_init(keep):
            keep = self._restore_init_blocking(cube, keep)
        keep = self._drop_literals(tuple(keep), level)
        return tuple(keep)

    def _restore_init_blocking(self, cube: Tuple[int, ...],
                               keep: List[int]) -> List[int]:
        """Re-add a literal that separates the cube from the init states."""
        present = set(keep)
        for lit in cube:
            if lit in present:
                continue
            node = self._var_to_node[abs(lit)]
            init = self._init_value[node]
            if init is not None and (lit > 0) != init:
                return keep + [lit]
        return list(cube)

    def _relatively_inductive(self, cube_lits: Sequence[int],
                              level: int) -> bool:
        """Is ``F_{level-1} ∧ ¬cube ∧ T ∧ cube'`` unsatisfiable?"""
        not_cube_act = self._new_act()
        self.solver.add_clause([-not_cube_act]
                               + [-lit for lit in cube_lits])
        assumptions = self._frame_assumptions(level - 1)
        assumptions.append(not_cube_act)
        assumptions.extend(self._prime(cube_lits))
        sat = self.solver.solve(assumptions=assumptions)
        self.solver.add_clause([-not_cube_act])
        return not sat

    def _drop_literals(self, cube: Tuple[int, ...], level: int,
                       max_attempts: int = 8) -> Tuple[int, ...]:
        """Try removing individual literals while the clause stays relatively
        inductive (bounded pass: PDR works without it, just slower).

        The budget of 8 is measured, not arbitrary: stronger
        generalization means fewer, stronger frame clauses and roughly
        half the total queries on the slow-converging liveness monitors
        (A4's k-liveness rung: 17.8s at 3 attempts, 7.5s at 8, no further
        gain unbounded; a bounded ctgDown pass was also tried here and
        measured net-negative on this corpus).
        """
        current = list(cube)
        attempts = 0
        idx = 0
        while idx < len(current) and attempts < max_attempts:
            if len(current) == 1:
                break
            candidate = current[:idx] + current[idx + 1:]
            if self._cube_intersects_init(candidate):
                idx += 1
                continue
            attempts += 1
            if self._relatively_inductive(candidate, level):
                current = candidate
            else:
                idx += 1
        return tuple(current)

    # -- propagation -----------------------------------------------------------
    def _propagate(self) -> bool:
        """Push clauses forward; True when a fixpoint frame is found.

        A clause that failed to push is only retried once some clause has
        landed at (or moved into) a level at or above its own — the push
        query's formula is unchanged otherwise, so its UNSAT/SAT answer is
        too.  This prunes the bulk of the O(frames x clauses) re-solves on
        slow-converging proofs.
        """
        mods = self._level_mods
        # suffix[l] = total modifications at levels >= l.
        suffix = [0] * (len(mods) + 1)
        for l in range(len(mods) - 1, -1, -1):
            suffix[l] = suffix[l + 1] + mods[l]
        for clause in self._clauses:
            if clause.retired or clause.level >= self._num_frames:
                continue
            snapshot = suffix[min(clause.level, len(suffix) - 1)]
            if clause.tried_mods == snapshot:
                continue  # frame unchanged since the last failed attempt
            # Does the clause hold one frame later?  F_level ∧ T ∧ ¬c'
            cube = tuple(-lit for lit in clause.lits)
            assumptions = self._frame_assumptions(clause.level)
            assumptions.extend(self._prime(cube))
            if not self.solver.solve(assumptions=assumptions):
                clause.level += 1
                METRICS.counter("pdr.frames_pushed").inc()
                clause.tried_mods = -1
                # Re-assert under the stronger level's act (the old copy
                # stays active for weaker queries — frames are monotone).
                self.solver.add_clause(
                    [-self._level_act(clause.level)] + list(clause.lits))
                self._note_level_mod(clause.level)
                # The new modification is at clause.level: every suffix
                # count at or below it grows by one (and only those —
                # overcounting higher entries would let a later clause
                # store an inflated snapshot and wrongly skip a retry).
                for l in range(min(clause.level, len(suffix) - 1),
                               -1, -1):
                    suffix[l] += 1
            else:
                clause.tried_mods = snapshot
        # Fixpoint: some frame 1..N-1 has no clause at exactly its level.
        active = [c for c in self._clauses if not c.retired]
        for level in range(1, self._num_frames):
            if not any(c.level == level for c in active):
                return True
        return False


def pdr_prove(system: TransitionSystem, assert_lit: int,
              max_frames: int = 60,
              context: Optional[PdrContext] = None) -> PdrResult:
    """Prove ``assert_lit`` invariant (or find it violable) with PDR.

    ``assert_lit`` is the property literal (must always hold); PDR works on
    its negation as the bad state.  ``context`` (see :class:`PdrContext`)
    shares the transition encoding and solver across runs on one system.
    """
    return Pdr(system, bad_lit=assert_lit ^ 1, max_frames=max_frames,
               context=context).run()
