"""IC3/PDR: property-directed reachability, the engine's proof workhorse.

k-induction (kept in :mod:`repro.formal.kinduction` for the ablation study)
cannot close liveness-to-safety proofs in practice: the shadow registers of
the L2S construction admit arbitrarily long spurious inductive paths.  Real
formal tools (the JasperGold engines and ABC's ``suprove`` behind SymbiYosys)
rely on IC3/PDR, which incrementally learns a *relative inductive* clause set
per time frame until a safety invariant emerges.  This is a from-scratch
implementation of the standard algorithm (Bradley 2011, Een/Mishchenko/
Brayton 2011):

* frames ``F_0 (init), F_1, ..., F_N`` of blocked-cube clauses over latch
  variables, with the usual monotone clause-set representation;
* counterexamples-to-induction blocked recursively with unsat-core based
  literal dropping (plus a bounded literal-elimination pass);
* clause propagation and fixpoint detection (``F_i == F_{i+1}`` proves the
  property).

Invariant-style assumptions (``constraints``) are enforced at both sides of
the transition; the caller is expected to have bug-hunted with BMC first (the
0/1-step base cases), as :class:`repro.formal.engine.FormalEngine` does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .aig import FALSE, TRUE
from .cnf import Unroller
from .coi import coi_latches
from .sat import Solver
from .transition import Latch, TransitionSystem

__all__ = ["PdrResult", "Pdr", "pdr_prove"]


@dataclass
class PdrResult:
    """``proven`` with the closing frame, or ``failed`` with the CEX depth
    (regenerate the trace with BMC at that depth), or neither (bound hit)."""

    proven: bool
    frames: int
    failed: bool = False
    cex_depth: int = 0
    num_clauses: int = 0
    solver_stats: Optional[dict] = None


class _Clause:
    """A blocked-cube clause with its frame level and activation literal."""

    __slots__ = ("lits", "level", "act", "retired")

    def __init__(self, lits: Tuple[int, ...], level: int, act: int) -> None:
        self.lits = lits        # clause literals over frame-0 latch SAT vars
        self.level = level
        self.act = act
        self.retired = False


class Pdr:
    """One PDR run for a single bad literal on a transition system."""

    def __init__(self, system: TransitionSystem, bad_lit: int,
                 max_frames: int = 60) -> None:
        self.system = system
        self.bad_lit = bad_lit
        self.max_frames = max_frames
        # Two-frame unrolling with symbolic init: frame 0 = current state,
        # frame 1 = successor.  Constraints are asserted in both frames by
        # the Unroller itself.
        self.unroller = Unroller(system, symbolic_init=True)
        self.solver: Solver = self.unroller.solver
        self.unroller.frame(1)
        self._bad_sat = self.unroller.sat_literal(bad_lit, 0)
        # Latch variable maps, restricted to the property's cone of
        # influence (constraint support included — exact reduction).
        self._latches: List[Latch] = coi_latches(system, [bad_lit])
        self._cur: Dict[int, int] = {}   # latch node -> frame-0 SAT var
        self._nxt: Dict[int, int] = {}   # latch node -> frame-1 SAT literal
        for latch in self._latches:
            self._cur[latch.node] = self.unroller.sat_literal(latch.node, 0)
            self._nxt[latch.node] = self.unroller.sat_literal(latch.node, 1)
        self._init_value: Dict[int, Optional[bool]] = {
            latch.node: latch.init for latch in self._latches}
        self._var_to_node: Dict[int, int] = {
            abs(sat): node for node, sat in self._cur.items()}
        # F_0 is the init predicate, guarded by one activation literal.
        self._init_act = self.solver.new_var()
        for latch in self._latches:
            if latch.init is None:
                continue
            sat = self._cur[latch.node]
            self.solver.add_clause(
                [-self._init_act, sat if latch.init else -sat])
        self._clauses: List[_Clause] = []
        self._num_frames = 1

    # -- ternary-simulation lifting ------------------------------------------
    # Predecessor cubes from the SAT model assign *every* COI latch; most of
    # those literals are irrelevant to why the successor is reached.  The
    # standard IC3 trick (Een/Mishchenko/Brayton 2011) drops a latch literal
    # when three-valued simulation shows the required outputs stay determined
    # with that latch set to X.  This shrinks proof obligations by orders of
    # magnitude on control logic.
    _X = 2

    def _ternary_eval(self, lit: int, values: Dict[int, int]) -> int:
        """Three-valued evaluation of an AIG literal; 0, 1 or X(2).

        ``values`` maps input/latch nodes to 0/1/X and doubles as the memo
        table for internal nodes.
        """
        aig = self.system.aig
        X = self._X
        stack = [lit & ~1]
        while stack:
            node = stack[-1]
            if node == FALSE or node in values:
                stack.pop()
                continue
            if not aig.is_and(node):
                values[node] = X  # unconstrained node
                stack.pop()
                continue
            lhs, rhs = aig.fanins(node)
            pending = [n for n in (lhs & ~1, rhs & ~1)
                       if n != FALSE and n not in values]
            if pending:
                stack.extend(pending)
                continue

            def lit_val(l: int) -> int:
                v = values.get(l & ~1, 0) if (l & ~1) != FALSE else 0
                if v == X:
                    return X
                return v ^ (l & 1)

            a, b = lit_val(lhs), lit_val(rhs)
            if a == 0 or b == 0:
                values[node] = 0
            elif a == X or b == X:
                values[node] = X
            else:
                values[node] = 1
            stack.pop()
        base = values.get(lit & ~1, 0) if (lit & ~1) != FALSE else 0
        if base == X:
            return X
        return base ^ (lit & 1)

    def _lift_cube(self, cube: Tuple[int, ...],
                   required: List[Tuple[int, bool]]) -> Tuple[int, ...]:
        """Drop cube literals while all required (lit, value) stay determined."""
        if not required:
            return cube
        # Concrete model values for inputs and all latches.
        base_values: Dict[int, int] = {}
        for node in self.system.inputs:
            sat = self.unroller.frame(0).input_sat.get(node)
            if sat is None:
                continue
            base_values[node] = 1 if self.solver.value(sat) else 0
        for latch in self.system.latches:
            sat = self.unroller.frame(0).input_sat.get(latch.node)
            if sat is not None:
                base_values[latch.node] = 1 if self.solver.value(sat) else 0
        kept: List[int] = []
        dropped: set = set()
        for idx, lit in enumerate(cube):
            node = self._var_to_node[abs(lit)]
            trial = dict(base_values)
            trial[node] = self._X
            for other in dropped:
                trial[other] = self._X
            ok = True
            for req_lit, req_val in required:
                result = self._ternary_eval(req_lit, trial)
                if result == self._X or bool(result) != req_val:
                    ok = False
                    break
            if ok:
                dropped.add(node)
            else:
                kept.append(lit)
        return tuple(kept) if kept else cube

    def _constraint_requirements(self) -> List[Tuple[int, bool]]:
        return [(prop.lit, True) for prop in self.system.constraints]

    # -- init handling ------------------------------------------------------
    def _cube_intersects_init(self, cube: Sequence[int]) -> bool:
        """Does the cube (over frame-0 latch SAT literals) contain an init
        state?  True unless some literal contradicts a defined init value."""
        for lit in cube:
            var = abs(lit)
            node = self._var_to_node.get(var)
            if node is None:
                continue
            init = self._init_value[node]
            if init is None:
                continue
            if (lit > 0) != init:
                return False
        return True

    # -- frame queries ------------------------------------------------------
    def _frame_assumptions(self, level: int) -> List[int]:
        acts = [c.act for c in self._clauses
                if not c.retired and c.level >= level]
        if level == 0:
            acts.append(self._init_act)
        return acts

    def _add_frame_clause(self, lits: Tuple[int, ...], level: int) -> None:
        act = self.solver.new_var()
        self.solver.add_clause([-act] + list(lits))
        self._clauses.append(_Clause(lits, level, act))

    # -- main loop -----------------------------------------------------------
    def run(self) -> PdrResult:
        if self.bad_lit == FALSE:
            return PdrResult(proven=True, frames=0)
        while True:
            # Find a bad state inside the outermost frame.
            assumptions = self._frame_assumptions(self._num_frames)
            assumptions.append(self._bad_sat)
            # Frame N also requires the init predicate when N == 0 — the
            # engine's BMC pass already covered the concrete init cases.
            if not self.solver.solve(assumptions=assumptions):
                # Bad unreachable from F_N: add a frame and propagate.
                self._num_frames += 1
                if self._propagate():
                    return PdrResult(
                        proven=True, frames=self._num_frames,
                        num_clauses=len(self._clauses),
                        solver_stats=self.solver.stats.as_dict())
                if self._num_frames > self.max_frames:
                    return PdrResult(
                        proven=False, frames=self._num_frames,
                        num_clauses=len(self._clauses),
                        solver_stats=self.solver.stats.as_dict())
                continue
            cube = self._model_cube()
            cube = self._lift_cube(
                cube, [(self.bad_lit, True)] + self._constraint_requirements())
            chain = self._block(cube, self._num_frames, chain_len=0)
            if chain is not None:
                # chain = number of transitions from an init state to the
                # bad cube, i.e. the cycle index where the property fails.
                return PdrResult(
                    proven=False, frames=self._num_frames, failed=True,
                    cex_depth=chain,
                    num_clauses=len(self._clauses),
                    solver_stats=self.solver.stats.as_dict())

    def _model_cube(self) -> Tuple[int, ...]:
        """Full cube of current-state latch values from the SAT model."""
        cube = []
        for latch in self._latches:
            sat = self._cur[latch.node]
            value = self.solver.value(sat)
            cube.append(sat if value else -sat)
        return tuple(cube)

    # -- recursive blocking ----------------------------------------------------
    def _block(self, cube: Tuple[int, ...], level: int,
               chain_len: int) -> Optional[int]:
        """Block ``cube`` at ``level``.  Returns None on success, or the
        length of the counterexample chain when the cube reaches init."""
        if not cube:
            # Empty cube = the bad condition holds in *every* state
            # (possible when its cone of influence has no latches at all):
            # the initial state itself is bad.
            return chain_len
        if self._cube_intersects_init(cube):
            # Lifting preserves "every state in the cube steps into the
            # parent obligation under the recorded inputs", so an init state
            # inside the cube is a genuine counterexample at any level.
            return chain_len
        if level == 0:
            return None
        while True:
            # Relative induction: F_{level-1} ∧ ¬cube ∧ T ∧ cube'
            not_cube_act = self.solver.new_var()
            self.solver.add_clause([-not_cube_act] + [-lit for lit in cube])
            assumptions = self._frame_assumptions(level - 1)
            assumptions.append(not_cube_act)
            assumptions.extend(self._prime(cube))
            sat = self.solver.solve(assumptions=assumptions)
            if not sat:
                core = set(self.solver.core)
                self.solver.add_clause([-not_cube_act])  # retire
                reduced = self._generalize(cube, core, level)
                self._add_frame_clause(
                    tuple(-lit for lit in reduced), level)
                return None
            predecessor = self._model_cube()
            required = self._constraint_requirements()
            for lit in cube:
                node = self._var_to_node[abs(lit)]
                latch = self.system.latch_of(node)
                required.append((latch.next_lit, lit > 0))
            predecessor = self._lift_cube(predecessor, required)
            self.solver.add_clause([-not_cube_act])  # retire
            result = self._block(predecessor, level - 1, chain_len + 1)
            if result is not None:
                return result

    def _prime(self, cube: Sequence[int]) -> List[int]:
        """Map a frame-0 latch cube to the corresponding frame-1 literals."""
        primed = []
        for lit in cube:
            node = self._var_to_node[abs(lit)]
            nxt = self._nxt[node]
            primed.append(-nxt if lit < 0 else nxt)
        return primed

    # -- generalization -----------------------------------------------------
    def _generalize(self, cube: Tuple[int, ...], core: set,
                    level: int) -> Tuple[int, ...]:
        """Shrink the blocked cube: first with the unsat core over the primed
        assumption literals, then with a bounded literal-dropping pass."""
        primed = self._prime(cube)
        keep = []
        for lit, primed_lit in zip(cube, primed):
            if primed_lit in core:
                keep.append(lit)
        if not keep:
            keep = list(cube)
        if self._cube_intersects_init(keep):
            keep = self._restore_init_blocking(cube, keep)
        keep = self._drop_literals(tuple(keep), level)
        return tuple(keep)

    def _restore_init_blocking(self, cube: Tuple[int, ...],
                               keep: List[int]) -> List[int]:
        """Re-add a literal that separates the cube from the init states."""
        present = set(keep)
        for lit in cube:
            if lit in present:
                continue
            node = self._var_to_node[abs(lit)]
            init = self._init_value[node]
            if init is not None and (lit > 0) != init:
                return keep + [lit]
        return list(cube)

    def _drop_literals(self, cube: Tuple[int, ...], level: int,
                       max_attempts: int = 3) -> Tuple[int, ...]:
        """Try removing individual literals while the clause stays relatively
        inductive (bounded pass: PDR works without it, just slower)."""
        current = list(cube)
        attempts = 0
        idx = 0
        while idx < len(current) and attempts < max_attempts:
            if len(current) == 1:
                break
            candidate = current[:idx] + current[idx + 1:]
            if self._cube_intersects_init(candidate):
                idx += 1
                continue
            attempts += 1
            not_cube_act = self.solver.new_var()
            self.solver.add_clause([-not_cube_act]
                                   + [-lit for lit in candidate])
            assumptions = self._frame_assumptions(level - 1)
            assumptions.append(not_cube_act)
            assumptions.extend(self._prime(candidate))
            sat = self.solver.solve(assumptions=assumptions)
            self.solver.add_clause([-not_cube_act])
            if sat:
                idx += 1
            else:
                current = candidate
        return tuple(current)

    # -- propagation -----------------------------------------------------------
    def _propagate(self) -> bool:
        """Push clauses forward; True when a fixpoint frame is found."""
        for clause in self._clauses:
            if clause.retired or clause.level >= self._num_frames:
                continue
            # Does the clause hold one frame later?  F_level ∧ T ∧ ¬c'
            cube = tuple(-lit for lit in clause.lits)
            assumptions = self._frame_assumptions(clause.level)
            assumptions.extend(self._prime(cube))
            if not self.solver.solve(assumptions=assumptions):
                clause.level += 1
        # Fixpoint: some frame 1..N-1 has no clause at exactly its level.
        active = [c for c in self._clauses if not c.retired]
        for level in range(1, self._num_frames):
            if not any(c.level == level for c in active):
                return True
        return False


def pdr_prove(system: TransitionSystem, assert_lit: int,
              max_frames: int = 60) -> PdrResult:
    """Prove ``assert_lit`` invariant (or find it violable) with PDR.

    ``assert_lit`` is the property literal (must always hold); PDR works on
    its negation as the bad state.
    """
    return Pdr(system, bad_lit=assert_lit ^ 1, max_frames=max_frames).run()
