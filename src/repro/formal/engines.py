"""Pluggable proof engines: a string-keyed registry behind ``EngineConfig``.

Historically :class:`~repro.formal.engine.FormalEngine` dispatched on
``EngineConfig.proof_engine`` with an if/elif chain, so adding a proof
algorithm meant editing the orchestrator.  This module turns that dispatch
into data:

* :class:`Engine` is the protocol a proof backend implements — given a
  transition system and a literal that must hold in every reachable state,
  return a uniform :class:`EngineVerdict` (proven / cex / unknown);
* :func:`register_engine` / :func:`get_engine` / :func:`available_engines`
  manage the registry.  Built-ins: ``"pdr"`` (IC3, the production default),
  ``"kind"`` (k-induction, the paper's ablation E12) and ``"bmc-only"``
  (no proof attempt — bug hunting alone, for quick sweeps);
* liveness *strategies* get the same treatment: ``"l2s"`` (the
  liveness-to-safety proof path) and ``"bounded"`` (lasso hunting only)
  live in a parallel registry consulted by the liveness orchestration.

Third-party engines plug in without touching the orchestrator::

    from repro.formal.engines import Engine, EngineVerdict, register_engine

    class MyEngine:
        name = "my-ic3"
        def prove_invariant(self, system, good_lit, config):
            ...
            return EngineVerdict(status="proven", depth=closing_frame)

    register_engine(MyEngine())
    report = run_fv(ft, sources, EngineConfig(proof_engine="my-ic3"))
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

from .cnf import Unroller
from .kinduction import prove_safety
from .pdr import PdrContext, pdr_prove
from .trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import EngineConfig
    from .transition import TransitionSystem

__all__ = [
    "Engine", "EngineVerdict", "LivenessStrategy", "ProofContext",
    "register_engine", "get_engine", "available_engines",
    "register_liveness_strategy", "get_liveness_strategy",
    "available_liveness_strategies", "prove_with",
]


@dataclass
class ProofContext:
    """Warm solver state the orchestrator shares with proof backends.

    ``hunt_unroller`` is the BMC sweep's concrete-init unrolling of the
    same system — k-induction base cases extend its frames instead of
    re-encoding.  ``cleared_depth`` is the highest depth that sweep proved
    violation-free for the property being handed over (base cases up to it
    need no re-solving).  ``pdr`` is the system's shared
    :class:`~repro.formal.pdr.PdrContext` (transition encoding + learned
    clauses amortized across every property's PDR run).

    Backends accept it as the optional ``context`` keyword; engines that
    ignore it (or third-party engines written before it existed) keep
    working — :func:`prove_with` only passes what a backend's signature
    admits.
    """

    hunt_unroller: Optional[Unroller] = None
    cleared_depth: int = -1
    pdr: Optional[PdrContext] = None


def prove_with(engine: "Engine", system: "TransitionSystem", good_lit: int,
               config: "EngineConfig",
               context: Optional[ProofContext] = None) -> "EngineVerdict":
    """Invoke a backend, passing ``context`` only if its signature takes it."""
    if context is not None and engine.accepts_context:
        return engine.prove_invariant(system, good_lit, config,
                                      context=context)
    return engine.prove_invariant(system, good_lit, config)


@dataclass
class EngineVerdict:
    """Uniform outcome of one invariant-proof attempt.

    ``status`` is ``"proven"`` (``depth`` = closing frame / induction k),
    ``"cex"`` (``cex_depth`` = violation depth; ``trace`` when the backend
    produced one — backends that only learn the depth, like PDR, leave it
    None and the orchestrator regenerates it with BMC) or ``"unknown"``
    (``depth`` = the bound that was exhausted).
    """

    status: str
    depth: int = 0
    cex_depth: int = 0
    trace: Optional[Trace] = None

    @property
    def proven(self) -> bool:
        return self.status == "proven"

    @property
    def failed(self) -> bool:
        return self.status == "cex"


class Engine:
    """Protocol for invariant-proof backends.

    Implementations provide ``name`` (the registry key) and
    :meth:`prove_invariant`.  ``liveness_ladder`` opts the engine into the
    incremental k-liveness proof ladder the orchestrator runs before full
    L2S (cheap for frame-based engines like PDR, counterproductive for
    monolithic ones like k-induction).
    """

    name: str = ""
    liveness_ladder: bool = False
    #: Whether cover targets the BMC hunt misses get an unreachability
    #: proof attempt (engines that never prove — bmc-only — opt out).
    proves_covers: bool = True

    def prove_invariant(self, system: "TransitionSystem", good_lit: int,
                        config: "EngineConfig", **kwargs) -> EngineVerdict:
        """Try to prove ``good_lit`` holds in every reachable state.

        Backends may declare an optional ``context`` keyword
        (:class:`ProofContext`) to reuse the orchestrator's warm solver
        state; :func:`prove_with` checks the signature before passing it.
        """
        raise NotImplementedError

    @property
    def accepts_context(self) -> bool:
        if not hasattr(self, "_accepts_context"):
            params = inspect.signature(self.prove_invariant).parameters
            self._accepts_context = ("context" in params or any(
                p.kind is inspect.Parameter.VAR_KEYWORD
                for p in params.values()))
        return self._accepts_context

    def unknown_depth(self, config: "EngineConfig") -> int:
        """The exhausted bound reported on an unknown verdict."""
        return 0


class PdrEngine(Engine):
    """IC3/PDR — the default, mirroring what production FV tools run."""

    name = "pdr"
    liveness_ladder = True

    def prove_invariant(self, system, good_lit, config,
                        context=None) -> EngineVerdict:
        pdr_context = context.pdr if context is not None else None
        outcome = pdr_prove(system, good_lit, max_frames=config.max_frames,
                            context=pdr_context)
        if outcome.proven:
            return EngineVerdict("proven", depth=outcome.frames)
        if outcome.failed:
            # PDR learns the CEX depth but not the trace; the orchestrator
            # regenerates it with BMC at that depth.
            return EngineVerdict("cex", cex_depth=outcome.cex_depth)
        return EngineVerdict("unknown", depth=config.max_frames)

    def unknown_depth(self, config) -> int:
        return config.max_frames


class KInductionEngine(Engine):
    """k-induction with optional simple-path strengthening (ablation E12)."""

    name = "kind"

    def prove_invariant(self, system, good_lit, config,
                        context=None) -> EngineVerdict:
        base_unroller = context.hunt_unroller if context is not None else None
        base_cleared = context.cleared_depth if context is not None else -1
        outcome = prove_safety(system, good_lit, max_k=config.max_k,
                               simple_path=config.simple_path,
                               base_unroller=base_unroller,
                               base_cleared=base_cleared)
        if outcome.failed:
            return EngineVerdict("cex", cex_depth=outcome.cex_trace.depth - 1,
                                 trace=outcome.cex_trace)
        if outcome.proven:
            return EngineVerdict("proven", depth=outcome.k)
        return EngineVerdict("unknown", depth=config.max_k)

    def unknown_depth(self, config) -> int:
        return config.max_k


class BmcOnlyEngine(Engine):
    """No proof attempt at all: BMC bug hunting is the whole engine.

    Useful for shallow sweep configs where the campaign only wants CEX
    discovery — every property that survives the hunt reports ``unknown``.
    """

    name = "bmc-only"
    proves_covers = False

    def prove_invariant(self, system, good_lit, config) -> EngineVerdict:
        return EngineVerdict("unknown", depth=config.max_bound)

    def unknown_depth(self, config) -> int:
        return config.max_bound


@dataclass(frozen=True)
class LivenessStrategy:
    """How the orchestrator treats liveness properties.

    ``proves``: attempt a proof after the bounded lasso hunt (``"l2s"``);
    strategies with ``proves=False`` (``"bounded"``) stop at bug hunting and
    report ``unknown`` for everything the hunt did not falsify.
    """

    name: str
    proves: bool


_ENGINES: Dict[str, Engine] = {}
_LIVENESS: Dict[str, LivenessStrategy] = {}


def register_engine(engine: Engine) -> Engine:
    """Add (or replace) a proof engine under ``engine.name``."""
    if not engine.name:
        raise ValueError("engine must carry a non-empty name")
    _ENGINES[engine.name] = engine
    return engine


def get_engine(name: str) -> Engine:
    try:
        return _ENGINES[name]
    except KeyError:
        raise KeyError(
            f"unknown proof engine {name!r} "
            f"(registered: {', '.join(available_engines())})") from None


def available_engines() -> List[str]:
    return sorted(_ENGINES)


def register_liveness_strategy(strategy: LivenessStrategy) -> LivenessStrategy:
    _LIVENESS[strategy.name] = strategy
    return strategy


def get_liveness_strategy(name: str) -> LivenessStrategy:
    try:
        return _LIVENESS[name]
    except KeyError:
        raise KeyError(
            f"unknown liveness strategy {name!r} (registered: "
            f"{', '.join(available_liveness_strategies())})") from None


def available_liveness_strategies() -> List[str]:
    return sorted(_LIVENESS)


register_engine(PdrEngine())
register_engine(KInductionEngine())
register_engine(BmcOnlyEngine())
register_liveness_strategy(LivenessStrategy("l2s", proves=True))
register_liveness_strategy(LivenessStrategy("bounded", proves=False))
