"""Bit-level transition systems: the model-checker's view of a design.

A :class:`TransitionSystem` wraps an :class:`~repro.formal.aig.AIG` with the
sequential interpretation the checker needs:

* **inputs** — free symbolic bits, fresh every cycle (this is how FV tools
  treat module inputs, per Section II of the paper);
* **latches** — state bits with an initial (reset) value and a next-state
  function given as an AIG literal;
* **constraints** — invariant assumptions (from ``assume property`` without
  ``s_eventually``) restricting the explored paths;
* **safety assertions** — literals that must hold in every reachable state;
* **liveness assertions** (justice) — literals that must hold *infinitely
  often*; ``assert property (A |-> s_eventually B)`` compiles to a pending
  monitor latch whose negation is asserted to recur;
* **fairness constraints** — the assumed counterpart (``assume property``
  with ``s_eventually``), restricting liveness CEXs to fair paths;
* **covers** — reachability targets (``cover property``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .aig import AIG, FALSE, TRUE

__all__ = ["Latch", "Property", "TransitionSystem"]


@dataclass
class Latch:
    """A single state bit.

    ``node`` is the AIG input node representing the latch's *current* value;
    ``next_lit`` the AIG literal computing its *next* value; ``init`` the
    reset value (None leaves the initial value symbolic).
    """

    name: str
    node: int
    next_lit: int = FALSE
    init: Optional[bool] = False


@dataclass
class Property:
    """A named property literal with its source directive."""

    name: str
    lit: int
    kind: str  # "assert" | "assume" | "cover" | "live" | "fair"


class TransitionSystem:
    """A sequential circuit plus its proof obligations."""

    def __init__(self, name: str = "top") -> None:
        self.name = name
        self.aig = AIG()
        self.inputs: List[int] = []          # free primary-input nodes
        self.input_names: Dict[int, str] = {}
        self.latches: List[Latch] = []
        self._latch_by_node: Dict[int, Latch] = {}
        self.constraints: List[Property] = []
        self.asserts: List[Property] = []
        self.covers: List[Property] = []
        self.liveness: List[Property] = []   # justice assertions
        self.fairness: List[Property] = []   # justice assumptions
        # Named observable signals (for trace rendering), name -> [bit lits].
        self.observables: Dict[str, List[int]] = {}

    # -- construction ----------------------------------------------------
    def add_input(self, name: str) -> int:
        node = self.aig.new_input(name)
        self.inputs.append(node)
        self.input_names[node] = name
        return node

    def add_input_vec(self, name: str, width: int) -> List[int]:
        return [self.add_input(f"{name}[{i}]") for i in range(width)]

    def add_latch(self, name: str, init: Optional[bool] = False) -> Latch:
        node = self.aig.new_input(name)
        latch = Latch(name=name, node=node, init=init)
        self.latches.append(latch)
        self._latch_by_node[node] = latch
        return latch

    def add_latch_vec(self, name: str, width: int,
                      init: Optional[int] = 0) -> List[Latch]:
        latches = []
        for i in range(width):
            bit_init = None if init is None else bool((init >> i) & 1)
            latches.append(self.add_latch(f"{name}[{i}]", init=bit_init))
        return latches

    def set_next(self, latch: Latch, next_lit: int) -> None:
        latch.next_lit = next_lit

    def is_latch_node(self, node: int) -> bool:
        return node in self._latch_by_node

    def latch_of(self, node: int) -> Latch:
        return self._latch_by_node[node]

    def add_constraint(self, name: str, lit: int) -> None:
        self.constraints.append(Property(name, lit, "assume"))

    def add_assert(self, name: str, lit: int) -> None:
        self.asserts.append(Property(name, lit, "assert"))

    def add_cover(self, name: str, lit: int) -> None:
        self.covers.append(Property(name, lit, "cover"))

    def add_liveness(self, name: str, justice_lit: int) -> None:
        """Assert that ``justice_lit`` holds infinitely often."""
        self.liveness.append(Property(name, justice_lit, "live"))

    def add_fairness(self, name: str, justice_lit: int) -> None:
        """Assume that ``justice_lit`` holds infinitely often."""
        self.fairness.append(Property(name, justice_lit, "fair"))

    def add_observable(self, name: str, bits: List[int]) -> None:
        self.observables[name] = list(bits)

    def clone(self) -> "TransitionSystem":
        """An independent copy of the system (fresh AIG, fresh latches).

        Checking algorithms extend a system in place (L2S monitors,
        k-liveness counters), so a compiled design handed to several checks
        must give each one its own instance.  Cloning preserves node ids —
        property literals recorded against the original resolve identically
        in the clone — while guaranteeing that no mutation of one check's
        system can leak into another's.
        """
        other = TransitionSystem.__new__(TransitionSystem)
        other.name = self.name
        other.aig = self.aig.clone()
        other.inputs = list(self.inputs)
        other.input_names = dict(self.input_names)
        other.latches = [Latch(name=l.name, node=l.node, next_lit=l.next_lit,
                               init=l.init) for l in self.latches]
        other._latch_by_node = {l.node: l for l in other.latches}
        other.constraints = list(self.constraints)
        other.asserts = list(self.asserts)
        other.covers = list(self.covers)
        other.liveness = list(self.liveness)
        other.fairness = list(self.fairness)
        other.observables = {name: list(bits)
                             for name, bits in self.observables.items()}
        return other

    # -- helpers ----------------------------------------------------------
    def pending_monitor(self, name: str, trigger: int, discharge: int,
                        same_cycle: bool = True) -> int:
        """Build the standard obligation monitor for ``trigger |-> s_eventually
        discharge`` and return the *pending* literal.

        ``pending`` rises when the trigger fires without an immediate
        discharge and stays up until discharged.  The liveness condition is
        that ``!pending`` recurs.  With ``same_cycle=False`` the discharge may
        not happen in the trigger cycle itself (``|=>`` semantics).
        """
        g = self.aig
        latch = self.add_latch(f"{name}__pending", init=False)
        raised = g.OR(latch.node, trigger)
        if same_cycle:
            pending_next = g.AND(raised, g.NOT(discharge))
        else:
            pending_next = g.OR(g.AND(latch.node, g.NOT(discharge)), trigger)
        self.set_next(latch, pending_next)
        if same_cycle:
            return g.AND(raised, g.NOT(discharge))
        return latch.node

    def stats(self) -> dict:
        return {
            "inputs": len(self.inputs),
            "latches": len(self.latches),
            "ands": self.aig.num_ands,
            "constraints": len(self.constraints),
            "asserts": len(self.asserts),
            "covers": len(self.covers),
            "liveness": len(self.liveness),
            "fairness": len(self.fairness),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in self.stats().items())
        return f"TransitionSystem({self.name!r}, {inner})"
